//! Quickstart: boot a simulated Xen, run a real exploit, then inject the
//! same erroneous state — the paper's core idea in one file.
//!
//! ```sh
//! cargo run -p intrusion-core --example quickstart
//! ```

use intrusion_core::campaign::standard_world;
use intrusion_core::{ArbitraryAccessInjector, Mode, UseCase};
use hvsim::XenVersion;
use xsa_exploits::Xsa212Crash;

fn main() {
    // ---------------------------------------------------------------
    // 1. The traditional path: the XSA-212-crash exploit on Xen 4.6.
    // ---------------------------------------------------------------
    println!("=== exploit path (Xen 4.6, vulnerable) ===");
    let mut world = standard_world(XenVersion::V4_6, false).expect("standard world boots");
    let attacker = world.domain_by_name("guest03").expect("attacker guest");
    let outcome = Xsa212Crash.run_exploit(&mut world, attacker);
    for note in &outcome.notes {
        println!("  {note}");
    }
    println!("  erroneous state induced: {}", outcome.erroneous_state);
    println!("  hypervisor crashed:      {}", world.hv().is_crashed());
    for line in world.hv().console().iter().filter(|l| l.contains("XEN")) {
        println!("  {line}");
    }

    // ---------------------------------------------------------------
    // 2. The same exploit on a fixed version fails with -EFAULT.
    // ---------------------------------------------------------------
    println!("\n=== exploit path (Xen 4.13, fixed) ===");
    let mut world = standard_world(XenVersion::V4_13, false).expect("standard world boots");
    let attacker = world.domain_by_name("guest03").expect("attacker guest");
    let outcome = Xsa212Crash.run_exploit(&mut world, attacker);
    println!("  erroneous state induced: {}", outcome.erroneous_state);
    println!("  exploit error:           {}", outcome.error.as_deref().unwrap_or("-"));

    // ---------------------------------------------------------------
    // 3. Intrusion injection: the same erroneous state on Xen 4.13,
    //    no vulnerability needed.
    // ---------------------------------------------------------------
    println!("\n=== injection path (Xen 4.13, injector build) ===");
    let mut world = standard_world(XenVersion::V4_13, true).expect("standard world boots");
    let attacker = world.domain_by_name("guest03").expect("attacker guest");
    let outcome = Xsa212Crash.run_injection(&mut world, attacker, &ArbitraryAccessInjector);
    for note in &outcome.notes {
        println!("  {note}");
    }
    println!("  erroneous state induced: {}", outcome.erroneous_state);
    println!("  hypervisor crashed:      {}", world.hv().is_crashed());
    println!(
        "\nSame erroneous state, same security violation — on a version where \
         the vulnerability does not exist ({} mode).",
        Mode::Injection
    );
}
