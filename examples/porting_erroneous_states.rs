//! "Porting erroneous states" (paper §III-C): evaluate how hypervisor A
//! would handle a vulnerability class discovered in hypervisor B, by
//! injecting B's erroneous states into A.
//!
//! Here the "foreign" states are the keep-page-reference leaks of
//! XSA-387/XSA-393 (discovered years after 4.8 shipped): we inject them
//! into every simulated version — including ones where those bugs never
//! existed — and compare handling.
//!
//! ```sh
//! cargo run -p intrusion-core --example porting_erroneous_states
//! ```

use intrusion_core::{Campaign, Mode, TextTable};
use xsa_exploits::extension_use_cases;

fn main() {
    let mut campaign = Campaign::new().modes(&[Mode::Injection]);
    for uc in extension_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    let report = campaign.run();

    let mut table = TextTable::new(["Use Case", "Version", "Err. State", "Violations", "Handled"])
        .title("porting keep-page-reference states across versions");
    for cell in report.cells() {
        table.row([
            cell.use_case.clone(),
            format!("Xen {}", cell.version),
            cell.erroneous_state.to_string(),
            cell.violations.len().to_string(),
            cell.handled.to_string(),
        ]);
    }
    println!("{table}");

    println!("observations:");
    println!(
        "  - the *states* port everywhere: every version accepts the injected\n\
         \x20   stale reference, because nothing in the PV design revokes live\n\
         \x20   mappings when a frame changes owner;"
    );
    println!(
        "  - unlike the XSA-212-priv / XSA-182 states, the 4.13 hardening does\n\
         \x20   not shield this family — an assessment finding the paper's\n\
         \x20   approach is designed to surface."
    );

    for cell in report.cells() {
        if !cell.notes.is_empty() {
            println!("\n{} on Xen {}:", cell.use_case, cell.version);
            for n in &cell.notes {
                println!("  {n}");
            }
        }
    }
}
