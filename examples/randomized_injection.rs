//! Fuzz-style randomized injection (paper §IV-C): sample erroneous
//! states within an intrusion model's target component and classify the
//! outcomes — a risk-assessment sweep over system components (§III-C's
//! hardening-strategy scenario).
//!
//! ```sh
//! cargo run -p intrusion-core --example randomized_injection
//! ```

use intrusion_core::campaign::standard_world;
use intrusion_core::{RandomizedCampaign, TargetRegion, TextTable};
use hvsim::XenVersion;

fn main() {
    let regions = [
        TargetRegion::IdtGates { cpu: 0 },
        TargetRegion::SharedL3,
        TargetRegion::DomainPageTables,
        TargetRegion::DomainFrames,
    ];
    for version in [XenVersion::V4_8, XenVersion::V4_13] {
        println!("=== randomized injection sweep on Xen {version} (24 trials/region) ===");
        let mut table = TextTable::new([
            "target region",
            "injected",
            "crashes",
            "violated",
            "handled",
        ]);
        for region in regions {
            let campaign = RandomizedCampaign::new(region, 24, 0xDEAD_BEEF);
            let (summary, _) = campaign
                .run(|| {
                    let w = standard_world(version, true)?;
                    let attacker = w.domain_by_name("guest03").unwrap();
                    Ok((w, attacker))
                })
                .expect("sweep completes");
            table.row([
                region.label().to_owned(),
                summary.injected.to_string(),
                summary.crashes.to_string(),
                summary.violated.to_string(),
                summary.handled.to_string(),
            ]);
        }
        println!("{table}");
    }
    println!(
        "risk ranking: components whose random corruption crashes or violates\n\
         most often are the first candidates for hardening (paper §III-C)."
    );
}
