//! Assessing a system *on top of* the virtualized stack (paper §III-C):
//! a transactional store runs in a guest while erroneous states are
//! injected underneath it, and an ACID checker reports what survived.
//!
//! ```sh
//! cargo run -p intrusion-core --example acid_under_intrusion
//! ```

use guestos::{TxnStore, WorldBuilder};
use hvsim::{AccessMode, XenVersion};
use intrusion_core::{ArbitraryAccessInjector, ErroneousStateSpec, Injector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for version in XenVersion::ALL {
        println!("=== Xen {version}: transactional workload under intrusion ===");
        let mut world = WorldBuilder::new(version)
            .injector(true)
            .guest("appvm", 64)
            .guest("attacker", 64)
            .build()?;
        let app = world.domain_by_name("appvm").expect("app guest");
        let attacker = world.domain_by_name("attacker").expect("attacker guest");

        // A journaled store committing business transactions.
        let store = TxnStore::create(&mut world, app, 32)?;
        for k in 1..=20u64 {
            store.put(&mut world, k, k * 1000)?;
        }
        let before = store.check(&mut world)?;
        println!("  before injection: consistent = {}", before.is_consistent());

        // Intrusion model: write-unauthorized-memory against the frames
        // backing the store (the attacker broke hypervisor isolation).
        let spec = ErroneousStateSpec::WriteFrame {
            mfn: store.data_mfn(),
            offset: 8, // the value field of slot 0
            bytes: 0xdead_dead_dead_deadu64.to_le_bytes().to_vec(),
        };
        ArbitraryAccessInjector.inject(&mut world, attacker, &spec)?;
        println!("  injected: corruption of the store's data frame {}", store.data_mfn());

        let after = store.check(&mut world)?;
        println!(
            "  after injection:  consistent = {}, corrupted slots = {}, torn txn = {}",
            after.is_consistent(),
            after.corrupted_slots,
            after.torn_transaction
        );
        println!(
            "  read of key 1 now returns: {:?} (checksum guards reads)",
            store.get(&mut world, 1)?
        );

        // A second injection against the *hypervisor* (not the app):
        // corrupt the IDT and watch availability die with the host.
        let gate = ErroneousStateSpec::OverwriteIdtGate {
            cpu: 0,
            vector: 14,
            value: 0x41414141,
        };
        ArbitraryAccessInjector.inject(&mut world, attacker, &gate)?;
        let mut probe = [0u8; 1];
        let _ = world
            .hv_mut()
            .hc_arbitrary_access(app, 0x10, &mut probe, AccessMode::PhysRead);
        let mut buf = [0u8; 8];
        let _ = world
            .hv_mut()
            .guest_read_va(app, hvsim_mem::VirtAddr::new(0x7f00_0000_0000), &mut buf);
        println!(
            "  after IDT injection + fault: hypervisor crashed = {} (durability now \
             depends on what reached the journal)\n",
            world.hv().is_crashed()
        );
    }
    Ok(())
}
