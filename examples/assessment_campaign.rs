//! The full assessment campaign of the paper's evaluation: all four use
//! cases, both modes, all three Xen versions — then the reproduced
//! Tables II/III and Figs. 2/4.
//!
//! ```sh
//! cargo run -p intrusion-core --example assessment_campaign
//! ```

use intrusion_core::Campaign;
use hvsim::XenVersion;
use xsa_exploits::paper_use_cases;

fn main() {
    let mut campaign = Campaign::new();
    for uc in paper_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    println!("running 4 use cases x 3 versions x 2 modes = 24 cells ...\n");
    let report = campaign.run();

    println!("{}", report.render_table2());
    println!("{}", report.render_fig4());
    println!("{}", report.render_table3());
    println!(
        "{}",
        report.render_fig2("XSA-212-crash", XenVersion::V4_6)
    );

    // The assessment signal (RQ3): which versions handle which states?
    println!("security assessment summary:");
    for version in XenVersion::ALL {
        let handled: Vec<_> = report
            .cells()
            .iter()
            .filter(|c| {
                c.version == version
                    && c.mode == intrusion_core::Mode::Injection
                    && c.handled
            })
            .map(|c| c.use_case.as_str())
            .collect();
        println!(
            "  Xen {version}: handles {} of 4 injected erroneous states {:?}",
            handled.len(),
            handled
        );
    }
}
