//! A minimal, dependency-free stand-in for `serde`.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `serde` cannot be fetched. This vendored substitute keeps
//! the names the workspace uses — the `Serialize`/`Deserialize` traits
//! and the `#[derive(Serialize, Deserialize)]` macros — but implements
//! them over a simple in-memory [`Value`] data model instead of serde's
//! streaming visitor architecture. The companion `serde_json` stub
//! renders and parses [`Value`] as JSON with the same shape real serde
//! produces for this workspace's types (struct → object, unit enum
//! variant → string, data-carrying variant → single-key object).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The in-memory data model everything serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys (field order for structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself so generic tooling (e.g. a JSON
// diff) can deserialize arbitrary documents into the data model.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Looks up and deserializes one struct field from a map.
///
/// # Errors
///
/// [`Error`] when the key is missing or the value mismatches.
pub fn from_entry<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

// --------------------------------------------------------------------
// Primitive impls
// --------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

// --------------------------------------------------------------------
// Reference / container impls
// --------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq().ok_or_else(|| Error::custom("expected array"))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

fn map_key(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("unsupported map key type")),
    }
}

fn key_value(raw: &str) -> Vec<Value> {
    // Candidate typed readings of a JSON object key, tried in order.
    let mut candidates = vec![Value::Str(raw.to_owned())];
    if let Ok(n) = raw.parse::<u64>() {
        candidates.push(Value::UInt(n));
    } else if let Ok(n) = raw.parse::<i64>() {
        candidates.push(Value::Int(n));
    }
    candidates
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = map_key(k.to_value()).expect("map key serializes to a string");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (raw, val) in entries {
            let key = key_value(raw)
                .iter()
                .find_map(|c| K::from_value(c).ok())
                .ok_or_else(|| Error::custom(format!("bad map key `{raw}`")))?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn maps_keep_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u16, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.as_map().unwrap()[0].0, "3");
        let back: BTreeMap<u16, String> = BTreeMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
    }
}
