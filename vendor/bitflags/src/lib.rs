//! A minimal, dependency-free stand-in for the `bitflags` crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `bitflags` cannot be fetched. This vendored substitute
//! implements the subset of the `bitflags! { ... }` macro surface the
//! workspace uses: flag constants, `empty`/`all`/`bits`/`from_bits*`,
//! set algebra (`union`, `difference`, `intersection`, `contains`,
//! `intersects`, `insert`, `remove`, `is_empty`) — all `const fn` where
//! the workspace relies on const contexts — plus the bit-op operator
//! impls. Attributes written inside the macro (including derives) are
//! forwarded onto the generated newtype, matching bitflags 2.x.

/// Generates a flags newtype. Subset of the real `bitflags!` macro.
#[macro_export]
macro_rules! bitflags {
    (
        $(#[$outer:meta])*
        $vis:vis struct $Name:ident: $T:ty {
            $(
                $(#[$inner:meta])*
                const $Flag:ident = $value:expr;
            )*
        }
    ) => {
        $(#[$outer])*
        $vis struct $Name($T);

        impl $Name {
            $(
                $(#[$inner])*
                pub const $Flag: Self = Self($value);
            )*

            /// No flags set.
            #[inline]
            pub const fn empty() -> Self {
                Self(0)
            }

            /// Every defined flag set.
            #[inline]
            pub const fn all() -> Self {
                Self(0 $(| $value)*)
            }

            /// The raw bits.
            #[inline]
            pub const fn bits(&self) -> $T {
                self.0
            }

            /// Builds from raw bits, keeping only defined flags.
            #[inline]
            pub const fn from_bits_truncate(bits: $T) -> Self {
                Self(bits & Self::all().0)
            }

            /// Builds from raw bits; `None` if unknown bits are set.
            #[inline]
            pub const fn from_bits(bits: $T) -> Option<Self> {
                if bits & !Self::all().0 == 0 {
                    Some(Self(bits))
                } else {
                    None
                }
            }

            /// Builds from raw bits without masking.
            #[inline]
            pub const fn from_bits_retain(bits: $T) -> Self {
                Self(bits)
            }

            /// `true` if no flag is set.
            #[inline]
            pub const fn is_empty(&self) -> bool {
                self.0 == 0
            }

            /// `true` if every flag in `other` is set in `self`.
            #[inline]
            pub const fn contains(&self, other: Self) -> bool {
                self.0 & other.0 == other.0
            }

            /// `true` if any flag in `other` is set in `self`.
            #[inline]
            pub const fn intersects(&self, other: Self) -> bool {
                self.0 & other.0 != 0
            }

            /// Set union.
            #[inline]
            #[must_use]
            pub const fn union(self, other: Self) -> Self {
                Self(self.0 | other.0)
            }

            /// Set intersection.
            #[inline]
            #[must_use]
            pub const fn intersection(self, other: Self) -> Self {
                Self(self.0 & other.0)
            }

            /// Flags in `self` but not in `other`.
            #[inline]
            #[must_use]
            pub const fn difference(self, other: Self) -> Self {
                Self(self.0 & !other.0)
            }

            /// Symmetric difference.
            #[inline]
            #[must_use]
            pub const fn symmetric_difference(self, other: Self) -> Self {
                Self(self.0 ^ other.0)
            }

            /// Every defined flag not in `self`.
            #[inline]
            #[must_use]
            pub const fn complement(self) -> Self {
                Self(!self.0 & Self::all().0)
            }

            /// Adds the flags in `other`.
            #[inline]
            pub fn insert(&mut self, other: Self) {
                self.0 |= other.0;
            }

            /// Clears the flags in `other`.
            #[inline]
            pub fn remove(&mut self, other: Self) {
                self.0 &= !other.0;
            }

            /// Adds or clears the flags in `other`.
            #[inline]
            pub fn set(&mut self, other: Self, value: bool) {
                if value {
                    self.insert(other);
                } else {
                    self.remove(other);
                }
            }

            /// Toggles the flags in `other`.
            #[inline]
            pub fn toggle(&mut self, other: Self) {
                self.0 ^= other.0;
            }
        }

        impl ::core::ops::BitOr for $Name {
            type Output = Self;
            #[inline]
            fn bitor(self, rhs: Self) -> Self {
                Self(self.0 | rhs.0)
            }
        }

        impl ::core::ops::BitOrAssign for $Name {
            #[inline]
            fn bitor_assign(&mut self, rhs: Self) {
                self.0 |= rhs.0;
            }
        }

        impl ::core::ops::BitAnd for $Name {
            type Output = Self;
            #[inline]
            fn bitand(self, rhs: Self) -> Self {
                Self(self.0 & rhs.0)
            }
        }

        impl ::core::ops::BitAndAssign for $Name {
            #[inline]
            fn bitand_assign(&mut self, rhs: Self) {
                self.0 &= rhs.0;
            }
        }

        impl ::core::ops::BitXor for $Name {
            type Output = Self;
            #[inline]
            fn bitxor(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl ::core::ops::BitXorAssign for $Name {
            #[inline]
            fn bitxor_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl ::core::ops::Sub for $Name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.difference(rhs)
            }
        }

        impl ::core::ops::SubAssign for $Name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.difference(rhs);
            }
        }

        impl ::core::ops::Not for $Name {
            type Output = Self;
            #[inline]
            fn not(self) -> Self {
                self.complement()
            }
        }
    };
}

#[cfg(test)]
mod tests {
    bitflags! {
        #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
        pub struct Test: u64 {
            const A = 1 << 0;
            const B = 1 << 1;
            const HIGH = 1 << 63;
        }
    }

    #[test]
    fn algebra() {
        const AB: Test = Test::A.union(Test::B);
        assert!(AB.contains(Test::A));
        assert_eq!(AB.difference(Test::B), Test::A);
        assert_eq!(Test::all().bits(), (1 << 0) | (1 << 1) | (1 << 63));
        assert_eq!(Test::from_bits_truncate(u64::MAX), Test::all());
        assert!(Test::from_bits(1 << 5).is_none());
        let mut f = Test::empty();
        assert!(f.is_empty());
        f.insert(Test::HIGH);
        assert!(f.intersects(Test::HIGH));
        f.remove(Test::HIGH);
        assert!(f.is_empty());
        assert_eq!(Test::A | Test::B, AB);
        assert_eq!(AB & Test::B, Test::B);
        assert_eq!(AB - Test::B, Test::A);
        assert_eq!(!Test::A, Test::B | Test::HIGH);
    }
}
