//! A minimal, dependency-free stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` data model as JSON.
//! Output shape matches what real serde_json produces for the types in
//! this workspace: structs as objects, unit enum variants as strings,
//! data-carrying variants as single-key objects, maps as objects with
//! stringified keys, compact (`to_string`) and 2-space-indented pretty
//! (`to_string_pretty`) forms.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value cannot be represented (kept for
/// signature compatibility; the Value model always renders).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON with 2-space indentation.
///
/// # Errors
///
/// Same contract as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Same contract as [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

// --------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no Inf/NaN; real serde_json errors, we emit null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated unicode escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad unicode escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad unicode escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>(" -5 ").unwrap(), -5);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u8, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u8>>(&json).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![0u64, 9]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"k":[0,9]}"#);
        assert_eq!(from_str::<BTreeMap<String, Vec<u64>>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_indents_with_two_spaces() {
        let v = vec![vec![1u8], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>(r#""abc"#).is_err());
    }
}
