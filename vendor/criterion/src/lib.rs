//! A minimal, dependency-free stand-in for `criterion`.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `criterion` cannot be fetched. This vendored substitute
//! keeps the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, `criterion_group!`,
//! `criterion_main!` — over a simple calibrate-then-sample wall-clock
//! harness. Results are printed as `id ... time: [mean]` lines; there
//! is no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are amortized; accepted for API compatibility,
/// measurement is identical for every size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        samples.push(b.mean_ns);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = samples.first().copied().unwrap_or(0.0);
    let max = samples.last().copied().unwrap_or(0.0);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<55} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one measurement sample.
pub struct Bencher {
    mean_ns: f64,
}

/// Wall-clock budget for one calibrated measurement.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

impl Bencher {
    /// Times `routine`, doubling the iteration count until the sample
    /// budget is spent, and records mean nanoseconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= SAMPLE_BUDGET || n >= 1 << 24 {
                self.mean_ns = dt.as_nanos() as f64 / n as f64;
                return;
            }
            n *= 2;
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        let mut n: u64 = 0;
        while timed < SAMPLE_BUDGET && n < 1 << 24 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
            n += 1;
        }
        self.mean_ns = timed.as_nanos() as f64 / n.max(1) as f64;
    }
}

/// Prevents the optimizer from eliding a value (criterion re-export).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns > 0.0);

        let mut b = Bencher { mean_ns: 0.0 };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2_000_000_000.0).contains('s'));
    }
}
