//! A minimal, dependency-free stand-in for `serde_derive`.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `serde_derive` (and its syn/quote dependencies) cannot be
//! fetched. This vendored substitute parses the derive input by walking
//! the raw `proc_macro::TokenStream` and emits impls of the vendored
//! `serde::Serialize`/`serde::Deserialize` traits (the `Value`-model
//! variants, not the real streaming traits) as generated source text.
//!
//! Supported shapes — exactly what the workspace uses:
//! structs (named, tuple/newtype, unit) and enums (unit, newtype,
//! tuple, struct variants), all without generic parameters. Generic
//! types and `#[serde(...)]` attributes produce a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives the vendored `serde::Serialize` (Value-model) trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` (Value-model) trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        let msg = format!("vendored serde_derive produced invalid code: {e:?}");
        format!("::core::compile_error!({msg:?});").parse().unwrap()
    })
}

// --------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------

/// Collects a stream into trees, splicing the contents of
/// None-delimited groups (invisible delimiters around macro fragment
/// expansions, e.g. a `$vis:vis` inside `bitflags!`) in place.
fn flatten(input: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    for tree in input {
        match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten(g.stream()));
            }
            other => out.push(other),
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = flatten(input);
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Advances past any `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Punct(p)) = toks.get(*i) {
                    if p.as_char() == '!' {
                        *i += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        *i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Advances past tokens until a comma at angle-bracket depth zero, then
/// past the comma itself. Groups are atomic tokens, so only `<`/`>`
/// need explicit depth tracking.
fn skip_to_next_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0u32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = flatten(body);
    let mut i = 0;
    let mut names = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_to_next_comma(&toks, &mut i);
        names.push(name);
    }
    Ok(names)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = flatten(body);
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_to_next_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = flatten(body);
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                i += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Past an optional `= discriminant` and the trailing comma.
        skip_to_next_comma(&toks, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

// --------------------------------------------------------------------
// Codegen: Serialize
// --------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: String = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{entries}])")
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let vals: String = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{vals}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants.iter().map(|(v, f)| ser_variant_arm(name, v, f)).collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n}}\n}}"
            )
        }
    }
}

fn ser_variant_arm(name: &str, v: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"),
        Fields::Tuple(1) => format!(
            "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
             ::serde::Serialize::to_value(__f0))]),\n"
        ),
        Fields::Tuple(n) => {
            let binds: String = (0..*n).map(|k| format!("__f{k},")).collect();
            let vals: String = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(__f{k}),"))
                .collect();
            format!(
                "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
                 ::serde::Value::Seq(::std::vec![{vals}]))]),\n"
            )
        }
        Fields::Named(fs) => {
            let binds: String = fs.iter().map(|f| format!("{f},")).collect();
            let entries: String = fs
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
                 ::serde::Value::Map(::std::vec![{entries}]))]),\n"
            )
        }
    }
}

// --------------------------------------------------------------------
// Codegen: Deserialize
// --------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: String = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_entry(__m, {f:?})?,"))
                        .collect();
                    format!(
                        "let __m = v.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?,"))
                        .collect();
                    format!(
                        "let __s = v.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if __s.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::Error::custom(\"wrong arity for {name}\")); }}\n\
                         ::core::result::Result::Ok({name}({inits}))"
                    )
                }
                Fields::Unit => format!(
                    "match v {{ ::serde::Value::Null => ::core::result::Result::Ok({name}), \
                     _ => ::core::result::Result::Err(::serde::Error::custom(\
                     \"expected null for {name}\")) }}"
                ),
            };
            format!(
                "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, f)| de_variant_arm(name, v, f))
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n\
                 if let ::core::option::Option::Some(__s) = v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}};\n}}\n\
                 if let ::core::option::Option::Some(__m) = v.as_map() {{\n\
                 if __m.len() == 1 {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 return match __k.as_str() {{\n{data_arms}\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}};\n}}\n}}\n\
                 ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected enum {name}\"))\n}}\n}}"
            )
        }
    }
}

fn de_variant_arm(name: &str, v: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => unreachable!("unit variants handled in the string branch"),
        Fields::Tuple(1) => format!(
            "{v:?} => ::core::result::Result::Ok({name}::{v}(\
             ::serde::Deserialize::from_value(__inner)?)),\n"
        ),
        Fields::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?,"))
                .collect();
            format!(
                "{v:?} => {{\n\
                 let __s = __inner.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                 if __s.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::custom(\"wrong arity for {name}::{v}\")); }}\n\
                 ::core::result::Result::Ok({name}::{v}({inits}))\n}}\n"
            )
        }
        Fields::Named(fs) => {
            let inits: String = fs
                .iter()
                .map(|f| format!("{f}: ::serde::from_entry(__f, {f:?})?,"))
                .collect();
            format!(
                "{v:?} => {{\n\
                 let __f = __inner.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                 ::core::result::Result::Ok({name}::{v} {{ {inits} }})\n}}\n"
            )
        }
    }
}
