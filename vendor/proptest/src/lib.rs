//! A minimal, dependency-free stand-in for `proptest`.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `proptest` cannot be fetched. This vendored substitute
//! keeps the macro surface the workspace uses — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `any`, `Just`,
//! `prop_map`, `proptest::collection::vec`, range strategies, and the
//! `[c1-c2]{m,n}` string-pattern strategy — over a deterministic
//! generator. Cases are seeded from the test name, so every run
//! explores the same inputs. There is no shrinking: a failing case
//! panics with the case number and the assertion message.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SampleUniform, SeedableRng, Standard};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the generator for one case of one named test. The seed is
    /// a hash of the test name mixed with the case index, so streams
    /// are stable across runs and independent across tests.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!` to unify arms).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy for any value of a type (`any::<u64>()`).
pub struct Any<T>(PhantomData<T>);

/// Builds the [`Any`] strategy for `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String-pattern strategy: supports the `[c1-c2...]{m,n}` regex subset
/// (one character class with literal chars and ranges, one repetition).
/// Any other pattern generates its literal text.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = rng.gen_range(lo..=hi);
                (0..len)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Vectors of `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::{any, Any, Just, Map, ProptestConfig, Strategy, TestCaseError, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// --------------------------------------------------------------------
// Macros
// --------------------------------------------------------------------

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items
/// whose parameters are `name in strategy` or `name: Type` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                let __rng = &mut __rng;
                let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on falsehood.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Uniform choice between strategy alternatives producing one value
/// type. Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(::std::vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parser_handles_class() {
        let (chars, lo, hi) = super::parse_class_pattern("[ -~]{0,40}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 40);
        assert!(chars.contains(&' ') && chars.contains(&'~') && chars.contains(&'A'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any_bind(
            a in 0u8..4,
            b in 1u64..=8,
            s in "[a-c]{1,3}",
            v in crate::collection::vec((0usize..5, any::<u64>()), 1..6),
            flag: bool,
        ) {
            prop_assert!(a < 4);
            prop_assert!((1..=8).contains(&b));
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u8..2, 0u8..2).prop_map(|(a, b)| u16::from(a + b)),
                Just(9u16),
            ],
        ) {
            prop_assert!(x <= 2 || x == 9);
        }
    }
}
