//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! crates.io `rand` cannot be fetched. This vendored substitute keeps
//! the API subset the workspace uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`,
//! `fill_bytes` — with a deterministic xoshiro256** generator seeded
//! through SplitMix64. Streams are stable across platforms and releases
//! (they intentionally do NOT match upstream rand's streams; everything
//! in this workspace treats the RNG as an opaque reproducible source).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the
/// real crate, folded into one trait here).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. `high > low` is required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_closed(rng, lo, hi)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }

            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128-wrapped domain cannot happen for <=64-bit
                    // types except the complete range: any value works.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                ((low as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }

            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((low as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);
impl_uniform_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// High-level sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a byte slice (mirror of `RngCore::fill_bytes` for callers
    /// using the high-level trait).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// Alias kept for API compatibility: the "small" generator is the
    /// same deterministic engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..16);
            assert!(v < 16);
            let w = rng.gen_range(0usize..512);
            assert!(w < 512);
            let x = rng.gen_range(1u8..=255);
            assert!(x >= 1);
            let y: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
