//! Property-based tests over the guest layer: the transactional store's
//! ACID checker, world determinism, and shell-session behaviour under
//! arbitrary command sequences.

use guestos::{FileMode, TxnStore, Uid, World, WorldBuilder};
use hvsim::XenVersion;
use proptest::prelude::*;

fn app_world() -> (World, hvsim_mem::DomainId) {
    let w = WorldBuilder::new(XenVersion::V4_8)
        .injector(true)
        .guest("app", 64)
        .build()
        .unwrap();
    let dom = w.domain_by_name("app").unwrap();
    (w, dom)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of puts leaves the store consistent, with every
    /// committed value readable.
    #[test]
    fn txn_store_consistent_under_random_puts(
        ops in proptest::collection::vec((1u64..64, any::<u64>()), 1..40),
    ) {
        let (mut w, dom) = app_world();
        let store = TxnStore::create(&mut w, dom, 64).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (k, v) in &ops {
            store.put(&mut w, *k, *v).unwrap();
            model.insert(*k, *v);
        }
        let report = store.check(&mut w).unwrap();
        prop_assert!(report.is_consistent(), "{report:?}");
        prop_assert_eq!(report.occupied_slots, model.len());
        for (k, v) in model {
            prop_assert_eq!(store.get(&mut w, k).unwrap(), Some(v));
        }
    }

    /// Single-byte corruption anywhere in an occupied data slot is
    /// always detected (no silent checksum collisions for byte flips).
    #[test]
    fn txn_store_detects_any_single_byte_flip(
        key in 1u64..16,
        value in 1u64..u64::MAX,
        offset in 0usize..24,
        flip in 1u8..=255,
    ) {
        let (mut w, dom) = app_world();
        let store = TxnStore::create(&mut w, dom, 16).unwrap();
        store.put(&mut w, key, value).unwrap();
        // Corrupt one byte of slot 0 directly in machine memory.
        let base = store.data_mfn().base().offset(offset as u64);
        let mut byte = [0u8; 1];
        w.hv().mem().read(base, &mut byte).unwrap();
        let corrupted = [byte[0] ^ flip];
        let attacker = dom;
        w.hv_mut()
            .hc_arbitrary_access(attacker, base.raw(), &mut corrupted.clone().to_vec(), hvsim::AccessMode::PhysWrite)
            .unwrap();
        let report = store.check(&mut w).unwrap();
        prop_assert!(
            !report.is_consistent() || report.occupied_slots == 0,
            "flip of byte {offset} by {flip:#x} went undetected: {report:?}"
        );
    }

    /// Shell sessions never panic on arbitrary command strings and never
    /// leak root-only content to unprivileged sessions.
    #[test]
    fn shell_is_total_and_respects_privileges(
        cmds in proptest::collection::vec("[ -~]{0,40}", 1..12),
    ) {
        let (mut w, _) = app_world();
        w.remote_mut().listen();
        let dom0 = w.dom0();
        w.kernel_mut(dom0)
            .unwrap()
            .vfs_mut()
            .write("/root/secret", Uid::ROOT, FileMode::OwnerOnly, b"TOPSECRET")
            .unwrap();
        let sid = w.remote_mut().accept(dom0, Uid::new(1000), "peer").unwrap();
        for cmd in &cmds {
            let out = w.shell_exec(sid, cmd).unwrap();
            prop_assert!(!out.contains("TOPSECRET"), "cmd {cmd:?} leaked: {out}");
        }
        // And root sessions do read it.
        let root_sid = w.remote_mut().accept(dom0, Uid::ROOT, "peer").unwrap();
        let out = w.shell_exec(root_sid, "cat /root/secret").unwrap();
        prop_assert_eq!(out, "TOPSECRET");
    }
}

/// Two worlds built from the same configuration are byte-for-byte
/// deterministic: same frame layout, same p2m maps, same vDSO frames.
#[test]
fn world_construction_is_deterministic() {
    let build = || {
        WorldBuilder::new(XenVersion::V4_13)
            .injector(true)
            .guest("a", 48)
            .guest("b", 32)
            .build()
            .unwrap()
    };
    let w1 = build();
    let w2 = build();
    assert_eq!(w1.domains(), w2.domains());
    for d in w1.domains() {
        let p1: Vec<_> = w1.hv().domain(d).unwrap().p2m_iter().collect();
        let p2: Vec<_> = w2.hv().domain(d).unwrap().p2m_iter().collect();
        assert_eq!(p1, p2, "{d} p2m");
        assert_eq!(
            w1.kernel(d).unwrap().tables(),
            w2.kernel(d).unwrap().tables(),
            "{d} tables"
        );
    }
    // Full machine memory comparison.
    let frames = w1.hv().mem().frame_count();
    let mut b1 = [0u8; 4096];
    let mut b2 = [0u8; 4096];
    for f in 0..frames {
        w1.hv().mem().read_frame(hvsim_mem::Mfn::new(f), &mut b1).unwrap();
        w2.hv().mem().read_frame(hvsim_mem::Mfn::new(f), &mut b2).unwrap();
        assert_eq!(b1, b2, "frame {f} differs");
    }
}

/// Kernel logs carry monotonically non-decreasing timestamps.
#[test]
fn klog_timestamps_monotonic() {
    let (mut w, dom) = app_world();
    let k = w.kernel_mut(dom).unwrap();
    for i in 0..50 {
        k.klog(format!("line {i}"));
    }
    let stamps: Vec<&str> = k
        .log()
        .iter()
        .map(|l| l.split(']').next().unwrap())
        .collect();
    let mut sorted = stamps.clone();
    sorted.sort();
    assert_eq!(stamps, sorted);
}
