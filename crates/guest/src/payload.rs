//! The recognizable "shellcode" blob.
//!
//! The XSA-212-priv exploit hides attacker code in physical memory, maps
//! it at a virtual address every PV guest can reach, and executes it in
//! every domain by registering it as an interrupt handler. The simulator
//! cannot execute machine code, so the injected code is a structured blob:
//! a magic header plus a serialized [`PayloadCommand`] the [`World`]
//! interprets *with kernel privileges in each domain it executes in* —
//! which is exactly the security property the experiment measures.
//!
//! [`World`]: crate::World

use serde::{Deserialize, Serialize};

/// Magic header identifying an executable payload blob.
pub const PAYLOAD_MAGIC: u32 = 0xb4c0_de77;

/// What the payload does when executed in a domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PayloadCommand {
    /// Run a command as root and drop its output into a file — the
    /// `./attack 'echo "|$(id)|@$(hostname)"' > /tmp/injector_log`
    /// behaviour of the original PoC. The template may contain `$(id)`
    /// and `$(hostname)`, expanded per domain at execution time.
    DropRootFile {
        /// Target path in each domain's VFS.
        path: String,
        /// Content template (`$(id)`, `$(hostname)` are expanded).
        template: String,
    },
    /// Append a marker line to each domain's kernel log (a benign
    /// payload used by tests and ablations).
    KlogMarker {
        /// The marker text.
        marker: String,
    },
}

/// A payload blob: magic + command.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload {
    /// The command to run in each domain.
    pub command: PayloadCommand,
}

impl Payload {
    /// The classic PoC payload.
    pub fn drop_root_file(path: &str, template: &str) -> Self {
        Self {
            command: PayloadCommand::DropRootFile {
                path: path.to_owned(),
                template: template.to_owned(),
            },
        }
    }

    /// Serializes the blob (magic, little-endian length, JSON body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = serde_json::to_vec(self).expect("payload serializes");
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&PAYLOAD_MAGIC.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses a blob from memory. Returns `None` if the magic or body is
    /// malformed — executing garbage is a fault, not a panic.
    pub fn parse(bytes: &[u8]) -> Option<Payload> {
        if bytes.len() < 8 {
            return None;
        }
        let magic = u32::from_le_bytes(bytes[..4].try_into().ok()?);
        if magic != PAYLOAD_MAGIC {
            return None;
        }
        let len = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let body = bytes.get(8..8 + len)?;
        serde_json::from_slice(body).ok()
    }

    /// Expands a content template for one domain.
    pub fn expand_template(template: &str, uid_id_string: &str, hostname: &str) -> String {
        template
            .replace("$(id)", uid_id_string)
            .replace("$(hostname)", hostname)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Payload::drop_root_file("/tmp/injector_log", "|$(id)|@$(hostname)");
        let bytes = p.to_bytes();
        assert_eq!(Payload::parse(&bytes), Some(p));
    }

    #[test]
    fn garbage_is_not_a_payload() {
        assert_eq!(Payload::parse(&[0u8; 32]), None);
        assert_eq!(Payload::parse(b"\x77\xde\xc0\xb4garbage-len"), None);
        assert_eq!(Payload::parse(&[]), None);
        // Correct magic, truncated body.
        let mut bytes = Payload::drop_root_file("/x", "y").to_bytes();
        bytes.truncate(10);
        assert_eq!(Payload::parse(&bytes), None);
    }

    #[test]
    fn template_expansion_matches_poc_output() {
        let s = Payload::expand_template(
            "|$(id)|@$(hostname)",
            "uid=0(root) gid=0(root) groups=0(root)",
            "xen3",
        );
        assert_eq!(s, "|uid=0(root) gid=0(root) groups=0(root)|@xen3");
    }
}
