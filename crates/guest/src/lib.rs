//! Simulated paravirtualized guest kernels and the [`World`] harness.
//!
//! The paper's experiments need more than a hypervisor: the exploits
//! fingerprint dom0's start-info page, patch the vDSO shared library to
//! install a backdoor, open reverse shells to a remote host, and drop
//! root-owned files into every domain. This crate provides the guest-side
//! substrate those observable effects live in:
//!
//! * [`GuestKernel`] — a PV kernel that builds its own page tables through
//!   `mmu_update`/pin/`new_baseptr` hypercalls (direct paging), manages a
//!   tiny virtual address space, and keeps a kernel log,
//! * [`Vfs`] / [`Process`] — a minimal in-memory filesystem with uid-based
//!   permissions and processes to exercise them,
//! * [`vdso_image`] / [`Backdoor`] — the fingerprintable vDSO page mapped into every process,
//!   the target the XSA-148 exploit backdoors,
//! * [`RemoteHost`] — the attacker's listener (`nc -l -p 1234`) that
//!   backdoored guests connect reverse shells to,
//! * [`Payload`] — the recognizable "shellcode" blob whose execution in
//!   every domain is the XSA-212-priv privilege escalation,
//! * [`World`] — hypervisor + guests + network in one deterministic unit,
//!   with interrupt-dispatch and vDSO-call semantics,
//! * [`TxnStore`] — a transactional key-value workload used to assess
//!   ACID properties under hypervisor intrusion (paper §III-C).
//!
//! # Example
//!
//! ```
//! use guestos::WorldBuilder;
//! use hvsim::XenVersion;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = WorldBuilder::new(XenVersion::V4_6)
//!     .injector(true)
//!     .guest("guest01", 64)
//!     .build()?;
//! let dom = world.domain_by_name("guest01").unwrap();
//! world.kernel_mut(dom)?.klog("hello from the guest kernel");
//! # Ok(())
//! # }
//! ```

mod kernel;
mod net;
mod payload;
mod process;
mod txn;
mod vdso;
mod vfs;
mod world;

pub use kernel::{GuestKernel, TableMfns, KERNEL_BASE};
pub use net::{RemoteHost, SessionId, ShellSession};
pub use payload::{Payload, PayloadCommand, PAYLOAD_MAGIC};
pub use process::{Process, Uid};
pub use txn::{TxnCheckReport, TxnStore};
pub use vdso::{is_vdso_page, vdso_image, Backdoor, BACKDOOR_MAGIC, VDSO_ENTRY_OFFSET, VDSO_MAGIC};
pub use vfs::{FileMode, Vfs, VfsError};
pub use world::{BootError, BootStage, HandlerOutcome, World, WorldBuilder, WorldError};
