//! The vDSO page: a fingerprintable shared library mapped into every
//! process.
//!
//! The XSA-148 exploit's privilege escalation works by scanning machine
//! memory for dom0, locating the vDSO page ("which can be easily
//! fingerprinted in memory"), and patching a backdoor into it: the next
//! time *any* process — including root's — calls into the vDSO, the
//! backdoor runs with that process's privileges and opens a reverse shell.

use hvsim_mem::PAGE_SIZE;

/// Magic bytes at the start of the vDSO image (an ELF-like fingerprint).
pub const VDSO_MAGIC: &[u8; 8] = b"\x7fVDSO64\0";

/// Marker an installed backdoor starts with.
pub const BACKDOOR_MAGIC: &[u8; 8] = b"BKDR\xde\xad\xbe\xef";

/// Byte offset inside the vDSO page where the `__vdso_gettimeofday`
/// "entry point" lives — the spot the backdoor overwrites.
pub const VDSO_ENTRY_OFFSET: usize = 0x400;

/// Builds the pristine vDSO page image.
pub fn vdso_image() -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    page[..8].copy_from_slice(VDSO_MAGIC);
    let symtab = b"__vdso_gettimeofday\0__vdso_clock_gettime\0__vdso_getcpu\0";
    page[0x40..0x40 + symtab.len()].copy_from_slice(symtab);
    // A recognizable "function body": RET-sleds standing in for code.
    for b in page[VDSO_ENTRY_OFFSET..VDSO_ENTRY_OFFSET + 64].iter_mut() {
        *b = 0xc3;
    }
    page
}

/// A parsed backdoor, if one is installed in a vDSO image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Backdoor {
    /// Host the reverse shell connects to.
    pub host: String,
    /// TCP port.
    pub port: u16,
}

impl Backdoor {
    /// Serializes the backdoor blob the exploit writes over the vDSO
    /// entry point.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BACKDOOR_MAGIC);
        out.extend_from_slice(&self.port.to_le_bytes());
        let host = self.host.as_bytes();
        out.push(host.len() as u8);
        out.extend_from_slice(host);
        out
    }

    /// Parses a backdoor from a vDSO image, if present at the entry
    /// point.
    pub fn parse(image: &[u8]) -> Option<Backdoor> {
        let at = image.get(VDSO_ENTRY_OFFSET..)?;
        if at.len() < 11 || &at[..8] != BACKDOOR_MAGIC {
            return None;
        }
        let port = u16::from_le_bytes([at[8], at[9]]);
        let len = at[10] as usize;
        let host = String::from_utf8_lossy(at.get(11..11 + len)?).into_owned();
        Some(Backdoor { host, port })
    }
}

/// `true` if `image` starts with the vDSO fingerprint.
pub fn is_vdso_page(image: &[u8]) -> bool {
    image.len() >= 8 && &image[..8] == VDSO_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_image_fingerprint() {
        let img = vdso_image();
        assert_eq!(img.len(), PAGE_SIZE);
        assert!(is_vdso_page(&img));
        assert!(Backdoor::parse(&img).is_none());
        assert_eq!(img[VDSO_ENTRY_OFFSET], 0xc3);
    }

    #[test]
    fn backdoor_roundtrip() {
        let mut img = vdso_image();
        let bd = Backdoor {
            host: "10.3.1.181".into(),
            port: 1234,
        };
        let blob = bd.to_bytes();
        img[VDSO_ENTRY_OFFSET..VDSO_ENTRY_OFFSET + blob.len()].copy_from_slice(&blob);
        assert_eq!(Backdoor::parse(&img), Some(bd));
        // Still fingerprints as a vDSO page (the exploit only patches the
        // entry point).
        assert!(is_vdso_page(&img));
    }

    #[test]
    fn short_or_foreign_pages_rejected() {
        assert!(!is_vdso_page(b"short"));
        assert!(!is_vdso_page(&[0u8; 4096]));
        assert!(Backdoor::parse(&[0u8; 64]).is_none());
    }
}
