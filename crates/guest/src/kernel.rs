//! The simulated PV guest kernel.
//!
//! A paravirtualized kernel under direct paging builds and maintains its
//! own page tables, but every update goes through the hypervisor. The
//! boot sequence here mirrors the real flow: write the table frames while
//! they are still plain data, then `MMUEXT_PIN_L4_TABLE` (the hypervisor
//! validates and retypes the tree), then `MMUEXT_NEW_BASEPTR`.
//!
//! The kernel maps every pseudo-physical page except its page tables at
//! `KERNEL_BASE + pfn * 4096`, keeps a timestamped kernel log (the medium
//! the paper's exploit transcripts are printed in), and hosts processes,
//! a VFS and the vDSO page.

use crate::process::{Process, Uid};
use crate::vdso;
use crate::vfs::Vfs;
use hvsim::{Hypervisor, HvError, MmuExtOp, MmuUpdate, PageTableEntry, PteFlags};
use hvsim_mem::{DomainId, Mfn, PageType, Pfn, VirtAddr, PAGE_SIZE};
use hvsim_paging::VaIndices;
use serde::{Deserialize, Serialize};

/// Base virtual address of the kernel's linear mapping of guest memory.
///
/// Real PV Linux places this in the Xen-assigned portion of the upper
/// canonical half; the simulator uses a lower-half address (L4 slot 192)
/// because the upper half belongs to the hypervisor layout model. The
/// mapping is the same concept: `va = KERNEL_BASE + pfn * PAGE_SIZE`.
pub const KERNEL_BASE: u64 = 0x6000_0000_0000;

/// Pseudo-physical frame numbers with fixed roles (pfn 0 is start-info).
const PFN_L4: u64 = 1;
const PFN_L3: u64 = 2;
const PFN_L2: u64 = 3;
const PFN_L1: u64 = 4;
const PFN_VDSO: u64 = 5;
/// First pfn available to the kernel heap.
const PFN_HEAP: u64 = 6;

const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

/// The machine frames holding the kernel's four page-table levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMfns {
    /// Top-level (PGD) frame — the domain's cr3.
    pub l4: Mfn,
    /// The PUD frame.
    pub l3: Mfn,
    /// The PMD frame.
    pub l2: Mfn,
    /// The PTE frame.
    pub l1: Mfn,
}

/// A simulated PV guest kernel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GuestKernel {
    dom: DomainId,
    hostname: String,
    tables: TableMfns,
    heap_next: u64,
    processes: Vec<Process>,
    next_pid: u32,
    vfs: Vfs,
    klog: Vec<String>,
    tick: u64,
}

impl GuestKernel {
    /// Boots a kernel inside an existing domain: builds the 4-level page
    /// tables from the domain's own frames, pins them, installs them, and
    /// writes the vDSO image.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors; [`HvError::Inval`] if the domain has
    /// fewer than 8 pages.
    pub fn boot(hv: &mut Hypervisor, dom: DomainId) -> Result<Self, HvError> {
        let domain = hv.domain(dom)?;
        if domain.p2m_len() < 8 {
            return Err(HvError::Inval);
        }
        if domain.p2m_len() > 512 {
            // A single L1 covers 512 pages; enough for every experiment.
            return Err(HvError::Inval);
        }
        let hostname = domain.name().to_owned();
        let mfn_of = |hv: &Hypervisor, pfn: u64| -> Result<Mfn, HvError> {
            hv.domain(dom)?.p2m(Pfn::new(pfn)).ok_or(HvError::Inval)
        };
        let tables = TableMfns {
            l4: mfn_of(hv, PFN_L4)?,
            l3: mfn_of(hv, PFN_L3)?,
            l2: mfn_of(hv, PFN_L2)?,
            l1: mfn_of(hv, PFN_L1)?,
        };
        let idx = VaIndices::of(VirtAddr::new(KERNEL_BASE));

        let write_entry =
            |hv: &mut Hypervisor, table: Mfn, i: usize, e: PageTableEntry| -> Result<(), HvError> {
                hv.guest_write_frame(dom, table, i * 8, &e.raw().to_le_bytes())
            };
        write_entry(hv, tables.l4, idx.l4, PageTableEntry::new(tables.l3, LINK))?;
        write_entry(hv, tables.l3, idx.l3, PageTableEntry::new(tables.l2, LINK))?;
        write_entry(hv, tables.l2, idx.l2, PageTableEntry::new(tables.l1, LINK))?;
        // Map every non-table pfn.
        let pairs: Vec<(u64, Mfn)> = hv
            .domain(dom)?
            .p2m_iter()
            .map(|(p, m)| (p.raw(), m))
            .collect();
        let mut heap_next = PFN_HEAP;
        for (pfn, mfn) in pairs {
            if (PFN_L4..=PFN_L1).contains(&pfn) {
                continue;
            }
            write_entry(hv, tables.l1, pfn as usize, PageTableEntry::new(mfn, LINK))?;
            heap_next = heap_next.max(pfn + 1);
        }
        hv.hc_mmuext_op(dom, &[MmuExtOp::Pin { level: 4, mfn: tables.l4 }])?;
        hv.hc_mmuext_op(dom, &[MmuExtOp::NewBaseptr { mfn: tables.l4 }])?;

        // Install the vDSO image through the freshly built mapping.
        hv.guest_write_va(dom, Self::va_of_pfn_raw(PFN_VDSO), &vdso::vdso_image())?;

        let mut kernel = Self {
            dom,
            hostname,
            tables,
            heap_next,
            processes: Vec::new(),
            next_pid: 1,
            vfs: Vfs::new(),
            klog: Vec::new(),
            tick: 0,
        };
        kernel.spawn("init", Uid::ROOT, false);
        kernel.klog("kernel booted (direct paging, tables pinned)");
        Ok(kernel)
    }

    fn va_of_pfn_raw(pfn: u64) -> VirtAddr {
        VirtAddr::new(KERNEL_BASE + pfn * PAGE_SIZE as u64)
    }

    /// The virtual address the kernel maps `pfn` at.
    pub fn va_of_pfn(&self, pfn: Pfn) -> VirtAddr {
        Self::va_of_pfn_raw(pfn.raw())
    }

    /// The domain this kernel runs in.
    pub fn dom(&self) -> DomainId {
        self.dom
    }

    /// The guest's hostname (its domain name).
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The kernel's page-table frames.
    pub fn tables(&self) -> TableMfns {
        self.tables
    }

    /// The vDSO page's pseudo-physical frame.
    pub fn vdso_pfn(&self) -> Pfn {
        Pfn::new(PFN_VDSO)
    }

    /// The vDSO page's machine frame.
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] if the p2m entry vanished.
    pub fn vdso_mfn(&self, hv: &Hypervisor) -> Result<Mfn, HvError> {
        hv.domain(self.dom)?
            .p2m(Pfn::new(PFN_VDSO))
            .ok_or(HvError::Inval)
    }

    /// The vDSO's kernel virtual address.
    pub fn vdso_va(&self) -> VirtAddr {
        Self::va_of_pfn_raw(PFN_VDSO)
    }

    /// Allocates and maps a fresh heap page; returns `(pfn, mfn, va)`.
    ///
    /// # Errors
    ///
    /// [`HvError::NoMem`] when the domain quota is exhausted or the
    /// kernel's single L1 table is full.
    pub fn alloc_heap_page(
        &mut self,
        hv: &mut Hypervisor,
    ) -> Result<(Pfn, Mfn, VirtAddr), HvError> {
        let (pfn, mfn) = hv.alloc_domain_frame(self.dom, PageType::Writable)?;
        if pfn.raw() >= 512 {
            return Err(HvError::NoMem);
        }
        let ptr = self.tables.l1.base().offset(pfn.raw() * 8).raw();
        hv.hc_mmu_update(
            self.dom,
            &[MmuUpdate::normal(ptr, PageTableEntry::new(mfn, LINK).raw())],
        )?;
        self.heap_next = self.heap_next.max(pfn.raw() + 1);
        Ok((pfn, mfn, Self::va_of_pfn_raw(pfn.raw())))
    }

    /// Reads kernel-virtual memory.
    ///
    /// # Errors
    ///
    /// Propagates translation faults.
    pub fn read(&self, hv: &mut Hypervisor, va: VirtAddr, buf: &mut [u8]) -> Result<(), HvError> {
        hv.guest_read_va(self.dom, va, buf)
    }

    /// Writes kernel-virtual memory.
    ///
    /// # Errors
    ///
    /// Propagates translation faults.
    pub fn write(&self, hv: &mut Hypervisor, va: VirtAddr, bytes: &[u8]) -> Result<(), HvError> {
        hv.guest_write_va(self.dom, va, bytes)
    }

    /// Appends a timestamped line to the kernel log.
    pub fn klog(&mut self, msg: impl AsRef<str>) {
        self.tick += 1;
        let secs = 100 + self.tick / 10;
        let frac = (self.tick % 10) * 1000 + 268;
        self.klog.push(format!("[{secs:5}.{frac:04}] {}", msg.as_ref()));
    }

    /// The kernel log, oldest first.
    pub fn log(&self) -> &[String] {
        &self.klog
    }

    /// `true` if any log line contains `needle`.
    pub fn log_contains(&self, needle: &str) -> bool {
        self.klog.iter().any(|l| l.contains(needle))
    }

    /// Spawns a process.
    pub fn spawn(&mut self, name: &str, uid: Uid, calls_vdso: bool) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes.push(Process::new(pid, uid, name, calls_vdso));
        pid
    }

    /// The process table.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// The guest filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutable access to the guest filesystem.
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvsim::{BuildConfig, XenVersion};

    fn boot_one() -> (Hypervisor, GuestKernel) {
        let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_8));
        let dom = hv.create_domain("testguest", false, 32).unwrap();
        let k = GuestKernel::boot(&mut hv, dom).unwrap();
        (hv, k)
    }

    #[test]
    fn boot_builds_working_address_space() {
        let (mut hv, k) = boot_one();
        let va = k.va_of_pfn(Pfn::new(8));
        k.write(&mut hv, va, b"kernel data").unwrap();
        let mut buf = [0u8; 11];
        k.read(&mut hv, va, &mut buf).unwrap();
        assert_eq!(&buf, b"kernel data");
        // Page tables got typed by the pin.
        assert_eq!(
            hv.mem().info(k.tables().l4).unwrap().page_type(),
            PageType::L4PageTable
        );
    }

    #[test]
    fn vdso_is_mapped_and_fingerprintable() {
        let (mut hv, k) = boot_one();
        let mut head = [0u8; 8];
        k.read(&mut hv, k.vdso_va(), &mut head).unwrap();
        assert_eq!(&head, vdso::VDSO_MAGIC);
        // And it is visible in raw machine memory at the vdso mfn.
        let mfn = k.vdso_mfn(&hv).unwrap();
        let mut raw = [0u8; 8];
        hv.mem().read(mfn.base(), &mut raw).unwrap();
        assert_eq!(&raw, vdso::VDSO_MAGIC);
    }

    #[test]
    fn heap_allocation_extends_mapping() {
        let (mut hv, mut k) = boot_one();
        let (pfn, _mfn, va) = k.alloc_heap_page(&mut hv).unwrap();
        assert!(pfn.raw() >= 6);
        k.write(&mut hv, va, b"heap").unwrap();
        let mut buf = [0u8; 4];
        k.read(&mut hv, va, &mut buf).unwrap();
        assert_eq!(&buf, b"heap");
    }

    #[test]
    fn start_info_mapped_at_pfn_zero() {
        let (mut hv, k) = boot_one();
        let mut magic = [0u8; 16];
        k.read(&mut hv, k.va_of_pfn(Pfn::new(0)), &mut magic).unwrap();
        assert_eq!(&magic, hvsim::START_INFO_MAGIC);
    }

    #[test]
    fn page_table_vas_not_mapped() {
        let (mut hv, k) = boot_one();
        let mut buf = [0u8; 1];
        // pfn 1..=4 are the tables and are deliberately unmapped.
        assert!(k.read(&mut hv, k.va_of_pfn(Pfn::new(2)), &mut buf).is_err());
    }

    #[test]
    fn klog_formats_timestamps() {
        let (_, mut k) = boot_one();
        k.klog("xen_exploit: start_dump ok");
        assert!(k.log_contains("xen_exploit: start_dump ok"));
        assert!(k.log().last().unwrap().starts_with('['));
    }

    #[test]
    fn spawn_assigns_pids() {
        let (_, mut k) = boot_one();
        let a = k.spawn("sshd", Uid::ROOT, false);
        let b = k.spawn("bash", Uid::new(1000), false);
        assert_ne!(a, b);
        assert_eq!(k.processes().len(), 3, "init plus two");
    }

    #[test]
    fn boot_requires_enough_pages() {
        let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_8));
        let dom = hv.create_domain("tiny", false, 4).unwrap();
        assert_eq!(GuestKernel::boot(&mut hv, dom).unwrap_err(), HvError::Inval);
    }
}
