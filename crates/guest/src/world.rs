//! The [`World`]: hypervisor + guest kernels + attacker network, as one
//! deterministic unit.
//!
//! Everything the paper's experiments observe happens through the world:
//! payload execution via forged interrupt handlers (XSA-212-priv), vDSO
//! backdoor activation and reverse shells (XSA-148-priv), hypervisor
//! crashes (XSA-212-crash), and the file-system evidence the monitors
//! check afterwards.

use crate::kernel::GuestKernel;
use crate::net::{RemoteHost, SessionId};
use crate::payload::{Payload, PayloadCommand};
use crate::process::Uid;
use crate::vdso::Backdoor;
use crate::vfs::{FileMode, VfsError};
use hvsim::{BuildConfig, HvError, Hypervisor, XenVersion};
use hvsim_mem::{DomainId, VirtAddr, PAGE_SIZE};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Wall-clock timing of one boot stage, recorded by
/// [`WorldBuilder::build`]. Stage names match the stage tags carried by
/// [`BootError`], so a trace and a boot failure speak the same
/// vocabulary. Timings are observability data only — nothing
/// deterministic may depend on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootStage {
    /// Stage name (e.g. `"boot dom0 kernel"`).
    pub stage: &'static str,
    /// Stage duration in microseconds.
    pub wall_us: u64,
}

/// Errors from world-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorldError {
    /// A hypervisor error.
    Hv(HvError),
    /// A filesystem error.
    Vfs(VfsError),
    /// No kernel booted in that domain.
    NoGuest(DomainId),
    /// No such shell session.
    NoSession,
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::Hv(e) => write!(f, "hypervisor: {e}"),
            WorldError::Vfs(e) => write!(f, "vfs: {e}"),
            WorldError::NoGuest(d) => write!(f, "no guest kernel in {d}"),
            WorldError::NoSession => f.write_str("no such shell session"),
        }
    }
}

impl Error for WorldError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorldError::Hv(e) => Some(e),
            WorldError::Vfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HvError> for WorldError {
    fn from(e: HvError) -> Self {
        WorldError::Hv(e)
    }
}

impl From<VfsError> for WorldError {
    fn from(e: VfsError) -> Self {
        WorldError::Vfs(e)
    }
}

/// A world failed to boot.
///
/// Boot failures are *harness*-level errors, not assessment results: a
/// cell whose world never came up produced no erroneous state to judge.
/// The error carries the boot stage that failed, a human-readable
/// message, and whether the failure is transient (resource exhaustion a
/// retry may clear) — the campaign's bounded retry policy only retries
/// transient failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootError {
    stage: &'static str,
    message: String,
    transient: bool,
    source: Option<WorldError>,
}

impl BootError {
    /// A non-transient boot failure (used by test factories and
    /// non-hypervisor boot stages).
    pub fn new(stage: &'static str, message: impl Into<String>) -> Self {
        Self { stage, message: message.into(), transient: false, source: None }
    }

    /// A transient boot failure: the campaign retry policy may re-run
    /// the factory for these.
    pub fn transient(stage: &'static str, message: impl Into<String>) -> Self {
        Self { stage, message: message.into(), transient: true, source: None }
    }

    /// Wraps an underlying world error, deriving transience from the
    /// hypervisor errno (`-ENOMEM`/`-EBUSY` are retryable).
    pub fn from_world(stage: &'static str, source: WorldError) -> Self {
        let transient = matches!(&source, WorldError::Hv(e) if e.is_transient());
        Self {
            stage,
            message: source.to_string(),
            transient,
            source: Some(source),
        }
    }

    /// The boot stage that failed (e.g. `"create dom0"`).
    pub fn stage(&self) -> &'static str {
        self.stage
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// `true` when a retry might succeed (resource exhaustion).
    pub fn is_transient(&self) -> bool {
        self.transient
    }

    /// The underlying world error, when the failure came from one.
    pub fn world_error(&self) -> Option<&WorldError> {
        self.source.as_ref()
    }
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "boot failed at {}: {}", self.stage, self.message)?;
        if self.transient {
            f.write_str(" (transient)")?;
        }
        Ok(())
    }
}

impl Error for BootError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_ref().map(|e| e as &(dyn Error + 'static))
    }
}

/// Per-domain outcome of executing a forged interrupt handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandlerOutcome {
    /// The payload executed with kernel privileges.
    Executed,
    /// The handler address did not translate / was not executable in
    /// this domain's context (the hardened-layout shield).
    Faulted(String),
    /// The handler pointed at bytes that are not a payload (real
    /// hardware would execute garbage; the simulator reports it).
    Garbage,
}

/// Builds a [`World`].
#[derive(Clone, Debug)]
pub struct WorldBuilder {
    version: XenVersion,
    injector: bool,
    frames: usize,
    chunk_frames: usize,
    dom0_pages: u64,
    guests: Vec<(String, u64)>,
    remote_host: String,
    remote_port: u16,
}

impl WorldBuilder {
    /// A world on the given Xen version with a privileged dom0 and no
    /// additional guests yet.
    pub fn new(version: XenVersion) -> Self {
        Self {
            version,
            injector: false,
            frames: 4096,
            chunk_frames: hvsim_mem::DEFAULT_CHUNK_FRAMES,
            dom0_pages: 96,
            guests: Vec::new(),
            remote_host: "10.3.1.99".to_owned(),
            remote_port: 1234,
        }
    }

    /// Compiles the injector hypercall into the build.
    #[must_use]
    pub fn injector(mut self, enabled: bool) -> Self {
        self.injector = enabled;
        self
    }

    /// Sets installed machine frames.
    #[must_use]
    pub fn frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the copy-on-write chunk size of the frame directory — a
    /// pure performance knob (chunk size 1 is the unobservability worst
    /// case; >= `frames` reproduces monolithic privatization).
    #[must_use]
    pub fn chunk_frames(mut self, chunk_frames: usize) -> Self {
        self.chunk_frames = chunk_frames;
        self
    }

    /// Adds an unprivileged guest.
    #[must_use]
    pub fn guest(mut self, name: &str, pages: u64) -> Self {
        self.guests.push((name.to_owned(), pages));
        self
    }

    /// Builds and boots the world: hypervisor, dom0, guests, kernels,
    /// seeded filesystems.
    ///
    /// # Errors
    ///
    /// [`BootError`] tagged with the boot stage that failed; transient
    /// failures (`-ENOMEM`/`-EBUSY`) are marked retryable for the
    /// campaign's retry policy.
    pub fn build(self) -> Result<World, BootError> {
        let mut boot_trace: Vec<BootStage> = Vec::new();
        let mut stage_start = Instant::now();
        let mut mark = |trace: &mut Vec<BootStage>, stage: &'static str| {
            trace.push(BootStage {
                stage,
                wall_us: stage_start.elapsed().as_micros() as u64,
            });
            stage_start = Instant::now();
        };
        let mut hv = Hypervisor::new(
            BuildConfig::new(self.version)
                .injector(self.injector)
                .frames(self.frames)
                .chunk_frames(self.chunk_frames),
        );
        let dom0 = hv
            .create_domain("xen3", true, self.dom0_pages)
            .map_err(|e| BootError::from_world("create dom0", e.into()))?;
        mark(&mut boot_trace, "create dom0");
        let mut kernels = BTreeMap::new();
        let mut k0 = GuestKernel::boot(&mut hv, dom0)
            .map_err(|e| BootError::from_world("boot dom0 kernel", e.into()))?;
        mark(&mut boot_trace, "boot dom0 kernel");
        // dom0 runs a root process that periodically calls the vDSO (the
        // hook the XSA-148 backdoor fires through) and holds the secret
        // the paper's reverse-shell transcript reads.
        k0.spawn("cron", Uid::ROOT, true);
        k0.vfs_mut()
            .write(
                "/root/root_msg",
                Uid::ROOT,
                FileMode::OwnerOnly,
                b"Confidential content in root folder!",
            )
            .map_err(|e| BootError::from_world("seed dom0 filesystem", e.into()))?;
        kernels.insert(dom0, k0);
        mark(&mut boot_trace, "seed dom0 filesystem");
        for (name, pages) in &self.guests {
            let dom = hv
                .create_domain(name, false, *pages)
                .map_err(|e| BootError::from_world("create guest", e.into()))?;
            mark(&mut boot_trace, "create guest");
            let mut k = GuestKernel::boot(&mut hv, dom)
                .map_err(|e| BootError::from_world("boot guest kernel", e.into()))?;
            k.spawn("bash", Uid::new(1000), true);
            kernels.insert(dom, k);
            mark(&mut boot_trace, "boot guest kernel");
        }
        Ok(World {
            hv,
            dom0,
            kernels,
            remote: RemoteHost::new(&self.remote_host, self.remote_port),
            boot_trace,
        })
    }
}

/// Hypervisor, guests and attacker network in one deterministic unit.
#[derive(Clone, Debug)]
pub struct World {
    hv: Hypervisor,
    dom0: DomainId,
    kernels: BTreeMap<DomainId, GuestKernel>,
    remote: RemoteHost,
    boot_trace: Vec<BootStage>,
}

impl World {
    /// The hypervisor.
    pub fn hv(&self) -> &Hypervisor {
        &self.hv
    }

    /// Per-stage boot timings recorded by [`WorldBuilder::build`]
    /// (bridged into trace streams by the campaign; cloned worlds keep
    /// the original boot's timings).
    pub fn boot_trace(&self) -> &[BootStage] {
        &self.boot_trace
    }

    /// Mutable hypervisor access (hypercalls are `&mut`).
    pub fn hv_mut(&mut self) -> &mut Hypervisor {
        &mut self.hv
    }

    /// Copy-on-write sharing statistics of this world's machine memory.
    /// For a cloned (snapshot) world, `frames_copied` counts the pages
    /// this world has privatized since the clone.
    pub fn snapshot_stats(&self) -> hvsim::SnapshotStats {
        self.hv.mem().snapshot_stats()
    }

    /// Software-TLB hit/miss counters of this world's hypervisor.
    pub fn tlb_stats(&self) -> hvsim::TlbStats {
        self.hv.tlb_stats()
    }

    /// Enables or disables the software TLB (the `--no-tlb` escape
    /// hatch); translations are identical either way.
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        self.hv.set_tlb_enabled(enabled);
    }

    /// The privileged control domain.
    pub fn dom0(&self) -> DomainId {
        self.dom0
    }

    /// Ids of all domains with booted kernels, in order.
    pub fn domains(&self) -> Vec<DomainId> {
        self.kernels.keys().copied().collect()
    }

    /// Finds a domain by name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.kernels
            .iter()
            .find(|(_, k)| k.hostname() == name)
            .map(|(&d, _)| d)
    }

    /// The kernel of a domain.
    ///
    /// # Errors
    ///
    /// [`WorldError::NoGuest`] for unknown domains.
    pub fn kernel(&self, dom: DomainId) -> Result<&GuestKernel, WorldError> {
        self.kernels.get(&dom).ok_or(WorldError::NoGuest(dom))
    }

    /// Mutable kernel access.
    ///
    /// # Errors
    ///
    /// [`WorldError::NoGuest`] for unknown domains.
    pub fn kernel_mut(&mut self, dom: DomainId) -> Result<&mut GuestKernel, WorldError> {
        self.kernels.get_mut(&dom).ok_or(WorldError::NoGuest(dom))
    }

    /// Splits the world into the hypervisor and one kernel — the pattern
    /// exploit code uses constantly (`kernel.write(hv, ...)`).
    ///
    /// # Errors
    ///
    /// [`WorldError::NoGuest`] for unknown domains.
    pub fn hv_and_kernel_mut(
        &mut self,
        dom: DomainId,
    ) -> Result<(&mut Hypervisor, &mut GuestKernel), WorldError> {
        let kernel = self.kernels.get_mut(&dom).ok_or(WorldError::NoGuest(dom))?;
        Ok((&mut self.hv, kernel))
    }

    /// The attacker-side listener.
    pub fn remote(&self) -> &RemoteHost {
        &self.remote
    }

    /// Mutable listener access (e.g. to start listening).
    pub fn remote_mut(&mut self) -> &mut RemoteHost {
        &mut self.remote
    }

    // ------------------------------------------------------------------
    // Execution semantics
    // ------------------------------------------------------------------

    /// A guest invokes `int <vector>`; the gate's handler address is then
    /// "executed" in **every** live domain's context, as the XSA-212-priv
    /// strategy does by registering its payload for every CPU.
    ///
    /// Per domain, execution means: the handler VA must translate and be
    /// executable in that domain's context (layout veto + page walk + NX),
    /// and the bytes there must parse as a [`Payload`]; the payload then
    /// runs with kernel privileges in that domain.
    ///
    /// # Errors
    ///
    /// [`HvError`]-derived errors if the interrupt itself cannot be
    /// dispatched (gate not present, hypervisor crashed).
    pub fn invoke_interrupt(
        &mut self,
        dom: DomainId,
        vector: u8,
    ) -> Result<Vec<(DomainId, HandlerOutcome)>, WorldError> {
        let dispatch = self.hv.software_interrupt(dom, vector)?;
        let targets = self.domains();
        let mut results = Vec::with_capacity(targets.len());
        for d in targets {
            if self.hv.domain(d).map(|x| x.is_dead()).unwrap_or(true) {
                continue;
            }
            let outcome = self.execute_at(d, dispatch.handler);
            results.push((d, outcome));
        }
        Ok(results)
    }

    fn execute_at(&mut self, dom: DomainId, va: VirtAddr) -> HandlerOutcome {
        let translation = match self.hv.guest_exec_va(dom, va) {
            Ok(t) => t,
            Err(e) => return HandlerOutcome::Faulted(e.to_string()),
        };
        let take = PAGE_SIZE - translation.phys.page_offset();
        let mut bytes = vec![0u8; take.min(2048)];
        if self.hv.mem().read(translation.phys, &mut bytes).is_err() {
            return HandlerOutcome::Faulted("code fetch failed".into());
        }
        match Payload::parse(&bytes) {
            Some(payload) => {
                self.apply_payload(dom, &payload);
                HandlerOutcome::Executed
            }
            None => HandlerOutcome::Garbage,
        }
    }

    fn apply_payload(&mut self, dom: DomainId, payload: &Payload) {
        let hostname = self
            .kernels
            .get(&dom)
            .map(|k| k.hostname().to_owned())
            .unwrap_or_default();
        match &payload.command {
            PayloadCommand::DropRootFile { path, template } => {
                let content =
                    Payload::expand_template(template, &Uid::ROOT.id_string(), &hostname);
                if let Some(k) = self.kernels.get_mut(&dom) {
                    // Kernel-privileged: writes as root regardless of any
                    // user-space permission.
                    let _ = k.vfs_mut().write(path, Uid::ROOT, FileMode::PublicRead, content.as_bytes());
                }
            }
            PayloadCommand::KlogMarker { marker } => {
                if let Some(k) = self.kernels.get_mut(&dom) {
                    k.klog(format!("payload: {marker}"));
                }
            }
        }
    }

    /// Advances "time": every process that calls into the vDSO does so
    /// once. If a domain's vDSO has been backdoored, each such call opens
    /// a reverse shell to the remote host with the *calling process's*
    /// privileges. Returns the sessions established this tick.
    pub fn tick_vdso(&mut self) -> Vec<SessionId> {
        let mut sessions = Vec::new();
        let doms = self.domains();
        for dom in doms {
            if self.hv.domain(dom).map(|d| d.is_dead()).unwrap_or(true) {
                continue;
            }
            let Ok(kernel) = self.kernel(dom) else { continue };
            let Ok(vdso_mfn) = kernel.vdso_mfn(&self.hv) else { continue };
            let mut image = vec![0u8; PAGE_SIZE];
            if self.hv.mem().read(vdso_mfn.base(), &mut image).is_err() {
                continue;
            }
            let Some(backdoor) = Backdoor::parse(&image) else { continue };
            if backdoor.host != self.remote.host() || backdoor.port != self.remote.port() {
                continue;
            }
            let callers: Vec<Uid> = kernel
                .processes()
                .iter()
                .filter(|p| p.calls_vdso)
                .map(|p| p.uid)
                .collect();
            for uid in callers {
                if let Some(id) = self.remote.accept(dom, uid, "10.3.1.181") {
                    sessions.push(id);
                }
            }
        }
        sessions
    }

    /// Executes a shell command over an established reverse-shell
    /// session, with the session's privileges, against the compromised
    /// domain's filesystem. Supports the command mix of the paper's
    /// transcript: `whoami`, `hostname`, `id`, `cat <path>`, and `&&`
    /// chaining.
    ///
    /// # Errors
    ///
    /// [`WorldError::NoSession`] for unknown sessions.
    pub fn shell_exec(&mut self, session: SessionId, cmd: &str) -> Result<String, WorldError> {
        let (dom, uid) = {
            let s = self.remote.session(session).ok_or(WorldError::NoSession)?;
            (s.domain, s.uid)
        };
        let mut outputs = Vec::new();
        for part in cmd.split("&&").map(str::trim).filter(|p| !p.is_empty()) {
            outputs.push(self.shell_one(dom, uid, part)?);
        }
        let output = outputs.join("\n");
        if let Some(s) = self.remote.session_mut(session) {
            s.transcript.push((cmd.to_owned(), output.clone()));
        }
        Ok(output)
    }

    fn shell_one(&mut self, dom: DomainId, uid: Uid, cmd: &str) -> Result<String, WorldError> {
        let kernel = self.kernel(dom)?;
        let out = match cmd {
            "whoami" => uid.name(),
            "hostname" => kernel.hostname().to_owned(),
            "id" => uid.id_string(),
            _ if cmd.starts_with("cat ") => {
                let path = cmd[4..].trim();
                match kernel.vfs().read(path, uid) {
                    Ok(data) => String::from_utf8_lossy(data).into_owned(),
                    Err(e) => format!("cat: {e}"),
                }
            }
            _ if cmd.starts_with("ls ") => {
                let prefix = cmd[3..].trim();
                kernel
                    .vfs()
                    .paths()
                    .filter(|p| p.starts_with(prefix))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            other => format!("sh: {other}: command not found"),
        };
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Observation helpers (used by monitors and tests)
    // ------------------------------------------------------------------

    /// `true` if `path` exists in **every** live domain — the paper's
    /// XSA-212-priv success criterion ("a file appears in every domain").
    pub fn file_in_all_domains(&self, path: &str) -> bool {
        !self.kernels.is_empty() && self.kernels.values().all(|k| k.vfs().exists(path))
    }

    /// Domains in which `path` exists.
    pub fn domains_with_file(&self, path: &str) -> Vec<DomainId> {
        self.kernels
            .iter()
            .filter(|(_, k)| k.vfs().exists(path))
            .map(|(&d, _)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdso::{Backdoor, VDSO_ENTRY_OFFSET};
    use hvsim::{AccessMode, IdtEntry, PteFlags};
    use hvsim_mem::Mfn;
    use hvsim_paging::{PageTableEntry, VaIndices, LINEAR_PT_START};

    fn small_world(version: XenVersion) -> World {
        WorldBuilder::new(version)
            .injector(true)
            .guest("xen2", 64)
            .guest("guest03", 64)
            .build()
            .unwrap()
    }

    #[test]
    fn build_boots_dom0_and_guests() {
        let w = small_world(XenVersion::V4_6);
        assert_eq!(w.domains().len(), 3);
        assert!(w.hv().domain(w.dom0()).unwrap().is_privileged());
        assert_eq!(w.domain_by_name("xen2"), Some(w.domains()[1]));
        assert!(w.kernel(w.dom0()).unwrap().vfs().exists("/root/root_msg"));
    }

    #[test]
    fn boot_trace_records_every_stage_in_order() {
        let w = small_world(XenVersion::V4_6);
        let stages: Vec<&str> = w.boot_trace().iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                "create dom0",
                "boot dom0 kernel",
                "seed dom0 filesystem",
                "create guest",
                "boot guest kernel",
                "create guest",
                "boot guest kernel",
            ]
        );
        // Clones keep the original boot's timings.
        assert_eq!(w.clone().boot_trace(), w.boot_trace());
    }

    #[test]
    fn unknown_domain_is_an_error() {
        let mut w = small_world(XenVersion::V4_6);
        assert!(matches!(
            w.kernel(DomainId::new(99)),
            Err(WorldError::NoGuest(_))
        ));
        assert!(w.kernel_mut(DomainId::new(99)).is_err());
    }

    /// Full XSA-212-priv-style payload flow, using the injector as the
    /// write primitive (the exploit crate does the same with
    /// memory_exchange on vulnerable builds).
    fn install_payload_via_injector(w: &mut World, attacker: DomainId) -> VirtAddr {
        let payload_va = VirtAddr::new(LINEAR_PT_START);
        let idx = VaIndices::of(payload_va);
        let (hv, kernel) = w.hv_and_kernel_mut(attacker).unwrap();
        let (_, pmd, _) = kernel.alloc_heap_page(hv).unwrap();
        let (_, pt, _) = kernel.alloc_heap_page(hv).unwrap();
        let (_, payload_frame, payload_heap_va) = kernel.alloc_heap_page(hv).unwrap();
        let link = PteFlags::PRESENT | PteFlags::RW | PteFlags::USER;
        // Forge PT and PMD contents (plain data writes into own frames —
        // these frames are *not* typed as page tables).
        hv.guest_write_frame(
            attacker,
            pt,
            idx.l1 * 8,
            &PageTableEntry::new(payload_frame, link).raw().to_le_bytes(),
        )
        .unwrap();
        hv.guest_write_frame(
            attacker,
            pmd,
            idx.l2 * 8,
            &PageTableEntry::new(pt, link).raw().to_le_bytes(),
        )
        .unwrap();
        // Write the payload blob into the payload frame.
        let blob = Payload::drop_root_file("/tmp/injector_log", "|$(id)|@$(hostname)").to_bytes();
        kernel.write(hv, payload_heap_va, &blob).unwrap();
        // Link the forged PMD into the shared hypervisor L3.
        let l3_slot = hv.shared_l3_mfn().base().offset(idx.l3 as u64 * 8).raw();
        let mut entry = PageTableEntry::new(pmd, link).raw().to_le_bytes().to_vec();
        hv.hc_arbitrary_access(attacker, l3_slot, &mut entry, AccessMode::PhysWrite)
            .unwrap();
        // Register an IDT gate for vector 0x80 pointing at the payload VA.
        let gate = IdtEntry {
            offset: payload_va,
            selector: IdtEntry::XEN_CS,
            dpl: 3,
            present: true,
        };
        let gate_va = hv.sidt(0).offset(IdtEntry::slot_offset(0x80) as u64);
        let mut packed = gate.pack().to_vec();
        hv.hc_arbitrary_access(attacker, gate_va.raw(), &mut packed, AccessMode::LinearWrite)
            .unwrap();
        payload_va
    }

    #[test]
    fn payload_executes_in_every_domain_pre_hardening() {
        let mut w = small_world(XenVersion::V4_8);
        let attacker = w.domain_by_name("guest03").unwrap();
        install_payload_via_injector(&mut w, attacker);
        let results = w.invoke_interrupt(attacker, 0x80).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|(_, o)| *o == HandlerOutcome::Executed));
        assert!(w.file_in_all_domains("/tmp/injector_log"));
        let content = w
            .kernel(w.dom0())
            .unwrap()
            .vfs()
            .read("/tmp/injector_log", Uid::new(1000))
            .unwrap()
            .to_vec();
        assert_eq!(
            String::from_utf8(content).unwrap(),
            "|uid=0(root) gid=0(root) groups=0(root)|@xen3"
        );
    }

    #[test]
    fn payload_blocked_by_hardened_layout() {
        let mut w = small_world(XenVersion::V4_13);
        let attacker = w.domain_by_name("guest03").unwrap();
        install_payload_via_injector(&mut w, attacker);
        let results = w.invoke_interrupt(attacker, 0x80).unwrap();
        assert!(results
            .iter()
            .all(|(_, o)| matches!(o, HandlerOutcome::Faulted(_))));
        assert!(!w.file_in_all_domains("/tmp/injector_log"));
        assert_eq!(w.domains_with_file("/tmp/injector_log"), vec![]);
    }

    #[test]
    fn vdso_backdoor_opens_root_reverse_shell() {
        let mut w = small_world(XenVersion::V4_6);
        w.remote_mut().listen();
        // Patch dom0's vDSO directly in machine memory (what the XSA-148
        // exploit does through its crafted superpage window).
        let dom0 = w.dom0();
        let vdso_mfn = w.kernel(dom0).unwrap().vdso_mfn(w.hv()).unwrap();
        let backdoor = Backdoor {
            host: w.remote().host().to_owned(),
            port: w.remote().port(),
        };
        let blob = backdoor.to_bytes();
        let attacker = w.domain_by_name("xen2").unwrap();
        let mut data = blob.clone();
        w.hv_mut()
            .hc_arbitrary_access(
                attacker,
                vdso_mfn.base().offset(VDSO_ENTRY_OFFSET as u64).raw(),
                &mut data,
                AccessMode::PhysWrite,
            )
            .unwrap();
        let sessions = w.tick_vdso();
        assert_eq!(sessions.len(), 1, "dom0's root cron tripped the backdoor");
        let sid = sessions[0];
        assert_eq!(w.shell_exec(sid, "whoami && hostname").unwrap(), "root\nxen3");
        assert_eq!(
            w.shell_exec(sid, "cat /root/root_msg").unwrap(),
            "Confidential content in root folder!"
        );
        let transcript = &w.remote().session(sid).unwrap().transcript;
        assert_eq!(transcript.len(), 2);
    }

    #[test]
    fn pristine_vdso_opens_nothing() {
        let mut w = small_world(XenVersion::V4_13);
        w.remote_mut().listen();
        assert!(w.tick_vdso().is_empty());
        assert!(w.remote().sessions().is_empty());
    }

    #[test]
    fn backdoor_to_wrong_port_is_lost() {
        let mut w = small_world(XenVersion::V4_6);
        w.remote_mut().listen();
        let dom0 = w.dom0();
        let vdso_mfn = w.kernel(dom0).unwrap().vdso_mfn(w.hv()).unwrap();
        let blob = Backdoor {
            host: "10.9.9.9".into(),
            port: 4444,
        }
        .to_bytes();
        let attacker = w.domain_by_name("xen2").unwrap();
        let mut data = blob;
        w.hv_mut()
            .hc_arbitrary_access(
                attacker,
                vdso_mfn.base().offset(VDSO_ENTRY_OFFSET as u64).raw(),
                &mut data,
                AccessMode::PhysWrite,
            )
            .unwrap();
        assert!(w.tick_vdso().is_empty());
    }

    #[test]
    fn shell_unknown_command() {
        let mut w = small_world(XenVersion::V4_6);
        w.remote_mut().listen();
        let sid = w
            .remote_mut()
            .accept(DomainId::DOM0, Uid::new(1000), "peer")
            .unwrap();
        let out = w.shell_exec(sid, "rm -rf /").unwrap();
        assert!(out.contains("command not found"));
        assert!(matches!(
            w.shell_exec(SessionId(42), "id"),
            Err(WorldError::NoSession)
        ));
    }

    #[test]
    fn shell_permissions_respected() {
        let mut w = small_world(XenVersion::V4_6);
        w.remote_mut().listen();
        let dom0 = w.dom0();
        let sid = w
            .remote_mut()
            .accept(dom0, Uid::new(1000), "peer")
            .unwrap();
        let out = w.shell_exec(sid, "cat /root/root_msg").unwrap();
        assert!(out.contains("permission denied"));
    }

    #[test]
    fn invoke_interrupt_with_garbage_handler() {
        let mut w = small_world(XenVersion::V4_6);
        let attacker = w.domain_by_name("xen2").unwrap();
        // Point vector 0x80 at a mapped guest data page containing zeroes.
        let kernel_data_va = {
            let (hv, kernel) = w.hv_and_kernel_mut(attacker).unwrap();
            let (_, _, va) = kernel.alloc_heap_page(hv).unwrap();
            va
        };
        let gate = IdtEntry {
            offset: kernel_data_va,
            selector: IdtEntry::XEN_CS,
            dpl: 3,
            present: true,
        };
        let gate_va = w.hv().sidt(0).offset(IdtEntry::slot_offset(0x80) as u64);
        let mut packed = gate.pack().to_vec();
        w.hv_mut()
            .hc_arbitrary_access(attacker, gate_va.raw(), &mut packed, AccessMode::LinearWrite)
            .unwrap();
        let results = w.invoke_interrupt(attacker, 0x80).unwrap();
        // The attacker's own domain fetches zeroes (garbage); other
        // domains either fetch their own unrelated bytes (garbage) or
        // fault if the VA is unmapped in their context. Crucially,
        // nothing *executes*.
        let own = results.iter().find(|(d, _)| *d == attacker).unwrap();
        assert_eq!(own.1, HandlerOutcome::Garbage);
        assert!(results.iter().all(|(_, o)| *o != HandlerOutcome::Executed));
    }

    #[test]
    fn crash_kills_all_domains_and_interrupts() {
        let mut w = small_world(XenVersion::V4_6);
        let attacker = w.domain_by_name("xen2").unwrap();
        w.hv_mut().crash("test crash");
        assert!(w.hv().is_crashed());
        assert!(matches!(
            w.invoke_interrupt(attacker, 0x80),
            Err(WorldError::Hv(HvError::Crashed))
        ));
        assert!(w.tick_vdso().is_empty());
    }

    #[test]
    fn shared_l3_is_truly_shared_between_guests() {
        // The same L3 frame is stitched into every guest's L4 — the
        // property the XSA-212-priv strategy exploits to reach all
        // domains at once.
        let w = small_world(XenVersion::V4_8);
        let mut l3s = Vec::new();
        for d in w.domains() {
            let cr3 = w.hv().domain(d).unwrap().cr3().unwrap();
            let raw = w
                .hv()
                .mem()
                .read_u64(cr3.base().offset(256 * 8))
                .unwrap();
            l3s.push(PageTableEntry::from_raw(raw).mfn());
        }
        assert!(l3s.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(l3s[0], w.hv().shared_l3_mfn());
        assert_ne!(l3s[0], Mfn::new(0));
    }
}
