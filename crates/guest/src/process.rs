//! Processes and user ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A numeric user id; 0 is root.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Creates a uid.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `true` for root.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }

    /// The `id(1)`-style description, as the paper's exploit output
    /// prints it (`uid=0(root) gid=0(root) groups=0(root)`).
    pub fn id_string(self) -> String {
        if self.is_root() {
            "uid=0(root) gid=0(root) groups=0(root)".to_owned()
        } else {
            format!("uid={0}(user{0}) gid={0}(user{0}) groups={0}(user{0})", self.0)
        }
    }

    /// The account name (`whoami`).
    pub fn name(self) -> String {
        if self.is_root() {
            "root".to_owned()
        } else {
            format!("user{}", self.0)
        }
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A process inside a guest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Process id (unique within its guest).
    pub pid: u32,
    /// Owner.
    pub uid: Uid,
    /// Command name.
    pub name: String,
    /// Whether the process periodically calls into the vDSO (the hook the
    /// XSA-148 backdoor triggers through).
    pub calls_vdso: bool,
}

impl Process {
    /// Creates a process record.
    pub fn new(pid: u32, uid: Uid, name: &str, calls_vdso: bool) -> Self {
        Self {
            pid,
            uid,
            name: name.to_owned(),
            calls_vdso,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_identity() {
        assert!(Uid::ROOT.is_root());
        assert_eq!(Uid::ROOT.name(), "root");
        assert_eq!(Uid::ROOT.id_string(), "uid=0(root) gid=0(root) groups=0(root)");
    }

    #[test]
    fn user_identity() {
        let u = Uid::new(1000);
        assert!(!u.is_root());
        assert_eq!(u.name(), "user1000");
        assert!(u.id_string().contains("uid=1000"));
        assert_eq!(u.to_string(), "1000");
    }

    #[test]
    fn process_record() {
        let p = Process::new(1, Uid::ROOT, "cron", true);
        assert!(p.calls_vdso);
        assert_eq!(p.name, "cron");
    }
}
