//! A transactional key-value workload for ACID assessment under
//! hypervisor intrusion.
//!
//! The paper motivates intrusion injection with "a transactional
//! business-critical system that runs on a public cloud: how can one
//! assess the impact of successful intrusions on the hypervisor in the
//! ability of the transactional system to ensure the ACID properties?"
//! (§III-C). [`TxnStore`] is that system: a write-ahead-journaled store
//! living in guest memory, with an integrity checker that detects torn or
//! corrupted state after erroneous states are injected underneath it.

use crate::world::{World, WorldError};
use hvsim_mem::{DomainId, Mfn, VirtAddr};
use serde::{Deserialize, Serialize};

const SLOT_SIZE: u64 = 24; // key, value, checksum
const JOURNAL_MAGIC: u64 = 0x5452_414e_5341_4354; // "TRANSACT"
const STATE_IDLE: u64 = 0;
const STATE_PREPARED: u64 = 1;
const STATE_COMMITTED: u64 = 2;
const CHECKSUM_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

fn checksum(key: u64, value: u64) -> u64 {
    (key ^ CHECKSUM_SEED)
        .rotate_left(17)
        .wrapping_mul(value | 1)
        .rotate_right(9)
        ^ value
}

/// Result of an integrity check over the store.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnCheckReport {
    /// Slots holding data.
    pub occupied_slots: usize,
    /// Slots whose checksum does not match their key/value.
    pub corrupted_slots: usize,
    /// A transaction was journalled as prepared/committed but the data
    /// page disagrees (atomicity/durability violation).
    pub torn_transaction: bool,
    /// The journal header itself was corrupted.
    pub journal_corrupted: bool,
}

impl TxnCheckReport {
    /// `true` if every ACID-relevant invariant held.
    pub fn is_consistent(&self) -> bool {
        self.corrupted_slots == 0 && !self.torn_transaction && !self.journal_corrupted
    }
}

/// A journaled key-value store inside one guest's memory.
#[derive(Clone, Debug)]
pub struct TxnStore {
    dom: DomainId,
    journal_va: VirtAddr,
    data_va: VirtAddr,
    data_mfn: Mfn,
    capacity: usize,
}

impl TxnStore {
    /// Creates a store in `dom`, backed by two freshly mapped guest
    /// pages (journal + data).
    ///
    /// # Errors
    ///
    /// Propagates allocation/mapping failures.
    pub fn create(world: &mut World, dom: DomainId, capacity: usize) -> Result<Self, WorldError> {
        assert!(capacity > 0 && capacity as u64 * SLOT_SIZE <= 4096);
        let (hv, kernel) = world.hv_and_kernel_mut(dom)?;
        let (_, _, journal_va) = kernel.alloc_heap_page(hv)?;
        let (_, data_mfn, data_va) = kernel.alloc_heap_page(hv)?;
        hv.guest_write_va(dom, journal_va, &JOURNAL_MAGIC.to_le_bytes())?;
        hv.guest_write_va(dom, journal_va.offset(32), &STATE_IDLE.to_le_bytes())?;
        Ok(Self {
            dom,
            journal_va,
            data_va,
            data_mfn,
            capacity,
        })
    }

    /// The machine frame backing the data page — the natural target for
    /// an intrusion-injection campaign against this workload.
    pub fn data_mfn(&self) -> Mfn {
        self.data_mfn
    }

    /// The domain the store lives in.
    pub fn dom(&self) -> DomainId {
        self.dom
    }

    /// Store capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot_va(&self, slot: usize) -> VirtAddr {
        self.data_va.offset(slot as u64 * SLOT_SIZE)
    }

    fn read_u64(&self, world: &mut World, va: VirtAddr) -> Result<u64, WorldError> {
        let mut buf = [0u8; 8];
        world.hv_mut().guest_read_va(self.dom, va, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_u64(&self, world: &mut World, va: VirtAddr, value: u64) -> Result<(), WorldError> {
        world
            .hv_mut()
            .guest_write_va(self.dom, va, &value.to_le_bytes())?;
        Ok(())
    }

    fn find_slot(&self, world: &mut World, key: u64) -> Result<Option<usize>, WorldError> {
        for slot in 0..self.capacity {
            let k = self.read_u64(world, self.slot_va(slot))?;
            if k == key {
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    fn free_slot(&self, world: &mut World) -> Result<Option<usize>, WorldError> {
        for slot in 0..self.capacity {
            let k = self.read_u64(world, self.slot_va(slot))?;
            let c = self.read_u64(world, self.slot_va(slot).offset(16))?;
            if k == 0 && c == 0 {
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    /// Transactionally writes `key -> value` (key must be non-zero).
    ///
    /// The commit protocol journals the intent, mutates the data page,
    /// then marks the journal committed — three distinct memory writes,
    /// each a window an injected erroneous state can tear.
    ///
    /// # Errors
    ///
    /// [`WorldError::Hv`] on memory faults; capacity exhaustion returns
    /// [`WorldError::Vfs`]-free plain `Hv(Inval)` to keep the error set
    /// small.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0` (reserved as the empty-slot marker).
    pub fn put(&self, world: &mut World, key: u64, value: u64) -> Result<(), WorldError> {
        assert_ne!(key, 0, "key 0 is the empty-slot marker");
        let slot = match self.find_slot(world, key)? {
            Some(s) => s,
            None => self
                .free_slot(world)?
                .ok_or(WorldError::Hv(hvsim::HvError::NoMem))?,
        };
        // 1. journal the intent
        self.write_u64(world, self.journal_va.offset(8), key)?;
        self.write_u64(world, self.journal_va.offset(16), value)?;
        self.write_u64(world, self.journal_va.offset(24), checksum(key, value))?;
        self.write_u64(world, self.journal_va.offset(32), STATE_PREPARED)?;
        // 2. mutate the data page
        let va = self.slot_va(slot);
        self.write_u64(world, va, key)?;
        self.write_u64(world, va.offset(8), value)?;
        self.write_u64(world, va.offset(16), checksum(key, value))?;
        // 3. commit
        self.write_u64(world, self.journal_va.offset(32), STATE_COMMITTED)?;
        Ok(())
    }

    /// Reads the committed value for `key`, verifying its checksum.
    ///
    /// # Errors
    ///
    /// Memory faults propagate; a missing or corrupt slot reads as
    /// `Ok(None)`.
    pub fn get(&self, world: &mut World, key: u64) -> Result<Option<u64>, WorldError> {
        let Some(slot) = self.find_slot(world, key)? else {
            return Ok(None);
        };
        let va = self.slot_va(slot);
        let value = self.read_u64(world, va.offset(8))?;
        let stored = self.read_u64(world, va.offset(16))?;
        if stored == checksum(key, value) {
            Ok(Some(value))
        } else {
            Ok(None)
        }
    }

    /// Audits every ACID-relevant invariant of the store.
    ///
    /// # Errors
    ///
    /// Memory faults propagate (a store whose pages no longer translate
    /// is itself a finding, reported by the caller).
    pub fn check(&self, world: &mut World) -> Result<TxnCheckReport, WorldError> {
        let magic = self.read_u64(world, self.journal_va)?;
        let journal_corrupted = magic != JOURNAL_MAGIC;
        let mut occupied = 0usize;
        let mut corrupted = 0usize;
        for slot in 0..self.capacity {
            let va = self.slot_va(slot);
            let key = self.read_u64(world, va)?;
            let value = self.read_u64(world, va.offset(8))?;
            let stored = self.read_u64(world, va.offset(16))?;
            if key == 0 && value == 0 && stored == 0 {
                continue;
            }
            occupied += 1;
            if stored != checksum(key, value) {
                corrupted += 1;
            }
        }
        // Torn transaction: journal says committed/prepared for a
        // key/value pair the data page does not faithfully hold.
        let jkey = self.read_u64(world, self.journal_va.offset(8))?;
        let jval = self.read_u64(world, self.journal_va.offset(16))?;
        let jstate = self.read_u64(world, self.journal_va.offset(32))?;
        let torn = if jstate == STATE_COMMITTED && jkey != 0 {
            let committed = self.find_slot(world, jkey)?;
            match committed {
                Some(slot) => {
                    let v = self.read_u64(world, self.slot_va(slot).offset(8))?;
                    let c = self.read_u64(world, self.slot_va(slot).offset(16))?;
                    v != jval || c != checksum(jkey, jval)
                }
                None => true,
            }
        } else {
            jstate == STATE_PREPARED
        };
        Ok(TxnCheckReport {
            occupied_slots: occupied,
            corrupted_slots: corrupted,
            torn_transaction: torn,
            journal_corrupted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldBuilder;
    use hvsim::{AccessMode, XenVersion};

    fn setup() -> (World, TxnStore, DomainId) {
        let mut w = WorldBuilder::new(XenVersion::V4_8)
            .injector(true)
            .guest("app", 64)
            .build()
            .unwrap();
        let dom = w.domain_by_name("app").unwrap();
        let store = TxnStore::create(&mut w, dom, 32).unwrap();
        (w, store, dom)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut w, store, _) = setup();
        store.put(&mut w, 42, 4242).unwrap();
        store.put(&mut w, 7, 77).unwrap();
        assert_eq!(store.get(&mut w, 42).unwrap(), Some(4242));
        assert_eq!(store.get(&mut w, 7).unwrap(), Some(77));
        assert_eq!(store.get(&mut w, 9).unwrap(), None);
    }

    #[test]
    fn update_in_place() {
        let (mut w, store, _) = setup();
        store.put(&mut w, 1, 10).unwrap();
        store.put(&mut w, 1, 20).unwrap();
        assert_eq!(store.get(&mut w, 1).unwrap(), Some(20));
        let report = store.check(&mut w).unwrap();
        assert!(report.is_consistent());
        assert_eq!(report.occupied_slots, 1);
    }

    #[test]
    fn clean_store_is_consistent() {
        let (mut w, store, _) = setup();
        for k in 1..=10u64 {
            store.put(&mut w, k, k * 100).unwrap();
        }
        let report = store.check(&mut w).unwrap();
        assert!(report.is_consistent());
        assert_eq!(report.occupied_slots, 10);
    }

    #[test]
    fn injected_corruption_is_detected() {
        let (mut w, store, attacker) = setup();
        store.put(&mut w, 5, 500).unwrap();
        // An intrusion flips bits in the data page underneath the store.
        let mut evil = 0xdead_0000_0000u64.to_le_bytes().to_vec();
        w.hv_mut()
            .hc_arbitrary_access(
                attacker,
                store.data_mfn().base().offset(8).raw(),
                &mut evil,
                AccessMode::PhysWrite,
            )
            .unwrap();
        let report = store.check(&mut w).unwrap();
        assert!(!report.is_consistent());
        assert_eq!(report.corrupted_slots, 1);
        assert!(report.torn_transaction, "journal and data now disagree");
        assert_eq!(store.get(&mut w, 5).unwrap(), None, "reads refuse bad checksums");
    }

    #[test]
    fn capacity_exhaustion() {
        let (mut w, store, _) = setup();
        for k in 1..=32u64 {
            store.put(&mut w, k, k).unwrap();
        }
        assert!(store.put(&mut w, 99, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "empty-slot marker")]
    fn key_zero_rejected() {
        let (mut w, store, _) = setup();
        let _ = store.put(&mut w, 0, 1);
    }
}
