//! The simulated attacker-side network: a listener and reverse-shell
//! sessions.
//!
//! Models the `nc -l -vvv -p 1234` step of the XSA-148 experiment: the
//! attacker listens on a port, the backdoored vDSO in the victim domain
//! connects out, and the attacker runs commands with the privileges of
//! the process that tripped the backdoor.

use crate::process::Uid;
use hvsim_mem::DomainId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an established shell session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub usize);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// One established reverse-shell session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShellSession {
    /// The compromised domain the shell runs in.
    pub domain: DomainId,
    /// Privileges of the process the backdoor hijacked.
    pub uid: Uid,
    /// Commands executed and their output.
    pub transcript: Vec<(String, String)>,
}

/// The attacker's remote listener.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RemoteHost {
    host: String,
    port: u16,
    listening: bool,
    sessions: Vec<ShellSession>,
    log: Vec<String>,
}

impl RemoteHost {
    /// A host that is not yet listening.
    pub fn new(host: &str, port: u16) -> Self {
        Self {
            host: host.to_owned(),
            port,
            listening: false,
            sessions: Vec::new(),
            log: Vec::new(),
        }
    }

    /// The listener address.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The listener port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Starts listening (`nc -l -vvv -p <port>`).
    pub fn listen(&mut self) {
        self.listening = true;
        self.log
            .push(format!("Listening on [0.0.0.0] (family 0, port {})", self.port));
    }

    /// `true` while the listener is up.
    pub fn is_listening(&self) -> bool {
        self.listening
    }

    /// An inbound connection from a compromised guest. Returns the new
    /// session, or `None` if nobody is listening (the connection is
    /// simply lost, as in the real experiment).
    pub fn accept(&mut self, domain: DomainId, uid: Uid, peer: &str) -> Option<SessionId> {
        if !self.listening {
            return None;
        }
        self.log.push(format!(
            "Connection from [{peer}] port {} [tcp/*] ({domain}, uid {uid})",
            self.port
        ));
        self.sessions.push(ShellSession {
            domain,
            uid,
            transcript: Vec::new(),
        });
        Some(SessionId(self.sessions.len() - 1))
    }

    /// Established sessions.
    pub fn sessions(&self) -> &[ShellSession] {
        &self.sessions
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&ShellSession> {
        self.sessions.get(id.0)
    }

    pub(crate) fn session_mut(&mut self, id: SessionId) -> Option<&mut ShellSession> {
        self.sessions.get_mut(id.0)
    }

    /// The listener's console log.
    pub fn log(&self) -> &[String] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_requires_listener() {
        let mut host = RemoteHost::new("10.3.1.99", 1234);
        assert!(host.accept(DomainId::DOM0, Uid::ROOT, "10.3.1.181").is_none());
        host.listen();
        let id = host.accept(DomainId::DOM0, Uid::ROOT, "10.3.1.181").unwrap();
        assert_eq!(id, SessionId(0));
        assert_eq!(host.sessions().len(), 1);
        assert_eq!(host.session(id).unwrap().uid, Uid::ROOT);
        assert!(host.log().iter().any(|l| l.contains("Connection from")));
    }

    #[test]
    fn multiple_sessions() {
        let mut host = RemoteHost::new("h", 1);
        host.listen();
        let a = host.accept(DomainId::new(1), Uid::new(5), "p").unwrap();
        let b = host.accept(DomainId::new(2), Uid::ROOT, "p").unwrap();
        assert_ne!(a, b);
        assert_eq!(host.session(b).unwrap().domain, DomainId::new(2));
        assert!(host.session(SessionId(9)).is_none());
    }
}
