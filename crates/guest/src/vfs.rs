//! A minimal in-memory filesystem with uid-based permissions.

use crate::process::Uid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// File access mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileMode {
    /// Readable and writable only by the owner (and root).
    OwnerOnly,
    /// Readable by everyone, writable by the owner (and root).
    PublicRead,
    /// Readable and writable by everyone (`/tmp` semantics).
    Public,
}

/// Filesystem errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VfsError {
    /// Path does not exist.
    NotFound(String),
    /// Caller lacks permission.
    Denied(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file: {p}"),
            VfsError::Denied(p) => write!(f, "permission denied: {p}"),
        }
    }
}

impl Error for VfsError {}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct FileEntry {
    owner: Uid,
    mode: FileMode,
    data: Vec<u8>,
}

/// The per-guest filesystem.
///
/// The privilege-escalation experiments observe their outcome here: the
/// XSA-212-priv payload drops `/tmp/injector_log` (root-owned) into every
/// domain, and the XSA-148 reverse shell reads dom0's `/root/root_msg`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Vfs {
    files: BTreeMap<String, FileEntry>,
}

impl Vfs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates or overwrites a file as `uid`.
    ///
    /// # Errors
    ///
    /// [`VfsError::Denied`] when overwriting a file `uid` may not write.
    pub fn write(
        &mut self,
        path: &str,
        uid: Uid,
        mode: FileMode,
        data: &[u8],
    ) -> Result<(), VfsError> {
        if let Some(existing) = self.files.get(path) {
            if !Self::may_write(existing, uid) {
                return Err(VfsError::Denied(path.to_owned()));
            }
        }
        self.files.insert(
            path.to_owned(),
            FileEntry {
                owner: uid,
                mode,
                data: data.to_vec(),
            },
        );
        Ok(())
    }

    /// Reads a file as `uid`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::Denied`].
    pub fn read(&self, path: &str, uid: Uid) -> Result<&[u8], VfsError> {
        let entry = self
            .files
            .get(path)
            .ok_or_else(|| VfsError::NotFound(path.to_owned()))?;
        if Self::may_read(entry, uid) {
            Ok(&entry.data)
        } else {
            Err(VfsError::Denied(path.to_owned()))
        }
    }

    /// Whether `path` exists (regardless of permissions).
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// The owner of `path`, if it exists.
    pub fn owner(&self, path: &str) -> Option<Uid> {
        self.files.get(path).map(|e| e.owner)
    }

    /// All paths, in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    fn may_read(entry: &FileEntry, uid: Uid) -> bool {
        uid.is_root()
            || entry.owner == uid
            || matches!(entry.mode, FileMode::PublicRead | FileMode::Public)
    }

    fn may_write(entry: &FileEntry, uid: Uid) -> bool {
        uid.is_root() || entry.owner == uid || entry.mode == FileMode::Public
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut fs = Vfs::new();
        fs.write("/etc/motd", Uid::ROOT, FileMode::PublicRead, b"hi").unwrap();
        assert_eq!(fs.read("/etc/motd", Uid::new(1000)).unwrap(), b"hi");
        assert!(fs.exists("/etc/motd"));
        assert_eq!(fs.owner("/etc/motd"), Some(Uid::ROOT));
    }

    #[test]
    fn owner_only_blocks_other_users() {
        let mut fs = Vfs::new();
        fs.write("/root/root_msg", Uid::ROOT, FileMode::OwnerOnly, b"secret").unwrap();
        assert!(matches!(
            fs.read("/root/root_msg", Uid::new(1000)),
            Err(VfsError::Denied(_))
        ));
        assert_eq!(fs.read("/root/root_msg", Uid::ROOT).unwrap(), b"secret");
    }

    #[test]
    fn root_overrides_everything() {
        let mut fs = Vfs::new();
        fs.write("/home/u/file", Uid::new(7), FileMode::OwnerOnly, b"x").unwrap();
        assert_eq!(fs.read("/home/u/file", Uid::ROOT).unwrap(), b"x");
        fs.write("/home/u/file", Uid::ROOT, FileMode::OwnerOnly, b"y").unwrap();
        assert_eq!(fs.owner("/home/u/file"), Some(Uid::ROOT));
    }

    #[test]
    fn non_owner_cannot_overwrite_protected_file() {
        let mut fs = Vfs::new();
        fs.write("/root/a", Uid::ROOT, FileMode::PublicRead, b"x").unwrap();
        assert!(matches!(
            fs.write("/root/a", Uid::new(5), FileMode::Public, b"y"),
            Err(VfsError::Denied(_))
        ));
    }

    #[test]
    fn missing_file() {
        let fs = Vfs::new();
        assert!(matches!(fs.read("/nope", Uid::ROOT), Err(VfsError::NotFound(_))));
        assert_eq!(fs.owner("/nope"), None);
    }

    #[test]
    fn public_files_writable_by_all() {
        let mut fs = Vfs::new();
        fs.write("/tmp/x", Uid::new(3), FileMode::Public, b"a").unwrap();
        fs.write("/tmp/x", Uid::new(4), FileMode::Public, b"b").unwrap();
        assert_eq!(fs.read("/tmp/x", Uid::new(5)).unwrap(), b"b");
    }
}
