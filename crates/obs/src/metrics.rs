//! The metrics registry: named counters and fixed-bucket latency
//! histograms.
//!
//! Counters are exact and deterministic for a fixed workload; histogram
//! *values* (quantiles, max) are wall-clock derived and therefore
//! excluded by [`MetricsSnapshot::normalized`], while histogram *counts*
//! remain — a campaign always observes the same number of boots no
//! matter how they were scheduled.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Number of power-of-two buckets. See [`Histogram`] for the boundary
/// scheme. 40 buckets reach ~2^39 µs ≈ 6 days, far beyond any cell
/// deadline.
const BUCKETS: usize = 40;

/// A fixed-bucket latency histogram over microsecond values.
///
/// # Bucket boundaries
///
/// Buckets are powers of two, indexed by the bit length of the value:
///
/// * bucket 0 holds exactly the value `0`,
/// * bucket `i` (for `i ≥ 1`) holds values in `[2^(i-1), 2^i)` — so
///   bucket 1 holds `{1}`, bucket 2 holds `{2, 3}`, bucket 3 holds
///   `{4..7}`, and so on,
/// * the last bucket (index 39) additionally absorbs anything at or
///   above `2^39` µs, so no value is ever dropped.
///
/// Quantiles are reported as the **inclusive upper bound** of the
/// bucket containing the quantile rank (`2^i - 1`), clamped to the
/// exact observed maximum — a single-sample histogram therefore
/// reports its one value exactly at every quantile.
///
/// Serializable so streaming checkpoints can persist in-flight
/// per-worker histograms and resume them exactly (bucket counts are
/// positional, so a round trip is lossless).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
}

// Not derived: array `Default` impls stop at 32 elements.
impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        // bit length of the value, capped to the last bucket.
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value_us: u64) {
        self.buckets[Self::bucket_index(value_us)] += 1;
        self.count += 1;
        self.max = self.max.max(value_us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket containing the `q` quantile (`max` is
    /// exact; p50/p95 are bucket-resolution approximations).
    fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Absorbs every observation of `other`. Buckets are fixed and
    /// positional, so merging is exact and commutative — the merge of
    /// per-worker histograms is byte-identical to one histogram that
    /// observed every value itself.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram into the summary serialized in reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50_us: self.quantile_upper(0.50),
            p95_us: self.quantile_upper(0.95),
            max_us: self.max,
        }
    }
}

/// p50/p95/max summary of a [`Histogram`], as serialized into
/// `CampaignReport` and `BENCH_campaign.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Observations recorded (deterministic).
    pub count: u64,
    /// Median latency, rounded up to its bucket boundary.
    pub p50_us: u64,
    /// 95th-percentile latency, rounded up to its bucket boundary.
    pub p95_us: u64,
    /// Largest observed latency (exact).
    pub max_us: u64,
}

impl HistogramSummary {
    /// The summary with wall-clock-derived fields zeroed; `count`
    /// survives because it is schedule-independent.
    pub fn normalized(self) -> Self {
        Self { count: self.count, p50_us: 0, p95_us: 0, max_us: 0 }
    }
}

/// One named counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name, e.g. `"campaign.hypercalls"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name, e.g. `"campaign.boot_us.completed"`.
    pub name: String,
    /// p50/p95/max/count summary.
    pub summary: HistogramSummary,
}

/// Point-in-time copy of a [`MetricsRegistry`], sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All histogram summaries, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The snapshot with wall-clock-derived histogram fields zeroed.
    /// Counter values and histogram counts survive: both are exact
    /// tallies of deterministic events.
    pub fn normalized(&self) -> Self {
        Self {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSnapshot { name: h.name.clone(), summary: h.summary.normalized() })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A shared registry of named counters and histograms.
///
/// Cloning is cheap and clones share state, so one registry can be
/// handed to the campaign, the CLI and a bench harness simultaneously.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut counters = lock_recover(&self.inner.counters);
        *counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Records a latency observation into the named histogram.
    pub fn observe(&self, name: &str, value_us: u64) {
        let mut histograms = lock_recover(&self.inner.histograms);
        histograms.entry(name.to_owned()).or_default().record(value_us);
    }

    /// Merges a pre-aggregated histogram into the named histogram —
    /// how streaming campaigns fold per-worker latency histograms into
    /// the registry in one exact, order-independent step.
    pub fn observe_histogram(&self, name: &str, histogram: &Histogram) {
        let mut histograms = lock_recover(&self.inner.histograms);
        histograms.entry(name.to_owned()).or_default().merge(histogram);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock_recover(&self.inner.counters).get(name).copied().unwrap_or(0)
    }

    /// Copies the registry into a name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock_recover(&self.inner.counters)
            .iter()
            .map(|(name, &value)| CounterSnapshot { name: name.clone(), value })
            .collect();
        let histograms = lock_recover(&self.inner.histograms)
            .iter()
            .map(|(name, h)| HistogramSnapshot { name: name.clone(), summary: h.summary() })
            .collect();
        MetricsSnapshot { counters, histograms }
    }

    /// Clears all counters and histograms.
    pub fn clear(&self) {
        lock_recover(&self.inner.counters).clear();
        lock_recover(&self.inner.histograms).clear();
    }
}

/// One sample on a [`MetricsTimeline`]: the values of a set of live
/// gauges/counters at one wall-clock offset from the run start.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Milliseconds since the run started.
    pub t_ms: u64,
    /// `(name, value)` pairs, name-sorted.
    pub values: Vec<(String, u64)>,
}

/// Encodes one timeline sample as its canonical JSON line (fixed field
/// order, no trailing newline):
///
/// ```json
/// {"t_ms":400,"values":{"progress.done":1200,"queue.depth":16}}
/// ```
pub fn encode_sample(sample: &TimelineSample) -> String {
    let mut out = String::with_capacity(64 + sample.values.len() * 24);
    let _ = write!(out, "{{\"t_ms\":{},\"values\":{{", sample.t_ms);
    for (i, (name, value)) in sample.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::jsonl::push_json_string(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("}}");
    out
}

/// A time series of live pipeline state, sampled every
/// `--metrics-interval-ms` by the campaign's telemetry thread.
///
/// Unlike [`MetricsRegistry`] (folded once, deterministically, at
/// collection time), the timeline is **wall-clock shaped by design** —
/// queue depths, resident cells, throughput and heartbeat ages as they
/// actually evolved — and is therefore never part of determinism
/// diffs and never normalized. Cloning is cheap and clones share
/// state, so the campaign samples while the CLI holds the handle that
/// later writes the JSONL file.
#[derive(Clone, Debug, Default)]
pub struct MetricsTimeline {
    inner: Arc<Mutex<Vec<TimelineSample>>>,
}

impl MetricsTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample; values are name-sorted so the wire format
    /// is stable regardless of how the sampler assembled them.
    pub fn push(&self, t_ms: u64, mut values: Vec<(String, u64)>) {
        values.sort_by(|a, b| a.0.cmp(&b.0));
        lock_recover(&self.inner).push(TimelineSample { t_ms, values });
    }

    /// A copy of every sample, in arrival order.
    pub fn samples(&self) -> Vec<TimelineSample> {
        lock_recover(&self.inner).clone()
    }

    /// Number of samples taken so far.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// `true` when no sample has been taken.
    pub fn is_empty(&self) -> bool {
        lock_recover(&self.inner).is_empty()
    }

    /// Serializes the timeline as JSONL, one sample per line.
    pub fn to_jsonl(&self) -> String {
        let samples = lock_recover(&self.inner);
        let mut out = String::with_capacity(samples.len() * 96);
        for sample in samples.iter() {
            out.push_str(&encode_sample(sample));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.add("campaign.cells", 18);
        reg.add("campaign.cells", 2);
        assert_eq!(reg.counter("campaign.cells"), 20);
        assert_eq!(reg.counter("missing"), 0);
        let clone = reg.clone();
        clone.add("campaign.cells", 1);
        assert_eq!(reg.counter("campaign.cells"), 21, "clones share state");
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.max_us, 1_000_000);
        // p50 of 7 values = 4th smallest (3), bucketed into [2,4) -> 3.
        assert_eq!(s.p50_us, 3);
        assert!(s.p95_us >= 1000);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.max_us);
    }

    #[test]
    fn merged_histograms_match_one_that_saw_everything() {
        let values_a = [0u64, 3, 100, 4096];
        let values_b = [1u64, 3, 99, 1_000_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in values_a {
            a.record(v);
            whole.record(v);
        }
        for v in values_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge is exact, not an approximation");

        let reg = MetricsRegistry::new();
        reg.observe("lat", 7);
        reg.observe_histogram("lat", &b);
        let mut expect = Histogram::new();
        expect.record(7);
        expect.merge(&b);
        assert_eq!(reg.snapshot().histograms[0].summary, expect.summary());
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h, Histogram::default());
        // Normalizing an empty summary is still all zeros.
        assert_eq!(h.summary().normalized(), HistogramSummary::default());
    }

    #[test]
    fn single_value_summary_is_exact() {
        let mut h = Histogram::new();
        h.record(500);
        let s = h.summary();
        assert_eq!(h.count(), 1);
        assert_eq!(s.count, 1);
        // Bucket upper would be 511; min(max) clamps it to the exact max.
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p95_us, 500);
        assert_eq!(s.max_us, 500);
        // A recorded zero lands in bucket 0 and summarizes as zero.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.summary(), HistogramSummary { count: 1, p50_us: 0, p95_us: 0, max_us: 0 });
    }

    #[test]
    fn merging_with_empty_is_the_identity() {
        let mut single = Histogram::new();
        single.record(500);
        let reference = single.clone();
        // empty.merge(single) == single.
        let mut empty = Histogram::new();
        empty.merge(&single);
        assert_eq!(empty, reference);
        assert_eq!(empty.summary(), reference.summary());
        // single.merge(empty) == single.
        single.merge(&Histogram::new());
        assert_eq!(single, reference);
        // empty.merge(empty) stays empty.
        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.summary(), HistogramSummary::default());
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // The documented scheme: 0 -> bucket 0; [2^(i-1), 2^i) -> bucket
        // i; quantiles report the bucket's inclusive upper bound 2^i - 1.
        for (value, upper) in [(1u64, 1u64), (2, 3), (3, 3), (4, 7), (7, 7), (8, 15), (1000, 1023)]
        {
            // A larger second sample keeps max-clamping from masking the
            // p50 bucket bound of the probed value.
            let mut probe = Histogram::new();
            probe.record(value);
            probe.record(upper + 1234);
            assert_eq!(
                probe.summary().p50_us,
                upper,
                "value {value} must report bucket upper bound {upper}"
            );
        }
    }

    #[test]
    fn snapshot_is_name_sorted_and_normalizes() {
        let reg = MetricsRegistry::new();
        reg.add("z.counter", 1);
        reg.add("a.counter", 2);
        reg.observe("z.lat_us", 100);
        reg.observe("a.lat_us", 7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.counter", "z.counter"]);
        let hnames: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hnames, vec!["a.lat_us", "z.lat_us"]);
        let norm = snap.normalized();
        assert_eq!(norm.counters, snap.counters);
        assert_eq!(norm.histograms[0].summary, HistogramSummary { count: 1, ..Default::default() });
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let reg = MetricsRegistry::new();
        reg.add("campaign.retries", 3);
        reg.observe("campaign.boot_us.completed", 1234);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn timeline_samples_are_name_sorted_jsonl() {
        let timeline = MetricsTimeline::new();
        assert!(timeline.is_empty());
        let sampler = timeline.clone();
        sampler.push(
            200,
            vec![("queue.depth".to_owned(), 16), ("progress.done".to_owned(), 1200)],
        );
        sampler.push(400, vec![("progress.done".to_owned(), 2400)]);
        assert_eq!(timeline.len(), 2, "clones share state");
        let samples = timeline.samples();
        assert_eq!(
            samples[0].values,
            vec![("progress.done".to_owned(), 1200), ("queue.depth".to_owned(), 16)],
            "values are name-sorted on push"
        );
        let jsonl = timeline.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"t_ms\":200,\"values\":{\"progress.done\":1200,\"queue.depth\":16}}\n\
             {\"t_ms\":400,\"values\":{\"progress.done\":2400}}\n"
        );
        // Samples round-trip through serde for programmatic consumers.
        let json = serde_json::to_string(&samples).unwrap();
        let back: Vec<TimelineSample> = serde_json::from_str(&json).unwrap();
        assert_eq!(samples, back);
    }

    #[test]
    fn timeline_encoding_escapes_names() {
        let s = TimelineSample { t_ms: 7, values: vec![("a\"b\n".to_owned(), 1)] };
        assert_eq!(encode_sample(&s), "{\"t_ms\":7,\"values\":{\"a\\\"b\\n\":1}}");
        let empty = TimelineSample { t_ms: 0, values: Vec::new() };
        assert_eq!(encode_sample(&empty), "{\"t_ms\":0,\"values\":{}}");
    }

    #[test]
    fn clear_resets() {
        let reg = MetricsRegistry::new();
        reg.add("c", 1);
        reg.observe("h", 1);
        reg.clear();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
