//! The flight recorder: a per-worker fixed-capacity overwrite-oldest
//! ring of recent events, always on, dumped only when something goes
//! wrong.
//!
//! Tracing answers "what did the whole campaign do" and costs a sink
//! allocation per event; the flight recorder answers "what were the
//! last things *this worker* did before its cell degraded" and costs a
//! bounded ring slot. Workers record hypercall audit activity, boot
//! stages, phase boundaries, and chaos fault injections as they go;
//! when a cell degrades (panic, boot failure, timeout, chaos fault)
//! the recorder's tail for that cell becomes the cell's **forensic
//! tail**, serialized in the same canonical JSONL wire format as
//! traces (`trace validate` accepts a flight dump).
//!
//! Determinism: every event is tagged with the grid *slot* it belongs
//! to, and a cell runs entirely on one worker, so filtering the ring
//! by slot and re-stamping sequence numbers yields a tail that depends
//! only on the cell's own execution — byte-identical (after
//! normalization) at any `--jobs` count. The only nondeterministic
//! field is `wall_us`, which [`normalized_dump_jsonl`] zeroes, exactly
//! like trace normalization.

use crate::jsonl;
use crate::trace::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default ring capacity: enough for the full event stream of any
/// single cell (boot stages + audits + phase marks are well under a
/// hundred events) with headroom for context from the previous cells
/// on the same worker.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Recovers a mutex guard even if a holder panicked mid-record. Ring
/// pushes are single `VecDeque` operations, so a poisoned recorder
/// still holds a consistent event sequence.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One flight-recorder event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Grid slot the event belongs to (the cell's global index).
    pub slot: u64,
    /// Sequence number. Monotonic per recorder while in the ring;
    /// re-stamped from 0 when a tail is extracted, so tails are
    /// deterministic for a fixed slot.
    pub seq: u64,
    /// Slash-separated event path, e.g. `"cell/boot/result"`,
    /// `"audit/idt_gate_overwritten"`, `"chaos/worker_panic"`.
    pub path: String,
    /// Wall-clock microseconds (a measured duration or 0); the only
    /// nondeterministic field, zeroed by normalization.
    pub wall_us: u64,
    /// Free-form human-readable detail ("" when there is none).
    pub detail: String,
}

/// A fixed-capacity overwrite-oldest event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<FlightEvent>,
    recorded: u64,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (0 records
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(DEFAULT_FLIGHT_CAPACITY)),
            recorded: 0,
            seq: 0,
        }
    }

    /// Appends an event, evicting the oldest once full. The `fill`
    /// closure writes the event's path and detail into *recycled*
    /// string buffers (cleared, capacity retained from the evicted
    /// event), so once the ring is warm, recording performs no heap
    /// allocation — the property that keeps the always-on recorder
    /// within its <5% campaign-throughput budget.
    pub fn record_parts(
        &mut self,
        slot: u64,
        wall_us: u64,
        fill: impl FnOnce(&mut String, &mut String),
    ) {
        if self.capacity == 0 {
            return;
        }
        let recycled = if self.events.len() >= self.capacity {
            self.events.pop_front().map(|mut event| {
                event.path.clear();
                event.detail.clear();
                event
            })
        } else {
            None
        };
        let mut event = recycled.unwrap_or_else(|| FlightEvent {
            slot: 0,
            seq: 0,
            path: String::new(),
            wall_us: 0,
            detail: String::new(),
        });
        event.slot = slot;
        event.seq = self.seq;
        event.wall_us = wall_us;
        fill(&mut event.path, &mut event.detail);
        self.events.push_back(event);
        self.seq += 1;
        self.recorded += 1;
    }

    /// Appends an event, evicting the oldest once full.
    pub fn record(&mut self, slot: u64, path: &str, wall_us: u64, detail: String) {
        self.record_parts(slot, wall_us, |p, d| {
            p.push_str(path);
            d.push_str(&detail);
        });
    }

    /// The events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The tail for one slot: every retained event of that slot, in
    /// order, re-stamped with sequence numbers from 0. Because a cell
    /// runs on a single worker and its events are the newest in that
    /// worker's ring, the tail is the cell's last `min(n, capacity)`
    /// events regardless of scheduling.
    pub fn tail(&self, slot: u64) -> Vec<FlightEvent> {
        self.events
            .iter()
            .filter(|e| e.slot == slot)
            .enumerate()
            .map(|(i, e)| FlightEvent { seq: i as u64, ..e.clone() })
            .collect()
    }

    /// The whole ring, oldest first — for stall dumps, where the
    /// wedged slot is whatever the worker touched last.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }
}

/// A cloneable handle to a shared [`FlightRecorder`], or to nothing.
///
/// Workers own one handle each and record through it; the stall
/// supervisor holds clones of every worker's handle so it can dump a
/// wedged worker's ring from outside. A disabled handle (capacity 0)
/// costs one branch per call and never runs detail closures.
#[derive(Clone, Debug, Default)]
pub struct FlightHandle {
    inner: Option<Arc<Mutex<FlightRecorder>>>,
}

impl FlightHandle {
    /// A handle to a fresh recorder; `capacity == 0` yields a disabled
    /// handle that records nothing.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: (capacity > 0).then(|| Arc::new(Mutex::new(FlightRecorder::new(capacity)))),
        }
    }

    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a detail-free event: one branch when disabled, one
    /// uncontended lock and zero allocations when enabled.
    pub fn record(&self, slot: u64, path: &str, wall_us: u64) {
        self.record_with(slot, path, wall_us, |_| {});
    }

    /// Records one event. The detail writer runs only when enabled,
    /// and appends into a recycled ring buffer — use `write!` or
    /// `push_str`, not `format!`, so the enabled path stays
    /// allocation-free too.
    pub fn record_with<F>(&self, slot: u64, path: &str, wall_us: u64, detail: F)
    where
        F: FnOnce(&mut String),
    {
        if let Some(inner) = &self.inner {
            lock_recover(inner).record_parts(slot, wall_us, |p, d| {
                p.push_str(path);
                detail(d);
            });
        }
    }

    /// Runs `f` against the locked recorder when enabled — one lock
    /// (and one enabled-check) for a whole batch of events, used by
    /// call sites that record per hypercall or per boot stage.
    pub fn with_recorder<F>(&self, f: F)
    where
        F: FnOnce(&mut FlightRecorder),
    {
        if let Some(inner) = &self.inner {
            f(&mut lock_recover(inner));
        }
    }

    /// The re-sequenced tail for one slot (empty when disabled).
    pub fn tail(&self, slot: u64) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => lock_recover(inner).tail(slot),
            None => Vec::new(),
        }
    }

    /// The whole ring (empty when disabled).
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => lock_recover(inner).snapshot(),
            None => Vec::new(),
        }
    }

    /// Total events ever recorded through this handle.
    pub fn recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => lock_recover(inner).recorded(),
            None => 0,
        }
    }
}

/// Converts flight events to trace events in the canonical wire
/// schema: `shard = slot + 1` (the cell-shard convention), kind
/// `point`, the detail carried as a `detail` attribute.
pub fn to_trace_events(events: &[FlightEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| TraceEvent {
            shard: e.slot + 1,
            seq: e.seq,
            kind: EventKind::Point,
            path: e.path.clone(),
            wall_us: e.wall_us,
            attrs: if e.detail.is_empty() {
                Vec::new()
            } else {
                vec![("detail".to_owned(), e.detail.clone())]
            },
        })
        .collect()
}

/// Serializes a flight dump as canonical JSONL — the same wire format
/// as traces, so `trace validate` accepts a dump.
pub fn dump_jsonl(events: &[FlightEvent]) -> String {
    jsonl::to_jsonl(&to_trace_events(events))
}

/// [`dump_jsonl`] with every `wall_us` zeroed: deterministic for a
/// fixed slot at any worker count.
pub fn normalized_dump_jsonl(events: &[FlightEvent]) -> String {
    jsonl::normalized_jsonl(&to_trace_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(1, &format!("e{i}"), 0, String::new());
        }
        assert_eq!(r.recorded(), 5);
        let paths: Vec<&str> = r.events().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["e2", "e3", "e4"], "the two oldest events were evicted");
        // Ring-internal sequence numbers keep counting across evictions.
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn tail_filters_by_slot_and_resequences() {
        let mut r = FlightRecorder::new(8);
        r.record(7, "old/cell", 10, String::new());
        r.record(9, "cell/start", 0, "XSA-212".to_owned());
        r.record(9, "cell/boot/result", 120, String::new());
        r.record(9, "audit/idt_gate_overwritten", 0, "vector 65".to_owned());
        let tail = r.tail(9);
        assert_eq!(tail.len(), 3, "the previous cell's event is filtered out");
        let keyed: Vec<(u64, &str)> = tail.iter().map(|e| (e.seq, e.path.as_str())).collect();
        assert_eq!(
            keyed,
            vec![(0, "cell/start"), (1, "cell/boot/result"), (2, "audit/idt_gate_overwritten")],
            "tails are re-sequenced from 0 so they are position-independent"
        );
        assert!(r.tail(42).is_empty());
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = FlightRecorder::new(0);
        r.record(1, "e", 0, String::new());
        assert_eq!(r.recorded(), 0);
        assert!(r.tail(1).is_empty());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let h = FlightHandle::disabled();
        assert!(!h.is_enabled());
        h.record_with(1, "e", 0, |_| panic!("detail closure must not run"));
        h.with_recorder(|_| panic!("batch closure must not run"));
        assert!(h.tail(1).is_empty());
        assert!(h.snapshot().is_empty());
        assert_eq!(h.recorded(), 0);
        assert!(!FlightHandle::new(0).is_enabled());
        assert!(!FlightHandle::default().is_enabled());
    }

    #[test]
    fn handle_clones_share_the_ring() {
        let h = FlightHandle::new(4);
        let supervisor = h.clone();
        h.record(3, "cell/start", 0);
        h.record_with(3, "chaos/worker_panic", 0, |d| d.push_str("slot 3"));
        assert_eq!(supervisor.snapshot().len(), 2, "a clone sees the worker's events");
        assert_eq!(supervisor.tail(3).len(), 2);
        assert_eq!(supervisor.recorded(), 2);
    }

    #[test]
    fn dumps_are_canonical_jsonl() {
        let events = vec![
            FlightEvent {
                slot: 4,
                seq: 0,
                path: "cell/start".into(),
                wall_us: 0,
                detail: "XSA-182/4.8/injection".into(),
            },
            FlightEvent {
                slot: 4,
                seq: 1,
                path: "cell/boot/result".into(),
                wall_us: 350,
                detail: String::new(),
            },
        ];
        let dump = dump_jsonl(&events);
        // The dump round-trips through the strict trace parser.
        let parsed = jsonl::parse_jsonl(&dump).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].shard, 5, "cell slot s dumps as trace shard s+1");
        assert_eq!(parsed[0].attrs, vec![("detail".to_owned(), "XSA-182/4.8/injection".to_owned())]);
        assert_eq!(parsed[1].wall_us, 350);
        assert!(parsed[1].attrs.is_empty());
        // Normalization zeroes only the wall clock.
        let norm = normalized_dump_jsonl(&events);
        assert!(norm.contains("\"wall_us\":0"));
        assert!(!norm.contains("350"));
        assert_eq!(jsonl::parse_jsonl(&norm).unwrap().len(), 2);
    }

    #[test]
    fn flight_events_round_trip_through_serde() {
        let e = FlightEvent {
            slot: 11,
            seq: 2,
            path: "chaos/slowdown".into(),
            wall_us: 80_000,
            detail: "2x deadline".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: FlightEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        // An empty detail survives the round trip too.
        let plain = FlightEvent { detail: String::new(), ..e };
        let json = serde_json::to_string(&plain).unwrap();
        let back: FlightEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(plain, back);
    }

    #[test]
    fn poisoned_recorder_still_records() {
        let h = FlightHandle::new(4);
        h.record(1, "before", 0);
        let inner = h.inner.as_ref().unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.lock().unwrap();
            panic!("poison");
        }));
        h.record(1, "after", 0);
        assert_eq!(h.tail(1).len(), 2);
    }
}
