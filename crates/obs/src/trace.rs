//! The trace sink: sharded, lock-poisoning-safe collection of span and
//! point events.
//!
//! Ordering is carried by a **logical sequence clock**, allocated
//! per-[`TraceCtx`] (one context per campaign cell, or per other unit of
//! deterministic work). Wall-clock durations ride along in a separate
//! `wall_us` field that [`TraceEvent::normalized`] zeroes, so a trace
//! sorted by `(shard, seq)` and normalized is byte-identical no matter
//! how many worker threads interleaved while producing it.
//!
//! The disabled path is a no-op: a disabled [`Tracer`] holds no sink,
//! every span/point call takes an early return before any allocation,
//! and attribute closures are never invoked.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of independently locked storage shards inside a [`Tracer`].
/// Events are routed by `ctx_shard % STORAGE_SHARDS`, so contexts on
/// different workers rarely contend on the same mutex.
const STORAGE_SHARDS: usize = 16;

/// Recovers a mutex guard even if a holder panicked mid-push. Trace
/// events are append-only `Vec` pushes, so a poisoned shard still holds
/// a consistent prefix of events.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The kind of a trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered (`wall_us` is always 0).
    SpanEnter,
    /// A span was exited (`wall_us` is the span's wall-clock duration).
    SpanExit,
    /// An instantaneous event (`wall_us` is caller-supplied, often an
    /// externally measured duration being bridged in).
    Point,
}

impl EventKind {
    /// The stable wire label used in JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Point => "point",
        }
    }

    /// Parses a wire label back into a kind.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "span_enter" => Some(EventKind::SpanEnter),
            "span_exit" => Some(EventKind::SpanExit),
            "point" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// One trace event.
///
/// `(shard, seq)` is the deterministic ordering key: `shard` identifies
/// the logical context (cell index + 1; shard 0 is campaign setup) and
/// `seq` its per-context logical clock. `wall_us` is the only
/// nondeterministic field and is excluded by [`TraceEvent::normalized`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical context id (not the storage shard index).
    pub shard: u64,
    /// Per-context logical sequence number, starting at 0.
    pub seq: u64,
    /// Enter / exit / point.
    pub kind: EventKind,
    /// Slash-separated span path, e.g. `"cell/inject"`.
    pub path: String,
    /// Wall-clock microseconds (0 for enters; duration for exits).
    pub wall_us: u64,
    /// Free-form key/value attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl TraceEvent {
    /// The event with its wall-clock field zeroed; everything that
    /// remains is deterministic for a fixed workload.
    pub fn normalized(&self) -> Self {
        Self { wall_us: 0, ..self.clone() }
    }
}

#[derive(Debug, Default)]
struct Sink {
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl Sink {
    fn new() -> Self {
        Self {
            shards: (0..STORAGE_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn push(&self, event: TraceEvent) {
        let idx = (event.shard as usize) % self.shards.len();
        lock_recover(&self.shards[idx]).push(event);
    }

    fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for shard in &self.shards {
            events.append(&mut lock_recover(shard));
        }
        events.sort_by_key(|a| (a.shard, a.seq));
        events
    }
}

/// Handle to a trace sink, or to nothing at all.
///
/// Cloning is cheap (an `Arc` bump); a default-constructed or
/// [`Tracer::disabled`] tracer records nothing and costs one branch per
/// call site.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Sink>>,
}

impl Tracer {
    /// A tracer that records events.
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Sink::new())) }
    }

    /// A tracer that drops everything (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A logical context feeding this tracer. `shard` is the context's
    /// identity in the trace — give each deterministic unit of work
    /// (campaign cell, setup phase) its own.
    pub fn ctx(&self, shard: u64) -> TraceCtx {
        TraceCtx {
            sink: self.inner.clone(),
            shard,
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Removes and returns all recorded events, sorted by
    /// `(shard, seq)`. Returns an empty vec on a disabled tracer.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => sink.drain(),
            None => Vec::new(),
        }
    }
}

/// A logical trace context: owns the per-context sequence clock.
///
/// The clock lives here — not in the storage shard — so the numbering
/// of a context's events depends only on the order of its own calls,
/// never on which other contexts happened to share a storage mutex.
#[derive(Clone, Debug)]
pub struct TraceCtx {
    sink: Option<Arc<Sink>>,
    shard: u64,
    seq: Arc<AtomicU64>,
}

impl TraceCtx {
    /// `true` when this context records events.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The logical shard id this context stamps on its events.
    pub fn shard(&self) -> u64 {
        self.shard
    }

    fn emit(&self, kind: EventKind, path: String, wall_us: u64, attrs: Vec<(String, String)>) {
        if let Some(sink) = &self.sink {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            sink.push(TraceEvent { shard: self.shard, seq, kind, path, wall_us, attrs });
        }
    }

    /// Opens a span. The guard emits `span_enter` now and `span_exit`
    /// (with the measured duration) on drop — including drops during
    /// panic unwinding, so crashed phases still close their spans.
    pub fn span(&self, path: &str) -> Span {
        self.span_with(path, Vec::new)
    }

    /// Opens a span with attributes. The closure runs only when the
    /// context is enabled, so disabled call sites allocate nothing.
    pub fn span_with<F>(&self, path: &str, attrs: F) -> Span
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        if self.sink.is_none() {
            return Span { ctx: None, path: String::new(), started: None };
        }
        self.emit(EventKind::SpanEnter, path.to_owned(), 0, attrs());
        Span {
            ctx: Some(self.clone()),
            path: path.to_owned(),
            started: Some(Instant::now()),
        }
    }

    /// Emits an instantaneous event. `wall_us` may carry an externally
    /// measured duration (e.g. a bridged boot-stage timing); it is
    /// normalized away like span durations.
    pub fn point<F>(&self, path: &str, wall_us: u64, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        if self.sink.is_none() {
            return;
        }
        self.emit(EventKind::Point, path.to_owned(), wall_us, attrs());
    }
}

/// RAII span guard returned by [`TraceCtx::span`].
#[derive(Debug)]
pub struct Span {
    ctx: Option<TraceCtx>,
    path: String,
    started: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(ctx) = &self.ctx {
            let wall_us = self
                .started
                .map(|s| s.elapsed().as_micros() as u64)
                .unwrap_or(0);
            ctx.emit(EventKind::SpanExit, std::mem::take(&mut self.path), wall_us, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let ctx = tracer.ctx(7);
        assert!(!ctx.is_enabled());
        let span = ctx.span_with("cell", || panic!("attrs closure must not run"));
        ctx.point("cell/event", 3, || panic!("attrs closure must not run"));
        drop(span);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn default_tracer_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_sequence_per_context() {
        let tracer = Tracer::enabled();
        let ctx = tracer.ctx(1);
        {
            let _outer = ctx.span("cell");
            let _inner = ctx.span_with("cell/boot", || vec![("attempts".into(), "1".into())]);
            ctx.point("cell/boot/create dom0", 12, Vec::new);
        }
        let events = tracer.drain();
        let shape: Vec<(u64, EventKind, &str)> =
            events.iter().map(|e| (e.seq, e.kind, e.path.as_str())).collect();
        assert_eq!(
            shape,
            vec![
                (0, EventKind::SpanEnter, "cell"),
                (1, EventKind::SpanEnter, "cell/boot"),
                (2, EventKind::Point, "cell/boot/create dom0"),
                (3, EventKind::SpanExit, "cell/boot"),
                (4, EventKind::SpanExit, "cell"),
            ]
        );
        assert_eq!(events[1].attrs, vec![("attempts".to_owned(), "1".to_owned())]);
        assert_eq!(events[2].wall_us, 12);
        // Drain clears.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn drain_orders_by_shard_then_seq() {
        let tracer = Tracer::enabled();
        // Interleave contexts whose shards collide modulo the storage
        // shard count, so storage order differs from logical order.
        let a = tracer.ctx(2);
        let b = tracer.ctx(2 + STORAGE_SHARDS as u64);
        b.point("b0", 0, Vec::new);
        a.point("a0", 0, Vec::new);
        b.point("b1", 0, Vec::new);
        a.point("a1", 0, Vec::new);
        let events = tracer.drain();
        let keys: Vec<(u64, u64, &str)> =
            events.iter().map(|e| (e.shard, e.seq, e.path.as_str())).collect();
        assert_eq!(
            keys,
            vec![
                (2, 0, "a0"),
                (2, 1, "a1"),
                (2 + STORAGE_SHARDS as u64, 0, "b0"),
                (2 + STORAGE_SHARDS as u64, 1, "b1"),
            ]
        );
    }

    #[test]
    fn span_exit_fires_during_unwind() {
        let tracer = Tracer::enabled();
        let ctx = tracer.ctx(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = ctx.span("cell/inject");
            panic!("injected crash");
        }));
        assert!(result.is_err());
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::SpanExit);
        assert_eq!(events[1].path, "cell/inject");
    }

    #[test]
    fn normalization_zeroes_wall_clock_only() {
        let e = TraceEvent {
            shard: 3,
            seq: 9,
            kind: EventKind::SpanExit,
            path: "cell".into(),
            wall_us: 1234,
            attrs: vec![("k".into(), "v".into())],
        };
        let n = e.normalized();
        assert_eq!(n.wall_us, 0);
        assert_eq!((n.shard, n.seq, n.kind, n.path.as_str()), (3, 9, EventKind::SpanExit, "cell"));
        assert_eq!(n.attrs, e.attrs);
    }

    #[test]
    fn poisoned_shard_still_drains() {
        let tracer = Tracer::enabled();
        let ctx = tracer.ctx(0);
        ctx.point("before", 0, Vec::new);
        // Poison a storage shard by panicking while holding its lock.
        let sink = tracer.inner.as_ref().map(Arc::clone);
        let sink = match sink {
            Some(s) => s,
            None => unreachable!("enabled tracer has a sink"),
        };
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = sink.shards[0].lock();
            panic!("poison");
        }));
        ctx.point("after", 0, Vec::new);
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
    }
}
