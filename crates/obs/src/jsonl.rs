//! JSONL wire format for traces: one event per line, stable field
//! order, hand-rolled so the byte layout is part of the contract.
//!
//! Schema (field order is fixed):
//!
//! ```text
//! {"shard":N,"seq":N,"kind":"span_enter|span_exit|point","path":"...","wall_us":N,"attrs":{"k":"v",...}}
//! ```
//!
//! The encoder emits exactly this shape; [`parse_line`] accepts the
//! canonical form plus insignificant whitespace and any key order, but
//! rejects unknown keys, duplicate keys, missing keys and wrong types —
//! that strictness is what `trace validate` runs in CI.

use crate::trace::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes one event as its canonical JSON line (no trailing newline).
pub fn encode_event(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"shard\":{},\"seq\":{},\"kind\":\"{}\",\"path\":", event.shard, event.seq, event.kind.label());
    push_json_string(&mut out, &event.path);
    let _ = write!(out, ",\"wall_us\":{},\"attrs\":{{", event.wall_us);
    for (i, (k, v)) in event.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        out.push(':');
        push_json_string(&mut out, v);
    }
    out.push_str("}}");
    out
}

/// Encodes events as JSONL (one line per event, trailing newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&encode_event(event));
        out.push('\n');
    }
    out
}

/// Encodes events with wall-clock fields zeroed — the byte-identical
/// form the determinism suite compares across `--jobs` counts.
pub fn normalized_jsonl(events: &[TraceEvent]) -> String {
    let normalized: Vec<TraceEvent> = events.iter().map(TraceEvent::normalized).collect();
    to_jsonl(&normalized)
}

/// A schema violation found while parsing a JSONL line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when unknown at construction).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: 0, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(format!("expected unsigned integer at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of range"))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the full scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = match s.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.bytes.len()
    }
}

/// Parses and validates one JSONL line against the event schema.
///
/// # Errors
///
/// [`ParseError`] (with `line` set to 0; callers stamp the real line
/// number) on malformed JSON, unknown/duplicate/missing keys, or
/// wrong value types.
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let mut sc = Scanner::new(line);
    sc.expect(b'{')?;
    let mut shard = None;
    let mut seq = None;
    let mut kind = None;
    let mut path = None;
    let mut wall_us = None;
    let mut attrs: Option<Vec<(String, String)>> = None;
    sc.skip_ws();
    if sc.peek() != Some(b'}') {
        loop {
            let key = sc.parse_string()?;
            sc.expect(b':')?;
            let dup = match key.as_str() {
                "shard" => shard.replace(sc.parse_u64()?).is_some(),
                "seq" => seq.replace(sc.parse_u64()?).is_some(),
                "kind" => {
                    let label = sc.parse_string()?;
                    let parsed = EventKind::parse(&label)
                        .ok_or_else(|| sc.err(format!("unknown kind \"{label}\"")))?;
                    kind.replace(parsed).is_some()
                }
                "path" => path.replace(sc.parse_string()?).is_some(),
                "wall_us" => wall_us.replace(sc.parse_u64()?).is_some(),
                "attrs" => {
                    let mut map = Vec::new();
                    sc.expect(b'{')?;
                    sc.skip_ws();
                    if sc.peek() != Some(b'}') {
                        loop {
                            let k = sc.parse_string()?;
                            sc.expect(b':')?;
                            let v = sc.parse_string()?;
                            if map.iter().any(|(ek, _)| *ek == k) {
                                return Err(sc.err(format!("duplicate attr key \"{k}\"")));
                            }
                            map.push((k, v));
                            sc.skip_ws();
                            if sc.peek() == Some(b',') {
                                sc.pos += 1;
                                sc.skip_ws();
                            } else {
                                break;
                            }
                        }
                    }
                    sc.expect(b'}')?;
                    attrs.replace(map).is_some()
                }
                other => return Err(sc.err(format!("unknown key \"{other}\""))),
            };
            if dup {
                return Err(sc.err(format!("duplicate key \"{key}\"")));
            }
            sc.skip_ws();
            if sc.peek() == Some(b',') {
                sc.pos += 1;
                sc.skip_ws();
            } else {
                break;
            }
        }
    }
    sc.expect(b'}')?;
    if !sc.at_end() {
        return Err(sc.err("trailing bytes after event object"));
    }
    Ok(TraceEvent {
        shard: shard.ok_or_else(|| sc.err("missing key \"shard\""))?,
        seq: seq.ok_or_else(|| sc.err("missing key \"seq\""))?,
        kind: kind.ok_or_else(|| sc.err("missing key \"kind\""))?,
        path: path.ok_or_else(|| sc.err("missing key \"path\""))?,
        wall_us: wall_us.ok_or_else(|| sc.err("missing key \"wall_us\""))?,
        attrs: attrs.ok_or_else(|| sc.err("missing key \"attrs\""))?,
    })
}

/// Parses a whole JSONL document, validating every non-empty line.
///
/// # Errors
///
/// The first [`ParseError`], stamped with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line).map_err(|e| ParseError { line: i + 1, ..e })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            shard: 3,
            seq: 17,
            kind: EventKind::SpanEnter,
            path: "cell/boot".into(),
            wall_us: 0,
            attrs: vec![
                ("use_case".into(), "XSA-212-crash".into()),
                ("detail".into(), "quote \" slash \\ newline \n done".into()),
            ],
        }
    }

    #[test]
    fn encode_is_canonical_and_stable() {
        let e = TraceEvent {
            shard: 0,
            seq: 1,
            kind: EventKind::Point,
            path: "audit/hypercall".into(),
            wall_us: 42,
            attrs: vec![("dom".into(), "dom3".into())],
        };
        assert_eq!(
            encode_event(&e),
            "{\"shard\":0,\"seq\":1,\"kind\":\"point\",\"path\":\"audit/hypercall\",\"wall_us\":42,\"attrs\":{\"dom\":\"dom3\"}}"
        );
    }

    #[test]
    fn round_trip_with_escapes() {
        let e = sample();
        let back = parse_line(&encode_event(&e)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn jsonl_round_trip_and_normalization() {
        let mut e1 = sample();
        e1.wall_us = 999;
        let e2 = TraceEvent { seq: 18, kind: EventKind::SpanExit, ..sample() };
        let doc = to_jsonl(&[e1.clone(), e2.clone()]);
        assert_eq!(doc.lines().count(), 2);
        let back = parse_jsonl(&doc).unwrap();
        assert_eq!(back, vec![e1.clone(), e2.clone()]);
        let norm = normalized_jsonl(&[e1, e2.clone()]);
        assert!(norm.contains("\"wall_us\":0"));
        assert!(!norm.contains("\"wall_us\":999"));
    }

    #[test]
    fn rejects_unknown_missing_duplicate_keys() {
        let unknown = "{\"shard\":0,\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{},\"extra\":1}";
        assert!(parse_line(unknown).unwrap_err().message.contains("unknown key"));
        let missing = "{\"shard\":0,\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"attrs\":{}}";
        assert!(parse_line(missing).unwrap_err().message.contains("missing key \"wall_us\""));
        let dup = "{\"shard\":0,\"shard\":1,\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{}}";
        assert!(parse_line(dup).unwrap_err().message.contains("duplicate key"));
    }

    #[test]
    fn rejects_bad_kinds_and_types() {
        let bad_kind = "{\"shard\":0,\"seq\":0,\"kind\":\"other\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{}}";
        assert!(parse_line(bad_kind).unwrap_err().message.contains("unknown kind"));
        let bad_type = "{\"shard\":\"x\",\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{}}";
        assert!(parse_line(bad_type).is_err());
        assert!(parse_line("not json").is_err());
        let trailing = "{\"shard\":0,\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{}} tail";
        assert!(parse_line(trailing).unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn parse_jsonl_stamps_line_numbers() {
        let doc = "{\"shard\":0,\"seq\":0,\"kind\":\"point\",\"path\":\"p\",\"wall_us\":0,\"attrs\":{}}\nbroken\n";
        let err = parse_jsonl(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"));
    }

    #[test]
    fn accepts_whitespace_and_any_key_order() {
        let line = "{ \"attrs\": {}, \"wall_us\": 5, \"path\": \"p\", \"kind\": \"span_exit\", \"seq\": 2, \"shard\": 1 }";
        let e = parse_line(line).unwrap();
        assert_eq!((e.shard, e.seq, e.wall_us), (1, 2, 5));
        assert_eq!(e.kind, EventKind::SpanExit);
    }
}
