//! **hvsim-obs** — deterministic structured tracing and metrics for the
//! intrusion-injection pipeline.
//!
//! The assessment campaign deliberately runs the same workload at any
//! `--jobs` count and demands byte-identical reports, so this crate
//! splits every record into:
//!
//! * a **logical part** — span paths, per-context sequence numbers,
//!   attributes, counter values, histogram *counts* — identical for a
//!   fixed workload regardless of scheduling, and
//! * a **wall-clock part** — span durations, histogram quantiles —
//!   carried in dedicated fields that `normalized()` zeroes before any
//!   determinism comparison.
//!
//! The pieces:
//!
//! * [`Tracer`] / [`TraceCtx`] / [`Span`] — a sharded, lock-poisoning-
//!   safe trace sink with RAII span guards ([`trace`]),
//! * [`MetricsRegistry`] — named counters and fixed-bucket latency
//!   histograms snapshotted into reports ([`metrics`]),
//! * [`jsonl`] — the stable-field-order JSONL wire format plus the
//!   strict line validator behind `trace validate`,
//! * [`TraceSummary`] — flamegraph-style self-time aggregation and the
//!   top-N slowest-cells table behind `trace summary` ([`summary`]),
//! * [`FlightHandle`] / [`FlightRecorder`] — a per-worker fixed-capacity
//!   overwrite-oldest event ring whose slot tail becomes the forensic
//!   dump attached to degraded cells ([`flight`]),
//! * [`MetricsTimeline`] — wall-clock time series of live pipeline
//!   state, sampled every `--metrics-interval-ms` ([`metrics`]).
//!
//! A disabled [`Tracer`] is a true no-op: one branch per call site, no
//! allocation, attribute closures never run.
//!
//! # Example
//!
//! ```
//! use hvsim_obs::{jsonl, Tracer, TraceSummary};
//!
//! let tracer = Tracer::enabled();
//! let ctx = tracer.ctx(1);
//! {
//!     let _cell = ctx.span_with("cell", || vec![("use_case".into(), "demo".into())]);
//!     let _boot = ctx.span("cell/boot");
//! }
//! let events = tracer.drain();
//! let text = jsonl::to_jsonl(&events);
//! let back = jsonl::parse_jsonl(&text).unwrap();
//! let profile = TraceSummary::compute(&back);
//! assert_eq!(profile.slowest_cells.len(), 1);
//! ```

// Observability must never take the harness down: library paths return
// errors or recover poisoned locks instead of panicking. Tests keep
// their unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod flight;
pub mod jsonl;
pub mod metrics;
pub mod summary;
pub mod trace;

pub use flight::{FlightEvent, FlightHandle, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use jsonl::{encode_event, normalized_jsonl, parse_jsonl, parse_line, to_jsonl, ParseError};
pub use metrics::{
    CounterSnapshot, Histogram, HistogramSnapshot, HistogramSummary, MetricsRegistry,
    MetricsSnapshot, MetricsTimeline, TimelineSample,
};
pub use summary::{CellTiming, SummaryRow, TraceSummary};
pub use trace::{EventKind, Span, TraceCtx, TraceEvent, Tracer};
