//! Trace profiling: flamegraph-style aggregation by span path plus a
//! top-N slowest-cells table — what `trace summary` renders.
//!
//! Self-time is computed per span instance as its wall-clock duration
//! minus the durations of its *direct* child spans, then aggregated by
//! path. Point events contribute their own `wall_us` (bridged external
//! durations) without being subtracted from any parent.

use crate::trace::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated timing for one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SummaryRow {
    /// Span or point path (e.g. `"cell/inject"`).
    pub path: String,
    /// Number of span instances (or point occurrences).
    pub count: u64,
    /// Total wall-clock microseconds across instances.
    pub total_us: u64,
    /// Total minus time attributed to direct children.
    pub self_us: u64,
}

/// Wall-clock duration of one root `cell` span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellTiming {
    /// The cell's logical shard id.
    pub shard: u64,
    /// Human-readable label built from the span's attributes.
    pub label: String,
    /// The cell span's wall-clock duration.
    pub wall_us: u64,
}

/// The computed profile of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events consumed.
    pub events: usize,
    /// Distinct logical shards seen.
    pub shards: usize,
    /// Per-path aggregation, sorted by self-time (descending).
    pub rows: Vec<SummaryRow>,
    /// All root `cell` spans, slowest first.
    pub slowest_cells: Vec<CellTiming>,
}

struct OpenSpan {
    path: String,
    child_us: u64,
    depth_zero: bool,
    cell_attrs: Option<Vec<(String, String)>>,
}

fn cell_label(attrs: &[(String, String)]) -> String {
    let get = |key: &str| {
        attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    match (get("use_case"), get("version"), get("mode")) {
        (Some(uc), Some(ver), Some(mode)) => format!("{uc} / Xen {ver} / {mode}"),
        _ if !attrs.is_empty() => attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" "),
        _ => "cell".to_owned(),
    }
}

impl TraceSummary {
    /// Aggregates a trace. Events may arrive in any order; they are
    /// grouped by shard and replayed in logical-clock order. Unclosed
    /// spans (a trace cut off mid-run) are counted with zero duration.
    pub fn compute(events: &[TraceEvent]) -> Self {
        let mut by_shard: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        for event in events {
            by_shard.entry(event.shard).or_default().push(event);
        }
        fn row<'a>(rows: &'a mut BTreeMap<String, SummaryRow>, path: &str) -> &'a mut SummaryRow {
            rows.entry(path.to_owned()).or_insert_with(|| SummaryRow {
                path: path.to_owned(),
                ..SummaryRow::default()
            })
        }
        let mut rows: BTreeMap<String, SummaryRow> = BTreeMap::new();
        let mut cells: Vec<CellTiming> = Vec::new();
        for (&shard, shard_events) in &mut by_shard {
            shard_events.sort_by_key(|e| e.seq);
            let mut stack: Vec<OpenSpan> = Vec::new();
            for event in shard_events.iter() {
                match event.kind {
                    EventKind::SpanEnter => stack.push(OpenSpan {
                        path: event.path.clone(),
                        child_us: 0,
                        depth_zero: stack.is_empty(),
                        cell_attrs: (event.path == "cell").then(|| event.attrs.clone()),
                    }),
                    EventKind::SpanExit => {
                        let Some(open) = stack.pop() else { continue };
                        let duration = event.wall_us;
                        let entry = row(&mut rows, &open.path);
                        entry.count += 1;
                        entry.total_us += duration;
                        entry.self_us += duration.saturating_sub(open.child_us);
                        if let Some(parent) = stack.last_mut() {
                            parent.child_us += duration;
                        }
                        if open.depth_zero {
                            if let Some(attrs) = &open.cell_attrs {
                                cells.push(CellTiming {
                                    shard,
                                    label: cell_label(attrs),
                                    wall_us: duration,
                                });
                            }
                        }
                    }
                    EventKind::Point => {
                        let entry = row(&mut rows, &event.path);
                        entry.count += 1;
                        entry.total_us += event.wall_us;
                        entry.self_us += event.wall_us;
                    }
                }
            }
            // Spans left open (trace truncated): count the instance so
            // the profile does not silently lose it.
            for open in stack {
                row(&mut rows, &open.path).count += 1;
            }
        }
        let shards = by_shard.len();
        let mut rows: Vec<SummaryRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.path.cmp(&b.path)));
        cells.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then_with(|| a.shard.cmp(&b.shard)));
        Self { events: events.len(), shards, rows, slowest_cells: cells }
    }

    /// Renders the profile as fixed-width text, listing at most `top_n`
    /// slowest cells.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace summary: {} events across {} shards", self.events, self.shards);
        let _ = writeln!(out);
        let _ = writeln!(out, "per-path self-time profile");
        let width = self
            .rows
            .iter()
            .map(|r| r.path.chars().count())
            .chain(std::iter::once("path".len()))
            .max()
            .unwrap_or(4)
            .min(60);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>7}  {:>12}  {:>12}",
            "path", "count", "total_us", "self_us",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>7}  {:>12}  {:>12}",
                r.path, r.count, r.total_us, r.self_us,
            );
        }
        let _ = writeln!(out);
        let shown = self.slowest_cells.len().min(top_n);
        let _ = writeln!(out, "top {shown} slowest cells (of {})", self.slowest_cells.len());
        if shown == 0 {
            let _ = writeln!(out, "  (no cell spans in trace)");
        }
        for cell in self.slowest_cells.iter().take(top_n) {
            let _ = writeln!(out, "  {:>12} us  {}  [shard {}]", cell.wall_us, cell.label, cell.shard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(shard: u64, seq: u64, kind: EventKind, path: &str, wall_us: u64) -> TraceEvent {
        TraceEvent { shard, seq, kind, path: path.into(), wall_us, attrs: Vec::new() }
    }

    fn cell_enter(shard: u64, seq: u64, uc: &str, ver: &str, mode: &str) -> TraceEvent {
        TraceEvent {
            shard,
            seq,
            kind: EventKind::SpanEnter,
            path: "cell".into(),
            wall_us: 0,
            attrs: vec![
                ("use_case".into(), uc.into()),
                ("version".into(), ver.into()),
                ("mode".into(), mode.into()),
            ],
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let events = vec![
            cell_enter(1, 0, "UC", "4.6", "exploit"),
            ev(1, 1, EventKind::SpanEnter, "cell/boot", 0),
            ev(1, 2, EventKind::SpanExit, "cell/boot", 30),
            ev(1, 3, EventKind::SpanEnter, "cell/inject", 0),
            ev(1, 4, EventKind::SpanExit, "cell/inject", 50),
            ev(1, 5, EventKind::SpanExit, "cell", 100),
        ];
        let s = TraceSummary::compute(&events);
        let cell = s.rows.iter().find(|r| r.path == "cell").unwrap();
        assert_eq!((cell.count, cell.total_us, cell.self_us), (1, 100, 20));
        let boot = s.rows.iter().find(|r| r.path == "cell/boot").unwrap();
        assert_eq!((boot.total_us, boot.self_us), (30, 30));
        assert_eq!(s.slowest_cells.len(), 1);
        assert_eq!(s.slowest_cells[0].label, "UC / Xen 4.6 / exploit");
        assert_eq!(s.slowest_cells[0].wall_us, 100);
    }

    #[test]
    fn slowest_cells_sorted_with_shard_tiebreak() {
        let mut events = Vec::new();
        for (shard, wall) in [(1, 50), (2, 90), (3, 50)] {
            events.push(cell_enter(shard, 0, "UC", "4.8", "injection"));
            events.push(ev(shard, 1, EventKind::SpanExit, "cell", wall));
        }
        let s = TraceSummary::compute(&events);
        let order: Vec<(u64, u64)> = s.slowest_cells.iter().map(|c| (c.shard, c.wall_us)).collect();
        assert_eq!(order, vec![(2, 90), (1, 50), (3, 50)]);
        let rendered = s.render(2);
        assert!(rendered.contains("top 2 slowest cells (of 3)"));
        assert!(rendered.contains("UC / Xen 4.8 / injection"));
    }

    #[test]
    fn points_count_without_parent_subtraction() {
        let events = vec![
            ev(0, 0, EventKind::SpanEnter, "campaign", 0),
            ev(0, 1, EventKind::Point, "audit/hypercall", 0),
            ev(0, 2, EventKind::Point, "audit/hypercall", 0),
            ev(0, 3, EventKind::SpanExit, "campaign", 40),
        ];
        let s = TraceSummary::compute(&events);
        let audit = s.rows.iter().find(|r| r.path == "audit/hypercall").unwrap();
        assert_eq!(audit.count, 2);
        let campaign = s.rows.iter().find(|r| r.path == "campaign").unwrap();
        assert_eq!(campaign.self_us, 40, "points do not steal parent self-time");
    }

    #[test]
    fn truncated_trace_counts_open_spans() {
        let events = vec![ev(5, 0, EventKind::SpanEnter, "cell", 0)];
        let s = TraceSummary::compute(&events);
        let cell = s.rows.iter().find(|r| r.path == "cell").unwrap();
        assert_eq!((cell.count, cell.total_us), (1, 0));
        assert!(s.slowest_cells.is_empty());
        assert!(s.render(5).contains("no cell spans"));
    }
}
