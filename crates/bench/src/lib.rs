//! Shared helpers for the benchmark harness and the table/figure
//! regenerators.
//!
//! Every table and figure of the paper has a binary that regenerates it:
//!
//! | artefact | binary |
//! |---|---|
//! | Fig. 1 (threat chain / extended AVI) | `fig1_avi_chain` |
//! | Fig. 2 (methodology overview) | `fig2_methodology` |
//! | Fig. 3 (intrusion model abstraction) | `fig3_intrusion_model` |
//! | Table I (abusive functionalities) | `table1_abusive_functionalities` |
//! | Table II (use cases) | `table2_use_cases` |
//! | Fig. 4 (validation on Xen 4.6) | `fig4_validation` |
//! | Table III (non-vulnerable versions) | `table3_campaign` |
//!
//! Run one with `cargo run -p bench --bin <name>`; Criterion benches live
//! under `benches/` (`cargo bench -p bench`).

use guestos::World;
use hvsim::XenVersion;
use hvsim_mem::DomainId;
use intrusion_core::campaign::standard_world;
use intrusion_core::{
    AbusiveFunctionality, Campaign, CampaignReport, ErroneousStateSpec, Injector, IntrusionModel,
    Mode, Monitor, ScenarioOutcome, UseCase,
};
use xsa_exploits::paper_use_cases;

/// Builds the standard world plus the attacker handle used everywhere.
///
/// The regenerators are batch tools, not the fail-soft campaign engine:
/// a boot failure here is unrecoverable, so this panics instead of
/// threading `BootError` through every binary.
pub fn attack_world(version: XenVersion, injector: bool) -> (World, DomainId) {
    let world = standard_world(version, injector).expect("standard world boots");
    let attacker = world.domain_by_name("guest03").expect("standard world has guest03");
    (world, attacker)
}

/// The full paper campaign (4 use cases × 3 versions × 2 modes), ready
/// to configure (worker count, snapshot reuse) and run.
pub fn paper_campaign() -> Campaign {
    let mut campaign = Campaign::new();
    for uc in paper_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    campaign
}

/// Runs the full paper campaign with the default configuration.
pub fn run_paper_campaign() -> CampaignReport {
    paper_campaign().run()
}

/// SplitMix64 — the deterministic per-trial mixer behind
/// [`SyntheticCase`]. Good enough dispersion for synthetic outcome
/// classification; not a CSPRNG and not meant to be.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cheap, fully deterministic grid use case for exercising the
/// streaming pipeline at ≥100k-cell scale.
///
/// Each trial classifies itself from a SplitMix64 hash of `seed ^
/// trial`: 1 in 16 trials performs a *real* IDT-gate injection through
/// the injector hypercall (so the hot path still exercises world
/// clones, hypercalls, and audits), the rest synthesize their outcome
/// directly; some report an injection error (assessment data, not
/// degradation). The monitor is empty, so per-cell cost stays near the
/// world-clone floor and throughput numbers measure the pipeline, not
/// the detectors.
pub struct SyntheticCase {
    seed: u64,
}

impl SyntheticCase {
    /// A synthetic case whose trial stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl UseCase for SyntheticCase {
    fn name(&self) -> &'static str {
        "synthetic-grid"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        IntrusionModel::guest_hypercall_memory(
            "IM-synthetic-grid",
            AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
            &[],
        )
    }

    fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        ScenarioOutcome::failed("-ENOSYS (synthetic grid has no exploit path)")
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        self.run_injection_trial(world, attacker, injector, 0)
    }

    fn run_injection_trial(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
        trial: u64,
    ) -> ScenarioOutcome {
        let x = splitmix64(self.seed ^ trial);
        if x.is_multiple_of(16) {
            // A real injection so the grid still exercises the
            // hypercall/audit path end to end.
            let spec = ErroneousStateSpec::OverwriteIdtGate {
                cpu: 0,
                vector: (x >> 8) as u8,
                value: x | 1,
            };
            return match injector.inject(world, attacker, &spec) {
                Ok(evidence) => ScenarioOutcome {
                    erroneous_state: evidence.audit.present,
                    state_audit: Some(evidence.audit),
                    notes: Vec::new(),
                    error: None,
                },
                Err(e) => ScenarioOutcome::failed(e.to_string()),
            };
        }
        ScenarioOutcome {
            erroneous_state: !x.is_multiple_of(3),
            state_audit: None,
            notes: Vec::new(),
            error: x.is_multiple_of(5).then(|| format!("-EAGAIN (synthetic trial {trial})")),
        }
    }

    fn monitor(&self, _world: &World, _attacker: DomainId) -> Monitor {
        Monitor::new()
    }
}

/// A synthetic streaming campaign: one [`SyntheticCase`] × all three
/// versions × injection mode × `trials` — `3 × trials` cells total.
pub fn synthetic_campaign(seed: u64, trials: u64) -> Campaign {
    Campaign::new()
        .with_use_case(Box::new(SyntheticCase::new(seed)))
        .modes(&[Mode::Injection])
        .trials(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_world_boots() {
        let (world, attacker) = attack_world(XenVersion::V4_6, true);
        assert!(world.hv().injector_enabled());
        assert_eq!(world.kernel(attacker).unwrap().hostname(), "guest03");
    }
}
