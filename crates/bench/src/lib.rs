//! Shared helpers for the benchmark harness and the table/figure
//! regenerators.
//!
//! Every table and figure of the paper has a binary that regenerates it:
//!
//! | artefact | binary |
//! |---|---|
//! | Fig. 1 (threat chain / extended AVI) | `fig1_avi_chain` |
//! | Fig. 2 (methodology overview) | `fig2_methodology` |
//! | Fig. 3 (intrusion model abstraction) | `fig3_intrusion_model` |
//! | Table I (abusive functionalities) | `table1_abusive_functionalities` |
//! | Table II (use cases) | `table2_use_cases` |
//! | Fig. 4 (validation on Xen 4.6) | `fig4_validation` |
//! | Table III (non-vulnerable versions) | `table3_campaign` |
//!
//! Run one with `cargo run -p bench --bin <name>`; Criterion benches live
//! under `benches/` (`cargo bench -p bench`).

use guestos::World;
use hvsim::XenVersion;
use hvsim_mem::DomainId;
use intrusion_core::campaign::standard_world;
use intrusion_core::{Campaign, CampaignReport};
use xsa_exploits::paper_use_cases;

/// Builds the standard world plus the attacker handle used everywhere.
///
/// The regenerators are batch tools, not the fail-soft campaign engine:
/// a boot failure here is unrecoverable, so this panics instead of
/// threading `BootError` through every binary.
pub fn attack_world(version: XenVersion, injector: bool) -> (World, DomainId) {
    let world = standard_world(version, injector).expect("standard world boots");
    let attacker = world.domain_by_name("guest03").expect("standard world has guest03");
    (world, attacker)
}

/// The full paper campaign (4 use cases × 3 versions × 2 modes), ready
/// to configure (worker count, snapshot reuse) and run.
pub fn paper_campaign() -> Campaign {
    let mut campaign = Campaign::new();
    for uc in paper_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    campaign
}

/// Runs the full paper campaign with the default configuration.
pub fn run_paper_campaign() -> CampaignReport {
    paper_campaign().run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_world_boots() {
        let (world, attacker) = attack_world(XenVersion::V4_6, true);
        assert!(world.hv().injector_enabled());
        assert_eq!(world.kernel(attacker).unwrap().hostname(), "guest03");
    }
}
