//! Regenerates **Fig. 3**: the internal state transitions of an
//! intrusion (left) and their abstraction into a single abusive
//! functionality (right), built from the XSA-182 strategy.

use intrusion_core::{AbusiveFunctionality, StateTrace, UseCase};
use xsa_exploits::Xsa182Test;

fn main() {
    println!("FIG. 3: intrusion internal impact (left) vs intrusion-model abstraction (right)\n");

    // Left: the internal view — every state the system passes through
    // while the XSA-182 exploit runs.
    let mut internal = StateTrace::new();
    let s1 = internal.state("state 1 (initial: PV guest running)");
    let s2 = internal.state("state 2 (read-only L4 self-map installed)");
    let s3 = internal.state("state 3 (fast-path mmu_update queued)");
    let s4 = internal.state("erroneous state (writable self-referencing L4 entry)");
    internal.transition(s1, "instruction set a: mmu_update(L4[42] := self, RO)", s2);
    internal.transition(s2, "instruction set b: mmu_update(L4[42] += RW)", s3);
    internal.transition(s3, "vulnerability activation: XSA-182 fast path skips revalidation", s4);
    println!("internal view:");
    println!("{}", internal.render());

    // Right: the abstracted (attacker's) view.
    let abstracted = internal.abstracted(AbusiveFunctionality::GuestWritablePageTableEntry);
    println!("abstracted view (what the intrusion model captures):");
    println!("{}", abstracted.render());

    let im = Xsa182Test.intrusion_model();
    println!("the intrusion model that abstraction instantiates:");
    println!("  {im}");
    println!("  generalizes: {:?}", im.related_advisories);
    println!(
        "\nboth views are equivalent in functionality: a given input places the\n\
         system directly into the erroneous state (paper §IV-B)."
    );
}
