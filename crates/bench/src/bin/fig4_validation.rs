//! Regenerates **Fig. 4**: the experimental validation strategy —
//! compare the security violation of the original PoC against the
//! violation after injecting the equivalent erroneous state, on the same
//! (vulnerable) Xen version.

use bench::run_paper_campaign;

fn main() {
    eprintln!("running the full campaign ...");
    let report = run_paper_campaign();
    println!("{}", report.render_fig4());
    println!(
        "equivalent = the injection induced the same erroneous state and the\n\
         same security violation as the original exploit (RQ1, §VI-C)."
    );
}
