//! The security benchmark the paper's conclusion targets: score every
//! version by how it handles the full injected erroneous-state corpus
//! (the paper's four use cases plus the extension IMs), then rank.

use intrusion_core::{Campaign, SecurityBenchmark};
use xsa_exploits::{extension_use_cases, paper_use_cases};

fn main() {
    eprintln!("running the extended campaign (paper + extension use cases) ...");
    let mut campaign = Campaign::new();
    for uc in paper_use_cases().into_iter().chain(extension_use_cases()) {
        campaign = campaign.with_use_case(uc);
    }
    let report = campaign.run();
    let benchmark = SecurityBenchmark::from_report(&report);
    println!("{}", benchmark.render());

    println!("ranking (higher = handles more injected erroneous states):");
    for (i, (version, score)) in benchmark.ranking().iter().enumerate() {
        println!("  {}. Xen {version}  score {score:.2}", i + 1);
    }
    println!(
        "\nnote: the keep-page-reference and interrupt IMs are not shielded by\n\
         the 4.13 hardening, which is why even the best-ranked version does\n\
         not reach 1.00 — the assessment signal a hardening roadmap needs."
    );
}
