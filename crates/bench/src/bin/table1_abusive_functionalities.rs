//! Regenerates **Table I**: the abusive functionalities classified from
//! the 100-advisory study dataset.

use xsa_exploits::advisories;

fn main() {
    println!("{}", advisories::render_table1());
    let total_tags: usize = advisories::ADVISORIES
        .iter()
        .map(|a| a.functionalities.len())
        .sum();
    println!(
        "{} advisories studied, {} functionality tags ({} advisories carry two).",
        advisories::ADVISORIES.len(),
        total_tags,
        advisories::ADVISORIES
            .iter()
            .filter(|a| a.functionalities.len() == 2)
            .count()
    );
    println!("\npaper-vs-dataset check:");
    let mut ok = true;
    for (f, n) in advisories::counts() {
        let paper = f.paper_count();
        if n != paper {
            ok = false;
            println!("  MISMATCH {f}: dataset {n}, paper {paper}");
        }
    }
    if ok {
        println!("  every functionality count matches the paper exactly.");
    }
}
