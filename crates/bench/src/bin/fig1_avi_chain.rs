//! Regenerates **Fig. 1**: the chain of dependability threats with the
//! extended-AVI model — as the paper's static diagram, then instantiated
//! live from a real exploit run and a real injection run.

use bench::attack_world;
use intrusion_core::{ThreatChain, ThreatStage, UseCase};
use hvsim::XenVersion;
use xsa_exploits::Xsa212Crash;

fn main() {
    println!("FIG. 1: chain of dependability threats with the extended-AVI model\n");
    println!("generic chain (the paper's VENOM/XSA-133 running example):");
    println!("  {}\n", ThreatChain::fig1_example());

    // Instantiated from a live exploit run.
    let (mut world, attacker) = attack_world(XenVersion::V4_6, false);
    let outcome = Xsa212Crash.run_exploit(&mut world, attacker);
    let mut chain = ThreatChain::new();
    chain
        .push(ThreatStage::Attack, "guest issues memory_exchange with crafted out handle")
        .push(ThreatStage::Vulnerability, "XSA-212: insufficient check on the handle")
        .push(ThreatStage::Intrusion, "error write-back runs with hypervisor privileges");
    if outcome.erroneous_state {
        chain.push(ThreatStage::ErroneousState, "IDT #PF gate corrupted");
    }
    if world.hv().is_crashed() {
        chain.push(ThreatStage::SecurityViolation, "double fault -> hypervisor panic");
    }
    println!("instantiated from a live XSA-212-crash exploit run (Xen 4.6):");
    println!("  {chain}\n");

    // The injection path enters the chain at the erroneous state.
    let (mut world, attacker) = attack_world(XenVersion::V4_13, true);
    let outcome = intrusion_core::UseCase::run_injection(
        &Xsa212Crash,
        &mut world,
        attacker,
        &intrusion_core::ArbitraryAccessInjector,
    );
    let mut chain = ThreatChain::new();
    if outcome.erroneous_state {
        chain.push(
            ThreatStage::INJECTION_ENTRY,
            "intrusion injector corrupts the #PF gate directly",
        );
    }
    if world.hv().is_crashed() {
        chain.push(ThreatStage::SecurityViolation, "double fault -> hypervisor panic");
    } else {
        chain.push(ThreatStage::Handled, "fault delivered normally");
    }
    println!("instantiated from a live injection run (Xen 4.13):");
    println!("  {chain}");
    println!(
        "\nthe injection chain enters at '{}' — skipping attack, vulnerability\nand intrusion (the red dotted arrow of Fig. 2).",
        ThreatStage::INJECTION_ENTRY
    );
}
