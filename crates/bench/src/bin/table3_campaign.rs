//! Regenerates **Table III**: the injection campaign across all
//! versions, plus the RQ1/RQ2/RQ3 summaries of §VI–§VIII, and records
//! campaign throughput in `BENCH_campaign.json`.
//!
//! By default the campaign runs once per jobs level (1, 4, 8) and
//! `BENCH_campaign.json` holds the throughput entries under `table3`
//! (one per level, with COW snapshot stats and software-TLB counters)
//! plus a `stream` array: the streamed engine on the same grid per
//! level and — for the default sweep — a synthetic ~100k-cell grid
//! entry proving bounded-memory throughput at scale. `--jobs N`
//! restricts the sweep to one level (and skips the synthetic entry
//! unless `--synthetic-cells` asks for it).
//!
//! Flags:
//!
//! * `--jobs N` — run a single worker count instead of the 1/4/8 sweep
//! * `--stream` — run the campaign through the streaming engine instead
//!   of the collect-everything engine; prints the per-key summary and
//!   pipeline stats, and `--report-out` writes the normalized
//!   `StreamReport` (mergeable across shards)
//! * `--queue-depth N` — bounded work-queue capacity (streaming)
//! * `--shard i/n` — run only slots `i, i+n, i+2n, …` of the grid;
//!   shard reports merge back to the unsharded report byte-for-byte
//! * `--synthetic-cells N` — size of the synthetic streamed grid entry
//!   in `BENCH_campaign.json` (rounded up to a multiple of 3; 0
//!   disables; default ~100k for the full sweep, 0 with `--jobs`)
//! * `--no-tlb` — disable the software TLB (the report must not change)
//! * `--chunk-frames N` — COW chunk-directory granularity in frames
//!   (the report must not change; rounded up to a power of two)
//! * `--report-out FILE` — write the *normalized* report as JSON
//!   (what CI diffs across jobs levels, TLB settings, and shardings)
//! * `--trace-out FILE` — write the campaign's structured trace as JSONL
//! * `--metrics-out FILE` — write the metrics-registry snapshot as JSON
//! * `--json` — also print the full report as JSON

use bench::{attack_world, paper_campaign, synthetic_campaign};
use hvsim::{MmuUpdate, PteFlags, XenVersion};
use hvsim_mem::{MachineMemory, Mfn, DEFAULT_CHUNK_FRAMES};
use hvsim_paging::PageTableEntry;
use hvsim_obs::{to_jsonl, MetricsRegistry, Tracer, DEFAULT_FLIGHT_CAPACITY};
use intrusion_core::{
    standard_world_factory, Campaign, CampaignReport, CampaignThroughput, Mode, PhaseLatency,
    Shard, StreamBench, StreamOutcome,
};
use std::process::exit;
use std::time::Instant;

/// Deterministic seed for the synthetic streamed grid entry.
const SYNTHETIC_SEED: u64 = 0xD5_2023;

struct Options {
    /// `None` runs the default 1/4/8 sweep.
    jobs: Option<usize>,
    stream: bool,
    queue_depth: Option<usize>,
    shard: Option<Shard>,
    /// `None` = default policy (~100k for the full sweep, 0 otherwise).
    synthetic_cells: Option<u64>,
    no_tlb: bool,
    /// COW chunk-directory granularity override (`None` = default).
    chunk_frames: Option<usize>,
    report_out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    json: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        jobs: None,
        stream: false,
        queue_depth: None,
        shard: None,
        synthetic_cells: None,
        no_tlb: false,
        chunk_frames: None,
        report_out: None,
        trace_out: None,
        metrics_out: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => {
                let raw = value("--jobs");
                opts.jobs = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got '{raw}'");
                    exit(2);
                }));
            }
            "--stream" => opts.stream = true,
            "--queue-depth" => {
                let raw = value("--queue-depth");
                opts.queue_depth = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--queue-depth needs a positive integer, got '{raw}'");
                    exit(2);
                }));
            }
            "--shard" => {
                let raw = value("--shard");
                opts.shard = Some(Shard::parse(&raw).unwrap_or_else(|e| {
                    eprintln!("--shard: {e}");
                    exit(2);
                }));
            }
            "--synthetic-cells" => {
                let raw = value("--synthetic-cells");
                opts.synthetic_cells = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--synthetic-cells needs an integer, got '{raw}'");
                    exit(2);
                }));
            }
            "--no-tlb" => opts.no_tlb = true,
            "--chunk-frames" => {
                let raw = value("--chunk-frames");
                opts.chunk_frames = Some(raw.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                    eprintln!("--chunk-frames needs a positive integer, got '{raw}'");
                    exit(2);
                }));
            }
            "--report-out" => opts.report_out = Some(value("--report-out")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--json" => opts.json = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: table3_campaign [--jobs N] [--stream] [--queue-depth N] \
                     [--shard i/n] [--synthetic-cells N] [--no-tlb] [--chunk-frames N] \
                     [--report-out FILE] [--trace-out FILE] [--metrics-out FILE] [--json]"
                );
                exit(2);
            }
        }
    }
    opts
}

fn print_phase(name: &str, phase: &PhaseLatency) {
    println!(
        "  {name:<8} completed n={:<3} p50={:<8} p95={:<8} max={:<8} us   \
         degraded n={:<3} p50={:<8} p95={:<8} max={} us",
        phase.completed.count,
        phase.completed.p50_us,
        phase.completed.p95_us,
        phase.completed.max_us,
        phase.degraded.count,
        phase.degraded.p50_us,
        phase.degraded.p95_us,
        phase.degraded.max_us,
    );
}

fn print_throughput(t: &CampaignThroughput) {
    println!(
        "throughput: {} completed + {} degraded of {} cells in {:.1} ms on {} workers \
         ({:.0} cells/sec, {} us cell time, {} hypercalls)",
        t.completed_cells,
        t.degraded_cells,
        t.cells,
        t.elapsed_us as f64 / 1000.0,
        t.workers,
        t.cells_per_sec,
        t.total_cell_wall_time_us,
        t.total_hypercalls,
    );
    println!(
        "  snapshot: {} frames, {} shared at peak, {} COW-copied, {} chunks privatized   \
         tlb: {} hits, {} misses, {} fill conflicts",
        t.snapshot.frames_total,
        t.snapshot.frames_shared,
        t.snapshot.frames_copied,
        t.snapshot.chunks_privatized,
        t.tlb.hits,
        t.tlb.misses,
        t.tlb.fill_conflicts,
    );
}

fn print_report(report: &CampaignReport) {
    println!("{}", report.render_table3());

    println!("RQ1 (reproduce exploit effects on the vulnerable version):");
    for cell in report.cells().iter().filter(|c| c.version == XenVersion::V4_6) {
        println!(
            "  {:<13} {:<9} -> state {} violation {}",
            cell.use_case,
            cell.mode.to_string(),
            cell.erroneous_state,
            cell.violated()
        );
    }

    println!("\nRQ2 (inject states on non-vulnerable versions): all Err. State cells above");
    println!("RQ3 (assessment): Xen 4.13 handles XSA-212-priv and XSA-182-test — the");
    println!("post-XSA-213 hardening removed the RWX linear-pagetable mapping and");
    println!("rejects writable self-maps during walks.\n");

    // Exploit failure signatures on fixed versions (§VII).
    println!("exploit attempts on fixed versions:");
    for cell in report
        .cells()
        .iter()
        .filter(|c| c.mode == Mode::Exploit && c.version != XenVersion::V4_6)
    {
        println!(
            "  {:<13} on {:<4} -> {}",
            cell.use_case,
            cell.version.to_string(),
            cell.error
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(succeeded?!)".to_owned())
        );
    }

    // Harness degradation is reported separately from assessment data:
    // a crashed or timed-out cell tells us nothing about the version
    // under test, so it must not be silently folded into the tables.
    let degraded: Vec<_> = report.degraded_cells().collect();
    if !degraded.is_empty() {
        println!("\ndegraded cells (harness failures, excluded from assessment):");
        for cell in &degraded {
            println!(
                "  {:<13} on {:<4} {:<9} -> {}",
                cell.use_case,
                cell.version.to_string(),
                cell.mode.to_string(),
                cell.error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| format!("{:?}", cell.outcome))
            );
        }
    }
}

/// The paper campaign with every grid/engine option applied.
fn configured_campaign(opts: &Options, workers: usize) -> Campaign {
    let mut campaign = paper_campaign().jobs(workers);
    if opts.no_tlb {
        campaign = campaign.use_tlb(false);
    }
    if let Some(chunk) = opts.chunk_frames {
        campaign = campaign.world_factory(standard_world_factory(Some(chunk)));
    }
    if let Some(depth) = opts.queue_depth {
        campaign = campaign.queue_depth(depth);
    }
    if let Some(shard) = opts.shard {
        campaign = campaign.shard(shard);
    }
    campaign
}

fn print_stream(outcome: &StreamOutcome) {
    let r = &outcome.report;
    println!("{}", r.render_keys());
    println!(
        "stream totals: {} cells ({} completed, {} degraded), {} erroneous states, \
         {} violated, {} handled, {} hypercalls",
        r.cells, r.completed, r.degraded, r.erroneous_states, r.violated_cells, r.handled,
        r.hypercalls,
    );
    let s = outcome.stats;
    println!(
        "  pipeline: {} workers, queue depth {}, {:.1} ms, {:.0} cells/sec, \
         peak resident {} cells",
        s.workers,
        s.queue_depth,
        s.elapsed_us as f64 / 1000.0,
        s.cells_per_sec,
        s.peak_resident_cells,
    );
    println!(
        "  stalls: generator {} us, workers {} us; merge {} us, base-world wait {} us",
        s.queue_stall_us, s.worker_stall_us, s.merge_us, s.base_world_wait_us,
    );
}

/// `BENCH_campaign.json`: the classic throughput sweep under `table3`,
/// streamed-engine records under `stream`, the checkpoint-journal
/// overhead measurement under `checkpoint`, the always-on
/// flight-recorder overhead measurement under `flight`, and the
/// memory-substrate microbenchmarks (chunked COW privatization and
/// batched `mmu_update`) under `mem`.
#[derive(serde::Serialize)]
struct BenchFile {
    table3: Vec<CampaignThroughput>,
    stream: Vec<StreamBench>,
    checkpoint: Vec<CheckpointBench>,
    flight: Vec<FlightBench>,
    mem: Vec<MemBench>,
}

/// Memory-substrate microbenchmarks, regenerated with the campaign so
/// the committed numbers track the committed code.
///
/// * Privatization: after a COW snapshot of a fully-materialized
///   `frames`-frame memory, the first write must copy one chunk, not
///   the world. `monolithic_privatize_ns` pins the pre-chunking
///   behaviour (one world-sized chunk); the chunked path is gated ≥5×
///   faster.
/// * Batching: one 64-entry `mmu_update` hypercall vs 64 singleton
///   calls doing identical validation work (informational, not gated).
#[derive(serde::Serialize)]
struct MemBench {
    frames: u64,
    chunk_frames: u64,
    /// ns per snapshot-clone + 1-frame write, default chunking.
    chunked_privatize_ns: f64,
    /// ns per snapshot-clone + 1-frame write, one world-sized chunk.
    monolithic_privatize_ns: f64,
    /// `monolithic_privatize_ns / chunked_privatize_ns` (gated ≥ 5).
    privatize_speedup: f64,
    batch_entries: u64,
    /// ns to apply the 64 updates as 64 singleton hypercalls.
    singleton_batch_ns: f64,
    /// ns to apply the same 64 updates as one batched hypercall.
    batched_batch_ns: f64,
    /// `singleton_batch_ns / batched_batch_ns`.
    batch_speedup: f64,
}

/// ns per COW-snapshot + single-frame write at a given chunk size,
/// best-of-`rounds` to shrug off scheduler noise. Every frame of the
/// base memory is materialized first so the privatization pays the
/// real per-frame copy, not the all-zero shortcut.
fn privatize_ns(frames: usize, chunk_frames: usize, iters: u32, rounds: u32) -> f64 {
    let mut base = MachineMemory::with_chunk_frames(frames, chunk_frames);
    for f in 0..frames {
        base.write(Mfn::new(f as u64).base(), &[1u8]).expect("frame in range");
    }
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for i in 0..iters {
            let mut snap = base.clone();
            snap.write_u64(Mfn::new(8).base().offset(8), u64::from(i)).expect("frame in range");
            std::hint::black_box(&snap);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// ns to apply 64 valid L1 `mmu_update`s, either as one batched
/// hypercall or as 64 singletons, best-of-`rounds`.
fn mmu_batch_ns(batch: bool, iters: u32, rounds: u32) -> f64 {
    const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    let (hv, kernel) = world.hv_and_kernel_mut(attacker).expect("attacker has a kernel");
    let (_, data, _) = kernel.alloc_heap_page(hv).expect("heap page allocates");
    let l1 = kernel.tables().l1;
    let updates: Vec<MmuUpdate> = (300..364)
        .map(|i| {
            MmuUpdate::normal(
                l1.base().offset(i * 8).raw(),
                PageTableEntry::new(data, LINK).raw(),
            )
        })
        .collect();
    let hv = world.hv_mut();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            if batch {
                hv.hc_mmu_update(attacker, &updates).expect("batch validates");
            } else {
                for u in &updates {
                    hv.hc_mmu_update(attacker, std::slice::from_ref(u)).expect("update validates");
                }
            }
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// One flight-recorder overhead measurement: the synthetic grid
/// streamed with the recorder at its default capacity vs disabled.
/// The recorder is always-on in production, so its cost is gated
/// < 5% of the recorder-off baseline.
#[derive(serde::Serialize)]
struct FlightBench {
    cells: u64,
    workers: u64,
    /// Per-worker ring capacity of the recorder-on side.
    capacity: u64,
    recorder_off_cells_per_sec: f64,
    recorder_on_cells_per_sec: f64,
    /// Throughput lost to the recorder, percent of the off baseline.
    overhead_pct: f64,
}

/// One checkpoint-overhead measurement: the synthetic grid streamed
/// with and without journaling at the default fold interval. Two
/// entries land in the bench file: the default configuration (gated
/// < 10%) and an informational run with the opt-in `--journal-slots`
/// forensic sidecar.
#[derive(serde::Serialize)]
struct CheckpointBench {
    cells: u64,
    workers: u64,
    interval: u64,
    /// Whether the opt-in per-cell forensic sidecar was enabled.
    journal_slots: bool,
    plain_cells_per_sec: f64,
    checkpointed_cells_per_sec: f64,
    /// Throughput lost to journaling, percent of the plain run.
    overhead_pct: f64,
    journal_bytes: u64,
    /// Bytes in the never-synced `<journal>.slots` forensic sidecar.
    sidecar_bytes: u64,
    fsyncs: u64,
}

fn main() {
    let opts = parse_args();
    let jobs_levels: Vec<usize> = match opts.jobs {
        Some(n) => vec![n],
        None => vec![1, 4, 8],
    };
    let tracer = if opts.trace_out.is_some() { Tracer::enabled() } else { Tracer::disabled() };
    let registry = MetricsRegistry::new();

    let mut entries: Vec<CampaignThroughput> = Vec::new();
    let mut stream_entries: Vec<StreamBench> = Vec::new();
    let mut checkpoint_entries: Vec<CheckpointBench> = Vec::new();
    let mut flight_entries: Vec<FlightBench> = Vec::new();
    let shard_note = opts.shard.map(|s| format!(", shard {s}")).unwrap_or_default();
    let tlb_note = if opts.no_tlb { ", TLB off" } else { "" };

    // The normalized report written by `--report-out`: a classic
    // CampaignReport or a mergeable StreamReport depending on engine.
    let report_json: Option<String>;

    if opts.stream {
        let mut last_outcome: Option<StreamOutcome> = None;
        for (i, &workers) in jobs_levels.iter().enumerate() {
            // The trace and metrics hooks are attached to the last
            // level only, so `--trace-out` / `--metrics-out` describe
            // one run instead of interleaving the whole sweep.
            let last = i == jobs_levels.len() - 1;
            let mut campaign = configured_campaign(&opts, workers);
            if last {
                campaign = campaign.tracer(tracer.clone()).metrics(registry.clone());
            }
            eprintln!(
                "streaming the full campaign ({} cells, {workers} workers{shard_note}{tlb_note}) ...",
                campaign.grid().shard_len(opts.shard),
            );
            let outcome = campaign.run_streaming_with_jobs(workers);
            stream_entries.push(outcome.bench_entry("table3"));
            if last {
                last_outcome = Some(outcome);
            }
        }
        let outcome = last_outcome.expect("at least one jobs level ran");
        print_stream(&outcome);
        report_json = opts
            .report_out
            .is_some()
            .then(|| outcome.report.normalized().to_json().expect("report serializes"));
        if opts.json {
            println!("\n{}", outcome.report.to_json().expect("report serializes"));
        }
    } else {
        let mut last_report: Option<CampaignReport> = None;
        for (i, &workers) in jobs_levels.iter().enumerate() {
            let last = i == jobs_levels.len() - 1;
            let mut campaign = configured_campaign(&opts, workers);
            if last {
                campaign = campaign.tracer(tracer.clone()).metrics(registry.clone());
            }
            eprintln!(
                "running the full campaign ({} cells, {workers} workers{shard_note}{tlb_note}) ...",
                campaign.grid().shard_len(opts.shard),
            );
            let start = Instant::now();
            let report = campaign.run();
            let elapsed = start.elapsed();
            entries.push(CampaignThroughput::new(&report, workers, elapsed.as_micros() as u64));
            if last {
                last_report = Some(report);
            }
        }
        let report = last_report.expect("at least one jobs level ran");
        print_report(&report);

        // Throughput summary: one entry per jobs level.
        println!();
        for t in &entries {
            print_throughput(t);
        }
        println!("per-phase latency of the last run (completed vs degraded cells):");
        let final_entry = entries.last().expect("entries is non-empty");
        print_phase("boot", &final_entry.latency.boot);
        print_phase("inject", &final_entry.latency.inject);
        print_phase("monitor", &final_entry.latency.monitor);
        report_json = opts
            .report_out
            .is_some()
            .then(|| report.normalized().to_json().expect("report serializes"));
        if opts.json {
            println!("\n{}", report.to_json().expect("report serializes"));
        }
    }

    // Flight-recorder overhead on the Table III grid: the per-worker
    // forensic ring is always-on (default capacity 256), so its cost is
    // gated < 5% against a recorder-off baseline on real campaign
    // cells. Trials are boosted so one run is long enough to time, and
    // each side is measured best-of-3 with the runs interleaved (up to
    // best-of-6 if the gate would otherwise fail): a single
    // back-to-back pair is dominated by scheduler noise on shared
    // machines, and the paired minima estimate each pipeline's true
    // floor.
    {
        let flight_workers = opts.jobs.unwrap_or(4);
        let flight_campaign = || {
            let mut campaign = paper_campaign().trials(100).jobs(flight_workers);
            if opts.no_tlb {
                campaign = campaign.use_tlb(false);
            }
            if let Some(depth) = opts.queue_depth {
                campaign = campaign.queue_depth(depth);
            }
            campaign
        };
        eprintln!(
            "measuring flight-recorder overhead (paper grid x100 trials, \
             {flight_workers} workers) ..."
        );
        let baseline = flight_campaign().flight_capacity(0).run_streaming_with_jobs(flight_workers);
        let reference = baseline.report.normalized().to_json().expect("report serializes");
        let mut off_best = baseline.stats.cells_per_sec;
        let mut on_best = 0.0f64;
        let mut flight_pairs = 0u64;
        loop {
            let on = flight_campaign().run_streaming_with_jobs(flight_workers);
            assert_eq!(
                on.report.normalized().to_json().expect("report serializes"),
                reference,
                "the flight recorder must not change the report"
            );
            on_best = on_best.max(on.stats.cells_per_sec);
            let off = flight_campaign().flight_capacity(0).run_streaming_with_jobs(flight_workers);
            off_best = off_best.max(off.stats.cells_per_sec);
            flight_pairs += 1;
            let settled = on_best >= off_best * 0.95;
            if (flight_pairs >= 3 && settled) || flight_pairs >= 6 {
                break;
            }
        }
        let flight_overhead_pct = 100.0 * (1.0 - on_best / off_best);
        println!(
            "\nflight-recorder overhead: {off_best:.0} -> {on_best:.0} cells/sec \
             ({flight_overhead_pct:+.1}%) at ring capacity {DEFAULT_FLIGHT_CAPACITY}",
        );
        assert!(
            flight_overhead_pct < 5.0,
            "the always-on flight recorder must cost < 5% throughput, \
             measured {flight_overhead_pct:.1}%"
        );
        flight_entries.push(FlightBench {
            cells: baseline.report.cells,
            workers: baseline.stats.workers,
            capacity: DEFAULT_FLIGHT_CAPACITY as u64,
            recorder_off_cells_per_sec: off_best,
            recorder_on_cells_per_sec: on_best,
            overhead_pct: flight_overhead_pct,
        });
    }

    // The synthetic ~100k-cell streamed grid: proves the pipeline holds
    // O(workers + queue depth) cells resident regardless of grid size.
    // Default-on for the full sweep, off for explicit `--jobs` runs (CI
    // determinism steps stay fast); `--synthetic-cells` overrides.
    let synthetic_cells = opts.synthetic_cells.unwrap_or(if opts.jobs.is_none() { 100_002 } else { 0 });
    if synthetic_cells > 0 {
        let trials = synthetic_cells.div_ceil(3);
        let workers = opts.jobs.unwrap_or(4);
        // Both the plain and the checkpointed run carry a metrics
        // registry so the overhead comparison isolates the journal
        // writes (per-cell metrics recording is not free and must be
        // paid identically on both sides).
        let plain_registry = MetricsRegistry::new();
        let mut campaign =
            synthetic_campaign(SYNTHETIC_SEED, trials).metrics(plain_registry.clone());
        if let Some(depth) = opts.queue_depth {
            campaign = campaign.queue_depth(depth);
        }
        eprintln!("streaming the synthetic grid ({} cells, {workers} workers) ...", trials * 3);
        let outcome = campaign.run_streaming_with_jobs(workers);
        let stats = outcome.stats;
        assert!(
            stats.peak_resident_cells <= stats.queue_depth + stats.workers + 1,
            "resident cells must be O(workers + queue depth): peak {} > {} + {} + 1",
            stats.peak_resident_cells,
            stats.queue_depth,
            stats.workers,
        );
        println!(
            "\nsynthetic streamed grid: {} cells at {:.0} cells/sec, peak resident {} \
             (bound {} = queue depth {} + workers {} + 1)",
            outcome.report.cells,
            stats.cells_per_sec,
            stats.peak_resident_cells,
            stats.queue_depth + stats.workers + 1,
            stats.queue_depth,
            stats.workers,
        );
        stream_entries.push(outcome.bench_entry(format!("synthetic_{}", trials * 3)));

        // Checkpoint overhead on the same grid: journaling at the
        // default fold interval must cost < 10% of throughput. The
        // journal reuses the plain run's worker count so the two
        // pipelines differ only in the journal writes. Each side is
        // measured best-of-3 with the runs interleaved: shared machines
        // see multi-hundred-millisecond scheduler noise on a ~1.5 s
        // run, so a single back-to-back pair routinely reports 2-25%
        // for the same binary. The paired minima estimate the true
        // floor of each pipeline; the gate compares those.
        let journal = std::env::temp_dir()
            .join(format!("hvsim-table3-{}.journal", std::process::id()));
        eprintln!("streaming the synthetic grid again with a checkpoint journal ...");
        let ckpt_registry = MetricsRegistry::new();
        let mut plain_best = stats.cells_per_sec;
        let mut ckpt_best = 0.0f64;
        let mut journal_bytes;
        let mut ckpt_runs = 0u64;
        // Best-of-3 interleaved pairs, extended up to best-of-6 when
        // the gate would otherwise fail: on a busy shared machine all
        // three checkpointed runs can be unlucky at once, and extra
        // paired samples converge both minima to their true floors.
        loop {
            let ckpt = synthetic_campaign(SYNTHETIC_SEED, trials)
                .jobs(workers)
                .metrics(ckpt_registry.clone())
                .run_streaming_checkpointed(&journal)
                .expect("checkpoint journal opens in temp dir");
            assert_eq!(
                ckpt.report.normalized().to_json().expect("report serializes"),
                outcome.report.normalized().to_json().expect("report serializes"),
                "journaling must not change the report"
            );
            ckpt_best = ckpt_best.max(ckpt.stats.cells_per_sec);
            ckpt_runs += 1;
            journal_bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
            let rerun = synthetic_campaign(SYNTHETIC_SEED, trials)
                .metrics(plain_registry.clone())
                .run_streaming_with_jobs(workers);
            plain_best = plain_best.max(rerun.stats.cells_per_sec);
            let settled = ckpt_best >= plain_best * 0.90;
            if (ckpt_runs >= 3 && settled) || ckpt_runs >= 6 {
                break;
            }
        }
        let snapshot = ckpt_registry.snapshot();
        // All checkpointed runs fed one registry; report one run's syncs.
        let fsyncs = snapshot
            .counters
            .iter()
            .find(|c| c.name == "campaign.checkpoint.syncs")
            .map_or(0, |c| c.value / ckpt_runs.max(1));
        let overhead_pct = 100.0 * (1.0 - ckpt_best / plain_best);
        println!(
            "checkpoint overhead: {plain_best:.0} -> {ckpt_best:.0} cells/sec \
             ({overhead_pct:+.1}%), {journal_bytes} journal bytes, {fsyncs} fsyncs",
        );
        assert!(
            overhead_pct < 10.0,
            "checkpoint journaling at the default interval must cost < 10% throughput, \
             measured {overhead_pct:.1}%"
        );
        checkpoint_entries.push(CheckpointBench {
            cells: outcome.report.cells,
            workers: stats.workers,
            interval: 1024,
            journal_slots: false,
            plain_cells_per_sec: plain_best,
            checkpointed_cells_per_sec: ckpt_best,
            overhead_pct,
            journal_bytes,
            sidecar_bytes: 0,
            fsyncs,
        });

        // One informational run with the opt-in per-cell forensic
        // sidecar (`--journal-slots`): its cost is reported, not gated —
        // unsynced per-cell writes are storage-dependent and the
        // default path above is what the < 10% contract covers.
        eprintln!("streaming once more with the --journal-slots sidecar ...");
        let slots_registry = MetricsRegistry::new();
        let slots = synthetic_campaign(SYNTHETIC_SEED, trials)
            .jobs(workers)
            .journal_slots(true)
            .metrics(slots_registry.clone())
            .run_streaming_checkpointed(&journal)
            .expect("checkpoint journal opens in temp dir");
        let sidecar = format!("{}.slots", journal.display());
        let sidecar_bytes = std::fs::metadata(&sidecar).map(|m| m.len()).unwrap_or(0);
        let slots_journal_bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(&sidecar).ok();
        let slots_overhead = 100.0 * (1.0 - slots.stats.cells_per_sec / plain_best);
        println!(
            "  with --journal-slots: {:.0} cells/sec ({slots_overhead:+.1}%), \
             +{sidecar_bytes} sidecar bytes",
            slots.stats.cells_per_sec,
        );
        checkpoint_entries.push(CheckpointBench {
            cells: slots.report.cells,
            workers: slots.stats.workers,
            interval: 1024,
            journal_slots: true,
            plain_cells_per_sec: plain_best,
            checkpointed_cells_per_sec: slots.stats.cells_per_sec,
            overhead_pct: slots_overhead,
            journal_bytes: slots_journal_bytes,
            sidecar_bytes,
            fsyncs: slots_registry
                .snapshot()
                .counters
                .iter()
                .find(|c| c.name == "campaign.checkpoint.syncs")
                .map_or(0, |c| c.value),
        });
    }

    // Memory-substrate microbenchmarks: fast enough to run on every
    // invocation, so the committed numbers always track the code.
    let mem_entries = {
        const FRAMES: usize = 4096;
        eprintln!("measuring chunked-COW privatization and mmu_update batching ...");
        let chunked = privatize_ns(FRAMES, DEFAULT_CHUNK_FRAMES, 200, 3);
        let monolithic = privatize_ns(FRAMES, FRAMES, 200, 3);
        let privatize_speedup = monolithic / chunked;
        let singleton = mmu_batch_ns(false, 100, 3);
        let batched = mmu_batch_ns(true, 100, 3);
        println!(
            "\nframe privatization (1 touched frame, {FRAMES}-frame world): \
             {monolithic:.0} ns monolithic -> {chunked:.0} ns chunked ({privatize_speedup:.1}x)",
        );
        println!(
            "mmu_update (64 entries): {singleton:.0} ns as singletons -> {batched:.0} ns \
             batched ({:.2}x)",
            singleton / batched,
        );
        assert!(
            privatize_speedup >= 5.0,
            "chunked COW privatization must be >= 5x faster than the monolithic \
             baseline for a 1-touched-frame snapshot, measured {privatize_speedup:.1}x"
        );
        vec![MemBench {
            frames: FRAMES as u64,
            chunk_frames: DEFAULT_CHUNK_FRAMES as u64,
            chunked_privatize_ns: chunked,
            monolithic_privatize_ns: monolithic,
            privatize_speedup,
            batch_entries: 64,
            singleton_batch_ns: singleton,
            batched_batch_ns: batched,
            batch_speedup: singleton / batched,
        }]
    };

    let bench = serde_json::to_string_pretty(&BenchFile {
        table3: entries,
        stream: stream_entries,
        checkpoint: checkpoint_entries,
        flight: flight_entries,
        mem: mem_entries,
    })
    .expect("throughput serializes");
    match std::fs::write("BENCH_campaign.json", bench) {
        Ok(()) => eprintln!("wrote BENCH_campaign.json"),
        Err(e) => eprintln!("could not write BENCH_campaign.json: {e}"),
    }

    if let Some(path) = &opts.report_out {
        // The *normalized* report: per-cell timing and COW/TLB stats
        // zeroed, so runs at different jobs levels or TLB settings must
        // produce byte-identical files (CI diffs them), and normalized
        // streamed shard reports merge into normalized wholes.
        let json = report_json.expect("report captured when --report-out is set");
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote normalized report to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        let events = tracer.drain();
        match std::fs::write(path, to_jsonl(&events)) {
            Ok(()) => eprintln!("wrote {} trace events to {path}", events.len()),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot =
            serde_json::to_string_pretty(&registry.snapshot()).expect("snapshot serializes");
        match std::fs::write(path, snapshot) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
}
