//! Regenerates **Table III**: the injection campaign across all
//! versions, plus the RQ1/RQ2/RQ3 summaries of §VI–§VIII, and records
//! campaign throughput in `BENCH_campaign.json`.

use bench::run_paper_campaign;
use intrusion_core::{default_jobs, CampaignThroughput, Mode};
use hvsim::XenVersion;
use std::time::Instant;

fn main() {
    let workers = default_jobs();
    eprintln!("running the full campaign (24 cells, {workers} workers) ...");
    let start = Instant::now();
    let report = run_paper_campaign();
    let elapsed = start.elapsed();
    println!("{}", report.render_table3());

    println!("RQ1 (reproduce exploit effects on the vulnerable version):");
    for cell in report.cells().iter().filter(|c| c.version == XenVersion::V4_6) {
        println!(
            "  {:<13} {:<9} -> state {} violation {}",
            cell.use_case,
            cell.mode.to_string(),
            cell.erroneous_state,
            cell.violated()
        );
    }

    println!("\nRQ2 (inject states on non-vulnerable versions): all Err. State cells above");
    println!("RQ3 (assessment): Xen 4.13 handles XSA-212-priv and XSA-182-test — the");
    println!("post-XSA-213 hardening removed the RWX linear-pagetable mapping and");
    println!("rejects writable self-maps during walks.\n");

    // Exploit failure signatures on fixed versions (§VII).
    println!("exploit attempts on fixed versions:");
    for cell in report
        .cells()
        .iter()
        .filter(|c| c.mode == Mode::Exploit && c.version != XenVersion::V4_6)
    {
        println!(
            "  {:<13} on {:<4} -> {}",
            cell.use_case,
            cell.version.to_string(),
            cell.error
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(succeeded?!)".to_owned())
        );
    }

    // Harness degradation is reported separately from assessment data:
    // a crashed or timed-out cell tells us nothing about the version
    // under test, so it must not be silently folded into the tables.
    let degraded: Vec<_> = report.degraded_cells().collect();
    if !degraded.is_empty() {
        println!("\ndegraded cells (harness failures, excluded from assessment):");
        for cell in &degraded {
            println!(
                "  {:<13} on {:<4} {:<9} -> {}",
                cell.use_case,
                cell.version.to_string(),
                cell.mode.to_string(),
                cell.error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| format!("{:?}", cell.outcome))
            );
        }
    }

    // Throughput summary + machine-readable benchmark record.
    let throughput =
        CampaignThroughput::new(&report, workers, elapsed.as_micros() as u64);
    println!(
        "\nthroughput: {} completed + {} degraded of {} cells in {:.1} ms on {} workers \
         ({:.0} cells/sec, {} us cell time, {} hypercalls)",
        throughput.completed_cells,
        throughput.degraded_cells,
        throughput.cells,
        throughput.elapsed_us as f64 / 1000.0,
        throughput.workers,
        throughput.cells_per_sec,
        throughput.total_cell_wall_time_us,
        throughput.total_hypercalls,
    );
    let bench = serde_json::to_string_pretty(&throughput).expect("throughput serializes");
    match std::fs::write("BENCH_campaign.json", bench) {
        Ok(()) => eprintln!("wrote BENCH_campaign.json"),
        Err(e) => eprintln!("could not write BENCH_campaign.json: {e}"),
    }

    println!("\nJSON report written to stdout of `--json` runs; cells: {}", report.cells().len());
    if std::env::args().any(|a| a == "--json") {
        println!("{}", report.to_json().expect("report serializes"));
    }
}
