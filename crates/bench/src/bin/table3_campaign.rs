//! Regenerates **Table III**: the injection campaign across all
//! versions, plus the RQ1/RQ2/RQ3 summaries of §VI–§VIII, and records
//! campaign throughput in `BENCH_campaign.json`.
//!
//! By default the campaign runs once per jobs level (1, 4, 8) and
//! `BENCH_campaign.json` holds one throughput entry per level — each
//! with the copy-on-write snapshot stats and software-TLB hit/miss
//! counters — so the scaling curve and the COW/TLB win are visible in
//! a single artifact. `--jobs N` restricts the sweep to one level.
//!
//! Flags:
//!
//! * `--jobs N` — run a single worker count instead of the 1/4/8 sweep
//! * `--no-tlb` — disable the software TLB (the report must not change)
//! * `--report-out FILE` — write the *normalized* cell report as JSON
//!   (what CI diffs across jobs levels and TLB settings)
//! * `--trace-out FILE` — write the campaign's structured trace as JSONL
//! * `--metrics-out FILE` — write the metrics-registry snapshot as JSON
//! * `--json` — also print the full report as JSON

use bench::paper_campaign;
use hvsim::XenVersion;
use hvsim_obs::{to_jsonl, MetricsRegistry, Tracer};
use intrusion_core::{CampaignReport, CampaignThroughput, Mode, PhaseLatency};
use std::process::exit;
use std::time::Instant;

struct Options {
    /// `None` runs the default 1/4/8 sweep.
    jobs: Option<usize>,
    no_tlb: bool,
    report_out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    json: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        jobs: None,
        no_tlb: false,
        report_out: None,
        trace_out: None,
        metrics_out: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => {
                let raw = value("--jobs");
                opts.jobs = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got '{raw}'");
                    exit(2);
                }));
            }
            "--no-tlb" => opts.no_tlb = true,
            "--report-out" => opts.report_out = Some(value("--report-out")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--json" => opts.json = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: table3_campaign [--jobs N] [--no-tlb] [--report-out FILE] \
                     [--trace-out FILE] [--metrics-out FILE] [--json]"
                );
                exit(2);
            }
        }
    }
    opts
}

fn print_phase(name: &str, phase: &PhaseLatency) {
    println!(
        "  {name:<8} completed n={:<3} p50={:<8} p95={:<8} max={:<8} us   \
         degraded n={:<3} p50={:<8} p95={:<8} max={} us",
        phase.completed.count,
        phase.completed.p50_us,
        phase.completed.p95_us,
        phase.completed.max_us,
        phase.degraded.count,
        phase.degraded.p50_us,
        phase.degraded.p95_us,
        phase.degraded.max_us,
    );
}

fn print_throughput(t: &CampaignThroughput) {
    println!(
        "throughput: {} completed + {} degraded of {} cells in {:.1} ms on {} workers \
         ({:.0} cells/sec, {} us cell time, {} hypercalls)",
        t.completed_cells,
        t.degraded_cells,
        t.cells,
        t.elapsed_us as f64 / 1000.0,
        t.workers,
        t.cells_per_sec,
        t.total_cell_wall_time_us,
        t.total_hypercalls,
    );
    println!(
        "  snapshot: {} frames, {} shared at peak, {} COW-copied   \
         tlb: {} hits, {} misses",
        t.snapshot.frames_total,
        t.snapshot.frames_shared,
        t.snapshot.frames_copied,
        t.tlb.hits,
        t.tlb.misses,
    );
}

fn print_report(report: &CampaignReport) {
    println!("{}", report.render_table3());

    println!("RQ1 (reproduce exploit effects on the vulnerable version):");
    for cell in report.cells().iter().filter(|c| c.version == XenVersion::V4_6) {
        println!(
            "  {:<13} {:<9} -> state {} violation {}",
            cell.use_case,
            cell.mode.to_string(),
            cell.erroneous_state,
            cell.violated()
        );
    }

    println!("\nRQ2 (inject states on non-vulnerable versions): all Err. State cells above");
    println!("RQ3 (assessment): Xen 4.13 handles XSA-212-priv and XSA-182-test — the");
    println!("post-XSA-213 hardening removed the RWX linear-pagetable mapping and");
    println!("rejects writable self-maps during walks.\n");

    // Exploit failure signatures on fixed versions (§VII).
    println!("exploit attempts on fixed versions:");
    for cell in report
        .cells()
        .iter()
        .filter(|c| c.mode == Mode::Exploit && c.version != XenVersion::V4_6)
    {
        println!(
            "  {:<13} on {:<4} -> {}",
            cell.use_case,
            cell.version.to_string(),
            cell.error
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(succeeded?!)".to_owned())
        );
    }

    // Harness degradation is reported separately from assessment data:
    // a crashed or timed-out cell tells us nothing about the version
    // under test, so it must not be silently folded into the tables.
    let degraded: Vec<_> = report.degraded_cells().collect();
    if !degraded.is_empty() {
        println!("\ndegraded cells (harness failures, excluded from assessment):");
        for cell in &degraded {
            println!(
                "  {:<13} on {:<4} {:<9} -> {}",
                cell.use_case,
                cell.version.to_string(),
                cell.mode.to_string(),
                cell.error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| format!("{:?}", cell.outcome))
            );
        }
    }
}

fn main() {
    let opts = parse_args();
    let jobs_levels: Vec<usize> = match opts.jobs {
        Some(n) => vec![n],
        None => vec![1, 4, 8],
    };
    let tracer = if opts.trace_out.is_some() { Tracer::enabled() } else { Tracer::disabled() };
    let registry = MetricsRegistry::new();

    let mut entries: Vec<CampaignThroughput> = Vec::new();
    let mut last_report: Option<CampaignReport> = None;
    for (i, &workers) in jobs_levels.iter().enumerate() {
        // The trace and metrics hooks are attached to the last level
        // only, so `--trace-out` / `--metrics-out` describe one run
        // instead of interleaving the whole sweep.
        let last = i == jobs_levels.len() - 1;
        let mut campaign = paper_campaign().jobs(workers);
        if opts.no_tlb {
            campaign = campaign.use_tlb(false);
        }
        if last {
            campaign = campaign.tracer(tracer.clone()).metrics(registry.clone());
        }
        eprintln!(
            "running the full campaign (24 cells, {workers} workers{}) ...",
            if opts.no_tlb { ", TLB off" } else { "" }
        );
        let start = Instant::now();
        let report = campaign.run();
        let elapsed = start.elapsed();
        entries.push(CampaignThroughput::new(&report, workers, elapsed.as_micros() as u64));
        if last {
            last_report = Some(report);
        }
    }
    let report = last_report.expect("at least one jobs level ran");
    print_report(&report);

    // Throughput summary + machine-readable benchmark record: one entry
    // per jobs level (always an array, even for a single `--jobs N`).
    println!();
    for t in &entries {
        print_throughput(t);
    }
    println!("per-phase latency of the last run (completed vs degraded cells):");
    let final_entry = entries.last().expect("entries is non-empty");
    print_phase("boot", &final_entry.latency.boot);
    print_phase("inject", &final_entry.latency.inject);
    print_phase("monitor", &final_entry.latency.monitor);
    let bench = serde_json::to_string_pretty(&entries).expect("throughput serializes");
    match std::fs::write("BENCH_campaign.json", bench) {
        Ok(()) => eprintln!("wrote BENCH_campaign.json ({} jobs levels)", entries.len()),
        Err(e) => eprintln!("could not write BENCH_campaign.json: {e}"),
    }

    if let Some(path) = &opts.report_out {
        // The *normalized* report: per-cell timing and COW/TLB stats
        // zeroed, so runs at different jobs levels or TLB settings must
        // produce byte-identical files (CI diffs them).
        let json = report.normalized().to_json().expect("report serializes");
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote normalized report to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        let events = tracer.drain();
        match std::fs::write(path, to_jsonl(&events)) {
            Ok(()) => eprintln!("wrote {} trace events to {path}", events.len()),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot =
            serde_json::to_string_pretty(&registry.snapshot()).expect("snapshot serializes");
        match std::fs::write(path, snapshot) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }

    println!("\nJSON report written to stdout of `--json` runs; cells: {}", report.cells().len());
    if opts.json {
        println!("{}", report.to_json().expect("report serializes"));
    }
}
