//! Regenerates **Table III**: the injection campaign across all
//! versions, plus the RQ1/RQ2/RQ3 summaries of §VI–§VIII, and records
//! campaign throughput in `BENCH_campaign.json`.
//!
//! Flags:
//!
//! * `--jobs N` — worker count (default: [`default_jobs`])
//! * `--trace-out FILE` — write the campaign's structured trace as JSONL
//! * `--metrics-out FILE` — write the metrics-registry snapshot as JSON
//! * `--json` — also print the full report as JSON

use bench::paper_campaign;
use hvsim::XenVersion;
use hvsim_obs::{to_jsonl, MetricsRegistry, Tracer};
use intrusion_core::{default_jobs, CampaignThroughput, Mode, PhaseLatency};
use std::process::exit;
use std::time::Instant;

struct Options {
    jobs: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    json: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        jobs: default_jobs(),
        trace_out: None,
        metrics_out: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => {
                let raw = value("--jobs");
                opts.jobs = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got '{raw}'");
                    exit(2);
                });
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--json" => opts.json = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: table3_campaign [--jobs N] [--trace-out FILE] \
                     [--metrics-out FILE] [--json]"
                );
                exit(2);
            }
        }
    }
    opts
}

fn print_phase(name: &str, phase: &PhaseLatency) {
    println!(
        "  {name:<8} completed n={:<3} p50={:<8} p95={:<8} max={:<8} us   \
         degraded n={:<3} p50={:<8} p95={:<8} max={} us",
        phase.completed.count,
        phase.completed.p50_us,
        phase.completed.p95_us,
        phase.completed.max_us,
        phase.degraded.count,
        phase.degraded.p50_us,
        phase.degraded.p95_us,
        phase.degraded.max_us,
    );
}

fn main() {
    let opts = parse_args();
    let workers = opts.jobs;
    let tracer = if opts.trace_out.is_some() { Tracer::enabled() } else { Tracer::disabled() };
    let registry = MetricsRegistry::new();
    eprintln!("running the full campaign (24 cells, {workers} workers) ...");
    let start = Instant::now();
    let report = paper_campaign()
        .jobs(workers)
        .tracer(tracer.clone())
        .metrics(registry.clone())
        .run();
    let elapsed = start.elapsed();
    println!("{}", report.render_table3());

    println!("RQ1 (reproduce exploit effects on the vulnerable version):");
    for cell in report.cells().iter().filter(|c| c.version == XenVersion::V4_6) {
        println!(
            "  {:<13} {:<9} -> state {} violation {}",
            cell.use_case,
            cell.mode.to_string(),
            cell.erroneous_state,
            cell.violated()
        );
    }

    println!("\nRQ2 (inject states on non-vulnerable versions): all Err. State cells above");
    println!("RQ3 (assessment): Xen 4.13 handles XSA-212-priv and XSA-182-test — the");
    println!("post-XSA-213 hardening removed the RWX linear-pagetable mapping and");
    println!("rejects writable self-maps during walks.\n");

    // Exploit failure signatures on fixed versions (§VII).
    println!("exploit attempts on fixed versions:");
    for cell in report
        .cells()
        .iter()
        .filter(|c| c.mode == Mode::Exploit && c.version != XenVersion::V4_6)
    {
        println!(
            "  {:<13} on {:<4} -> {}",
            cell.use_case,
            cell.version.to_string(),
            cell.error
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(succeeded?!)".to_owned())
        );
    }

    // Harness degradation is reported separately from assessment data:
    // a crashed or timed-out cell tells us nothing about the version
    // under test, so it must not be silently folded into the tables.
    let degraded: Vec<_> = report.degraded_cells().collect();
    if !degraded.is_empty() {
        println!("\ndegraded cells (harness failures, excluded from assessment):");
        for cell in &degraded {
            println!(
                "  {:<13} on {:<4} {:<9} -> {}",
                cell.use_case,
                cell.version.to_string(),
                cell.mode.to_string(),
                cell.error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| format!("{:?}", cell.outcome))
            );
        }
    }

    // Throughput summary + machine-readable benchmark record.
    let throughput =
        CampaignThroughput::new(&report, workers, elapsed.as_micros() as u64);
    println!(
        "\nthroughput: {} completed + {} degraded of {} cells in {:.1} ms on {} workers \
         ({:.0} cells/sec, {} us cell time, {} hypercalls)",
        throughput.completed_cells,
        throughput.degraded_cells,
        throughput.cells,
        throughput.elapsed_us as f64 / 1000.0,
        throughput.workers,
        throughput.cells_per_sec,
        throughput.total_cell_wall_time_us,
        throughput.total_hypercalls,
    );
    println!("per-phase latency (completed vs degraded cells):");
    print_phase("boot", &throughput.latency.boot);
    print_phase("inject", &throughput.latency.inject);
    print_phase("monitor", &throughput.latency.monitor);
    let bench = serde_json::to_string_pretty(&throughput).expect("throughput serializes");
    match std::fs::write("BENCH_campaign.json", bench) {
        Ok(()) => eprintln!("wrote BENCH_campaign.json"),
        Err(e) => eprintln!("could not write BENCH_campaign.json: {e}"),
    }

    if let Some(path) = &opts.trace_out {
        let events = tracer.drain();
        match std::fs::write(path, to_jsonl(&events)) {
            Ok(()) => eprintln!("wrote {} trace events to {path}", events.len()),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot =
            serde_json::to_string_pretty(&registry.snapshot()).expect("snapshot serializes");
        match std::fs::write(path, snapshot) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                exit(1);
            }
        }
    }

    println!("\nJSON report written to stdout of `--json` runs; cells: {}", report.cells().len());
    if opts.json {
        println!("{}", report.to_json().expect("report serializes"));
    }
}
