//! Regenerates **Fig. 2**: the methodology overview — the traditional
//! (attack) path and the injection path side by side, for every use
//! case, from live runs.

use bench::run_paper_campaign;
use hvsim::XenVersion;

fn main() {
    eprintln!("running the full campaign ...");
    let report = run_paper_campaign();
    for uc in [
        "XSA-212-crash",
        "XSA-212-priv",
        "XSA-148-priv",
        "XSA-182-test",
    ] {
        println!("{}", report.render_fig2(uc, XenVersion::V4_6));
    }
    println!("and on the hardened version, where the injector still reaches the");
    println!("erroneous state but the system may handle it:\n");
    for uc in ["XSA-212-priv", "XSA-182-test"] {
        println!("{}", report.render_fig2(uc, XenVersion::V4_13));
    }
}
