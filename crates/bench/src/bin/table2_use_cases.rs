//! Regenerates **Table II**: the four use cases and the abusive
//! functionality their intrusion models carry.

use intrusion_core::TextTable;
use xsa_exploits::paper_use_cases;

fn main() {
    let mut table =
        TextTable::new(["Use Case", "Abusive Functionality"]).title("TABLE II (from the paper's four use cases)");
    for uc in paper_use_cases() {
        let im = uc.intrusion_model();
        table.row([uc.name().to_owned(), im.abusive_functionality.label().to_owned()]);
    }
    println!("{table}");
    println!("full instantiation shared by all four (paper §VI-A):");
    let im = paper_use_cases()[0].intrusion_model();
    println!(
        "  triggering source: {}\n  target component:  {}\n  interface:         {}",
        im.triggering_source, im.target_component, im.interface
    );
}
