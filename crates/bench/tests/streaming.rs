//! End-to-end tests for the streaming campaign pipeline at scale: a
//! ≥100k-cell synthetic campaign must finish with resident cell-result
//! memory bounded by the pipeline (queue depth + workers), and its
//! normalized report must be byte-identical across worker counts and
//! across shard/merge decompositions.

use bench::{paper_campaign, synthetic_campaign};
use intrusion_core::{Shard, StreamReport};

#[test]
fn hundred_thousand_cell_campaign_is_bounded_and_deterministic() {
    // 3 versions × 33,334 trials = 100,002 cells.
    let trials = 33_334;
    let queue_depth = 32;
    let seed = 0xD5_2023;

    let wide = synthetic_campaign(seed, trials).queue_depth(queue_depth);
    let jobs8 = wide.run_streaming_with_jobs(8);
    assert_eq!(jobs8.report.cells, 100_002);
    assert_eq!(jobs8.report.completed, jobs8.report.cells, "synthetic grid never degrades");
    assert!(jobs8.report.erroneous_states > 0);
    assert_eq!(jobs8.report.by_key.len(), 3, "one key per version");
    assert!(
        jobs8.stats.peak_resident_cells <= (queue_depth + 8 + 1) as u64,
        "resident cells must be bounded by queue depth + workers, got {}",
        jobs8.stats.peak_resident_cells
    );
    assert!(jobs8.stats.cells_per_sec > 0.0);

    let jobs1 = wide.run_streaming_with_jobs(1);
    assert!(jobs1.stats.peak_resident_cells <= (queue_depth + 1 + 1) as u64);
    let unsharded = jobs8.report.normalized().to_json().unwrap();
    assert_eq!(
        unsharded,
        jobs1.report.normalized().to_json().unwrap(),
        "jobs=1 and jobs=8 streamed reports must be byte-identical"
    );

    // Two deterministic shards, run as independent campaigns at jobs=4,
    // merge back to the unsharded report byte-for-byte.
    let half0 = synthetic_campaign(seed, trials)
        .queue_depth(queue_depth)
        .shard(Shard::new(0, 2).unwrap())
        .run_streaming_with_jobs(4);
    let half1 = synthetic_campaign(seed, trials)
        .queue_depth(queue_depth)
        .shard(Shard::new(1, 2).unwrap())
        .run_streaming_with_jobs(4);
    assert_eq!(half0.report.cells + half1.report.cells, 100_002);
    let merged = half0.report.merge(&half1.report);
    assert_eq!(
        unsharded,
        merged.normalized().to_json().unwrap(),
        "merged shard reports must reproduce the unsharded report"
    );
}

#[test]
fn merge_misuse_fails_loudly_instead_of_double_counting() {
    let report = |trials: u64, shard: Option<Shard>| {
        let mut campaign = synthetic_campaign(7, trials).queue_depth(8);
        if let Some(shard) = shard {
            campaign = campaign.shard(shard);
        }
        campaign.run_streaming_with_jobs(2).report
    };
    // Different grids (trials axis differs): refused, named in the error.
    let four = report(4, None);
    let five = report(5, None);
    let err = four.try_merge(&five).unwrap_err().to_string();
    assert!(err.contains("different campaign grids"), "grid mismatch is loud: {err}");
    // The same shard twice: every slot would be double-counted.
    let half0 = report(4, Some(Shard::new(0, 2).unwrap()));
    let err = half0.try_merge(&half0.clone()).unwrap_err().to_string();
    assert!(err.contains("overlap"), "identical shards overlap: {err}");
    // Overlap through different denominators: 0/2 covers slots 2/4 does.
    let quarter2 = report(4, Some(Shard::new(2, 4).unwrap()));
    let err = half0.try_merge(&quarter2).unwrap_err().to_string();
    assert!(err.contains("overlap"), "0/2 and 2/4 overlap: {err}");
    // Disjoint shards and the default-identity report still merge.
    let half1 = report(4, Some(Shard::new(1, 2).unwrap()));
    let merged = StreamReport::default().try_merge(&half0).unwrap().try_merge(&half1).unwrap();
    assert_eq!(merged.cells, four.cells);
    // Deserializing non-reports fails instead of yielding zeroed data.
    assert!(StreamReport::from_json("{}").is_err());
    assert!(StreamReport::from_json("not a report").is_err());
}

#[test]
fn paper_campaign_streamed_aggregates_match_the_classic_report() {
    let campaign = paper_campaign();
    let classic = campaign.run_with_jobs(2);
    let streamed = campaign.run_streaming_with_jobs(2);
    assert_eq!(streamed.report.cells as usize, classic.cells().len());
    assert_eq!(streamed.report.completed as usize, classic.completed_cells().count());
    assert_eq!(streamed.report.degraded as usize, classic.degraded_cells().count());
    assert_eq!(
        streamed.report.erroneous_states as usize,
        classic.cells().iter().filter(|c| c.erroneous_state).count()
    );
    assert_eq!(
        streamed.report.violated_cells as usize,
        classic.cells().iter().filter(|c| c.violated()).count()
    );
    assert_eq!(streamed.report.hypercalls, classic.total_hypercalls());
    assert_eq!(streamed.report.by_key.len(), 24, "use_case/version/mode keys");
}
