//! Crash-safety tests for the checkpoint/resume journal at ≥100k-cell
//! scale: a checkpointed streaming campaign that is hard-killed (here:
//! its journal truncated at an arbitrary byte offset, leaving a torn
//! final record) must resume to a merged normalized [`StreamReport`]
//! byte-identical to the uninterrupted run — per shard and across
//! `report merge`-style [`StreamReport::try_merge`].

use bench::synthetic_campaign;
use hvsim_obs::MetricsRegistry;
use intrusion_core::{Campaign, Shard};
use std::path::PathBuf;

const SEED: u64 = 0xD5_2023;
// 3 versions × 33,334 trials = 100,002 cells.
const TRIALS: u64 = 33_334;

fn campaign() -> Campaign {
    // The forensic sidecar is opt-in; on here so the kill/resume path
    // exercises it at scale (the sidecar appends across generations).
    synthetic_campaign(SEED, TRIALS)
        .queue_depth(32)
        .jobs(4)
        .checkpoint_interval(256)
        .journal_slots(true)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hvsim-ckpt-{}-{name}", std::process::id()))
}

/// Truncates the journal to `keep` of its bytes — almost always mid-
/// record, so recovery must also tolerate the torn final record.
fn hard_kill(journal: &PathBuf, keep: f64) {
    let bytes = std::fs::read(journal).unwrap();
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let cut = (bytes.len() as f64 * keep) as usize;
    std::fs::write(journal, &bytes[..cut]).unwrap();
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.snapshot().counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
}

#[test]
fn killed_checkpointed_campaign_resumes_byte_identically() {
    let journal = scratch("full.journal");
    let outcome = campaign().run_streaming_checkpointed(&journal).unwrap();
    assert_eq!(outcome.report.cells, 100_002);
    assert_eq!(outcome.report.completed, outcome.report.cells);
    let uninterrupted = outcome.report.normalized().to_json().unwrap();

    // Hard-kill simulation: drop the last third of the journal, leaving
    // a torn record at the new tail. Resume must recover the valid
    // prefix, re-run only the uncovered slots, and reproduce the report.
    hard_kill(&journal, 0.67);
    let registry = MetricsRegistry::new();
    let resumed = campaign().metrics(registry.clone()).resume(&journal).unwrap();
    assert_eq!(
        resumed.report.normalized().to_json().unwrap(),
        uninterrupted,
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let skipped = counter(&registry, "campaign.checkpoint.resumed_slots");
    assert!(skipped > 0, "resume must skip slots covered by durable fold records");
    assert!(skipped < 100_002, "a truncated journal cannot cover the whole grid");
    assert!(counter(&registry, "campaign.checkpoint.folds") > 0);
    assert!(counter(&registry, "campaign.checkpoint.slots") > 0, "sidecar was requested");
    assert_eq!(counter(&registry, "campaign.checkpoint.write_errors"), 0);

    // A second resume of the now-complete journal re-runs only the tail
    // beyond the last durable fold batch and still agrees.
    let again = campaign().resume(&journal).unwrap();
    assert_eq!(again.report.normalized().to_json().unwrap(), uninterrupted);
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(format!("{}.slots", journal.display())).ok();
}

#[test]
fn killed_shards_resume_and_merge_to_the_unsharded_report() {
    let unsharded = campaign().run_streaming().report.normalized().to_json().unwrap();
    let mut shard_reports = Vec::new();
    for index in 0..2 {
        let journal = scratch(&format!("shard{index}.journal"));
        let shard = Shard::new(index, 2).unwrap();
        let full = campaign().shard(shard).run_streaming_checkpointed(&journal).unwrap();
        // Kill each shard at a different point in its journal.
        hard_kill(&journal, if index == 0 { 0.5 } else { 0.85 });
        let resumed = campaign().shard(shard).resume(&journal).unwrap();
        assert_eq!(
            resumed.report.normalized().to_json().unwrap(),
            full.report.normalized().to_json().unwrap(),
            "shard {index} resume must match its uninterrupted run"
        );
        shard_reports.push(resumed.report);
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(format!("{}.slots", journal.display())).ok();
    }
    let merged = shard_reports[0].try_merge(&shard_reports[1]).unwrap();
    assert_eq!(
        merged.normalized().to_json().unwrap(),
        unsharded,
        "resumed shard reports must merge to the unsharded report byte-for-byte"
    );
}

#[test]
fn resume_refuses_the_wrong_campaign_or_shard() {
    let journal = scratch("mismatch.journal");
    let small = || synthetic_campaign(SEED, 100).jobs(2);
    small().run_streaming_checkpointed(&journal).unwrap();
    // Different trials axis: different grid fingerprint.
    let err = synthetic_campaign(SEED, 101).jobs(2).resume(&journal).unwrap_err().to_string();
    assert!(err.contains("different campaign"), "grid mismatch is loud and typed: {err}");
    // Same grid, wrong shard.
    let err =
        small().shard(Shard::new(0, 2).unwrap()).resume(&journal).unwrap_err().to_string();
    assert!(err.contains("different campaign"), "shard mismatch is loud and typed: {err}");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(format!("{}.slots", journal.display())).ok();
}
