//! Regression tests for the parallel campaign engine: the real paper
//! campaign (4 use cases × 3 versions × 2 modes) must produce
//! byte-identical normalized reports regardless of worker count or
//! snapshot reuse, and the randomized sweep must be schedule-independent.

use bench::{attack_world, paper_campaign, synthetic_campaign};
use hvsim::XenVersion;
use intrusion_core::{
    standard_world_factory, RandomizedCampaign, Shard, StreamReport, TargetRegion,
};
use proptest::prelude::*;

#[test]
fn paper_campaign_report_is_worker_count_independent() {
    let serial = paper_campaign().run_with_jobs(1);
    let parallel = paper_campaign().run_with_jobs(8);
    assert_eq!(
        serial.normalized().to_json().unwrap(),
        parallel.normalized().to_json().unwrap(),
        "jobs=1 and jobs=8 must produce byte-identical reports"
    );
}

#[test]
fn paper_campaign_snapshots_match_boot_per_cell() {
    let snapshots = paper_campaign().run_with_jobs(2);
    let booted = paper_campaign().reuse_snapshots(false).run_with_jobs(2);
    assert_eq!(
        snapshots.normalized().to_json().unwrap(),
        booted.normalized().to_json().unwrap(),
        "a snapshot clone must behave exactly like a fresh boot"
    );
}

#[test]
fn paper_campaign_report_is_tlb_independent() {
    let with_tlb = paper_campaign().run_with_jobs(2);
    let without_tlb = paper_campaign().use_tlb(false).run_with_jobs(2);
    assert_eq!(
        with_tlb.normalized().to_json().unwrap(),
        without_tlb.normalized().to_json().unwrap(),
        "the software TLB is an optimization: disabling it must not change the report"
    );
}

#[test]
fn paper_campaign_report_is_chunk_size_independent() {
    // The COW chunk directory is pure mechanism: shrinking chunks to a
    // single frame (maximum privatization granularity) or inflating
    // them past the whole world (the old monolithic behaviour) must
    // not change a single byte of the normalized report.
    let default_chunks = paper_campaign().run_with_jobs(2);
    for chunk in [1usize, 1 << 20] {
        let resized = paper_campaign()
            .world_factory(standard_world_factory(Some(chunk)))
            .run_with_jobs(2);
        assert_eq!(
            default_chunks.normalized().to_json().unwrap(),
            resized.normalized().to_json().unwrap(),
            "chunk size {chunk} must produce a byte-identical report"
        );
    }
}

#[test]
fn paper_campaign_sharded_tlb_is_unobservable_across_worker_counts() {
    // The acceptance matrix for the sharded TLB: jobs=1 vs jobs=8,
    // each with the TLB on and off, all four byte-identical.
    let reference = paper_campaign().run_with_jobs(1).normalized().to_json().unwrap();
    for (jobs, tlb) in [(1, false), (8, true), (8, false)] {
        let run = paper_campaign().use_tlb(tlb).run_with_jobs(jobs);
        assert_eq!(
            reference,
            run.normalized().to_json().unwrap(),
            "jobs={jobs} tlb={tlb} must match the jobs=1 tlb=on report"
        );
    }
}

#[test]
fn paper_campaign_records_cell_metrics() {
    let report = paper_campaign().run();
    assert_eq!(report.cells().len(), 24);
    assert!(report.total_hypercalls() > 0);
    assert!(report.total_wall_time_us() > 0);
    // The COW/TLB stats ride along on every cell and aggregate into the
    // throughput record.
    assert!(report.cells().iter().all(|c| c.snapshot.frames_total > 0));
    let tlb_lookups: u64 = report.cells().iter().map(|c| c.tlb.hits + c.tlb.misses).sum();
    assert!(tlb_lookups > 0, "the campaign hot path must consult the TLB");
}

#[test]
fn randomized_sweep_is_worker_count_independent() {
    let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 16, 7);
    let factory = || Ok(attack_world(XenVersion::V4_8, true));
    let (s1, o1) = campaign.run_with_jobs(factory, 1).unwrap();
    let (s4, o4) = campaign.run_with_jobs(factory, 8).unwrap();
    assert_eq!(s1, s4);
    assert_eq!(o1, o4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random grids, seeds, and worker counts, running the campaign
    /// as n independent shards (n ∈ {2, 3, 5}) and merging the shard
    /// reports reproduces the unsharded streamed report byte-for-byte.
    #[test]
    fn sharded_streaming_reports_merge_to_the_unsharded_report(
        seed in any::<u64>(),
        trials in 1u64..40,
        jobs in 1usize..5,
        shard_jobs in 1usize..5,
    ) {
        let unsharded = synthetic_campaign(seed, trials)
            .run_streaming_with_jobs(jobs)
            .report
            .normalized()
            .to_json()
            .unwrap();
        for count in [2u64, 3, 5] {
            let merged = (0..count)
                .map(|index| {
                    synthetic_campaign(seed, trials)
                        .shard(Shard::new(index, count).unwrap())
                        .run_streaming_with_jobs(shard_jobs)
                        .report
                })
                .fold(StreamReport::default(), |acc, part| acc.merge(&part));
            prop_assert_eq!(
                &unsharded,
                &merged.normalized().to_json().unwrap(),
                "{} shards at jobs={} must merge to the jobs={} report",
                count, shard_jobs, jobs
            );
        }
    }
}
