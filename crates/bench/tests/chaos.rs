//! Deterministic chaos-harness tests: a fixed `--chaos-seed` must
//! produce the *same* faults at any worker count, every injected fault
//! must surface as a typed degradation (never a hung run or a silent
//! mis-count), and chaos must compose with checkpoint/resume — torn
//! journal writes included.

use bench::synthetic_campaign;
use hvsim_obs::{flight, MetricsRegistry};
use intrusion_core::{Campaign, ChaosConfig, ChaosPolicy, StreamReport};
use std::collections::BTreeMap;
use std::time::Duration;

const SEED: u64 = 0xD5_2023;
// 3 versions × 1,000 trials = 3,000 cells: enough for every fault class
// to fire many times at the standard permille rates.
const TRIALS: u64 = 1_000;
const CHAOS_SEED: u64 = 7;
const DEADLINE: Duration = Duration::from_millis(100);

fn chaotic() -> Campaign {
    synthetic_campaign(SEED, TRIALS)
        .chaos(ChaosConfig::standard(CHAOS_SEED))
        .retries(1)
        .cell_deadline(DEADLINE)
        .queue_depth(16)
}

#[test]
fn chaos_is_schedule_independent_and_every_fault_is_typed() {
    let jobs1 = chaotic().run_streaming_with_jobs(1);
    let jobs8 = chaotic().run_streaming_with_jobs(8);
    assert_eq!(
        jobs1.report.normalized().to_json().unwrap(),
        jobs8.report.normalized().to_json().unwrap(),
        "a fixed chaos seed must produce byte-identical reports at jobs=1 and jobs=8"
    );

    // Replay the policy's slot-keyed decisions to predict exactly which
    // cells degrade and how. Precedence mirrors the engine: a boot that
    // exhausts its retry budget never reaches the scenario body, and a
    // panic pre-empts a slowdown.
    let policy = ChaosPolicy::new(ChaosConfig::standard(CHAOS_SEED));
    let (mut boot_failed, mut crashed, mut timed_out) = (0u64, 0u64, 0u64);
    for slot in 0..jobs1.report.cells {
        let faults = policy.transient_boot_faults(slot, 1);
        if faults > 1 {
            boot_failed += 1;
        } else if policy.worker_panic(slot) {
            crashed += 1;
        } else if policy.slowdown(slot, Some(DEADLINE)).is_some() {
            timed_out += 1;
        }
    }
    let report = &jobs1.report;
    assert_eq!(report.cells, 3_000);
    assert!(boot_failed > 0 && crashed > 0 && timed_out > 0, "every fault class fired");
    assert_eq!(report.boot_failed, boot_failed, "exhausted chaos boots are typed BootFailed");
    assert_eq!(report.crashed, crashed, "injected panics are typed Crashed");
    assert_eq!(report.timed_out, timed_out, "injected slowdowns are typed TimedOut");
    assert_eq!(report.degraded, boot_failed + crashed + timed_out, "no untyped degradation");
    assert!(report.retries > 0, "recovered chaos boots consumed real retry attempts");
    assert!(report.is_degraded(), "a chaotic run reports degradation (CLI exit 2)");
    for (id, slot) in &report.degraded_slots {
        assert!(
            slot.error.is_some()
                || matches!(slot.outcome, intrusion_core::CellOutcome::TimedOut { .. }),
            "degraded slot {id} carries a typed error or outcome: {slot:?}"
        );
        // Every degraded cell carries its flight-recorder forensic tail.
        assert!(!slot.flight.is_empty(), "degraded slot {id} has no forensic tail");
    }

    // The tails themselves are schedule-independent: normalized
    // (wall-clock zeroed) flight dumps are byte-identical per slot at
    // jobs=1 and jobs=8.
    let dumps = |report: &StreamReport| -> BTreeMap<u64, String> {
        report
            .degraded_slots
            .iter()
            .map(|(&slot, d)| (slot, flight::normalized_dump_jsonl(&d.flight)))
            .collect()
    };
    assert_eq!(
        dumps(&jobs1.report),
        dumps(&jobs8.report),
        "normalized flight dumps must be byte-identical at jobs=1 and jobs=8"
    );
}

#[test]
fn chaos_counters_are_published_even_when_no_fault_fires() {
    // Pick a seed whose standard policy draws no fault on any of the
    // six slots of this small grid: "chaos quiet" must still publish
    // every `campaign.chaos.*` counter as an explicit zero, so a
    // dashboard can tell it apart from "chaos off" (counters absent).
    let cells = 6u64;
    let quiet_seed = (0..10_000u64)
        .find(|&seed| {
            let probe = ChaosPolicy::new(ChaosConfig::standard(seed));
            (0..cells).all(|slot| {
                probe.transient_boot_faults(slot, 1) == 0
                    && !probe.worker_panic(slot)
                    && probe.slowdown(slot, Some(DEADLINE)).is_none()
                    && probe.queue_stall(slot).is_none()
            })
        })
        .expect("some seed in 0..10_000 is quiet over six slots");
    let registry = MetricsRegistry::new();
    let outcome = synthetic_campaign(SEED, 2)
        .chaos(ChaosConfig::standard(quiet_seed))
        .cell_deadline(DEADLINE)
        .metrics(registry.clone())
        .run_streaming_with_jobs(2);
    assert_eq!(outcome.report.cells, cells);
    assert_eq!(outcome.report.degraded, 0, "seed {quiet_seed} fired a fault after all");
    let snapshot = registry.snapshot();
    for name in [
        "campaign.chaos.worker_panics",
        "campaign.chaos.transient_boots",
        "campaign.chaos.slowdowns",
        "campaign.chaos.queue_stalls",
        "campaign.chaos.torn_writes",
    ] {
        let counter = snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} must be published on a quiet chaos run"));
        assert_eq!(counter.value, 0, "{name} must be an explicit zero");
    }
}

#[test]
fn chaos_composes_with_checkpoint_resume_despite_torn_writes() {
    let journal =
        std::env::temp_dir().join(format!("hvsim-chaos-{}.journal", std::process::id()));
    let full = chaotic().jobs(4).run_streaming_checkpointed(&journal).unwrap();
    // The standard config tears ~10% of journal records mid-write; the
    // run itself must still complete and report every cell.
    assert_eq!(full.report.cells, 3_000);
    let uninterrupted = full.report.normalized().to_json().unwrap();

    // Truncate (hard kill) and resume with the same chaos seed: the
    // loader skips torn records, the engine re-runs uncovered slots with
    // the same slot-keyed faults, and the report comes back identical.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() / 2]).unwrap();
    let resumed = chaotic().jobs(4).resume(&journal).unwrap();
    assert_eq!(
        resumed.report.normalized().to_json().unwrap(),
        uninterrupted,
        "chaos + kill + resume must reproduce the uninterrupted report"
    );
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(format!("{}.slots", journal.display())).ok();
}
