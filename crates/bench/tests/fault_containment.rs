//! End-to-end acceptance test for the fault-contained campaign engine:
//! a single campaign mixing a panicking use case, a deadline-overrunning
//! use case, and a transiently-failing boot must run to completion,
//! report each failure through the typed taxonomy, and stay
//! schedule-independent.

use guestos::{BootError, World};
use hvsim::XenVersion;
use hvsim_mem::DomainId;
use intrusion_core::campaign::standard_world;
use intrusion_core::{
    AbusiveFunctionality, Campaign, CampaignError, CampaignThroughput, CellOutcome, Injector,
    IntrusionModel, Mode, ScenarioOutcome, UseCase,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn model() -> IntrusionModel {
    IntrusionModel::guest_hypercall_memory(
        "IM-fault-containment",
        AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
        &[],
    )
}

/// A well-behaved use case: induces nothing, violates nothing.
struct QuietCase;

impl UseCase for QuietCase {
    fn name(&self) -> &'static str {
        "quiet"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        _world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        ScenarioOutcome::default()
    }
}

/// Panics (only) when injecting on Xen 4.8 — a buggy harness component.
struct PanickyCase;

impl UseCase for PanickyCase {
    fn name(&self) -> &'static str {
        "panicky"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        if world.hv().version() == XenVersion::V4_8 {
            panic!("injector blew up");
        }
        ScenarioOutcome::default()
    }
}

/// Overruns the cell deadline (only) when exploiting Xen 4.13.
struct SleepyCase;

impl UseCase for SleepyCase {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        if world.hv().version() == XenVersion::V4_13 {
            std::thread::sleep(Duration::from_millis(400));
        }
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        _world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        ScenarioOutcome::default()
    }
}

/// Builds the messy campaign: boots of `(4.6, injector)` fail
/// transiently twice before succeeding, one cell panics, one overruns
/// its deadline. Fresh failure counters per call so repeated runs see
/// identical fault schedules.
fn messy_campaign() -> Campaign {
    let boot_attempts: Mutex<BTreeMap<(XenVersion, bool), u32>> = Mutex::new(BTreeMap::new());
    Campaign::new()
        .with_use_case(Box::new(QuietCase))
        .with_use_case(Box::new(PanickyCase))
        .with_use_case(Box::new(SleepyCase))
        .world_factory(Arc::new(move |version, injector| {
            if version == XenVersion::V4_6 && injector {
                let mut attempts = boot_attempts.lock().unwrap();
                let n = attempts.entry((version, injector)).or_insert(0);
                *n += 1;
                if *n <= 2 {
                    return Err(BootError::transient("create dom0", "out of memory"));
                }
            }
            standard_world(version, injector)
        }))
        .retries(2)
        .cell_deadline(Duration::from_millis(100))
}

#[test]
fn mixed_failure_campaign_completes_with_typed_outcomes() {
    let report = messy_campaign().run_with_jobs(2);

    // Every cell of the 3 × 3 × 2 matrix is reported, none is lost.
    assert_eq!(report.cells().len(), 18);

    // The panicking cell is contained as a typed crash.
    let crashed = report.cell("panicky", XenVersion::V4_8, Mode::Injection).unwrap();
    match &crashed.outcome {
        CellOutcome::Crashed { payload, cell } => {
            assert_eq!(payload, "injector blew up");
            assert_eq!(cell.use_case, "panicky");
            assert_eq!(cell.version, XenVersion::V4_8);
            assert_eq!(cell.mode, Mode::Injection);
        }
        other => panic!("expected Crashed, got {other:?}"),
    }
    assert!(crashed.degraded());
    assert!(matches!(crashed.error, Some(CampaignError::HarnessCrash { .. })));

    // The overrunning cell is reported against its deadline.
    let slow = report.cell("sleepy", XenVersion::V4_13, Mode::Exploit).unwrap();
    assert_eq!(slow.outcome, CellOutcome::TimedOut { deadline_us: 100_000 });
    assert!(slow.degraded());

    // The transiently-failing boots recovered: every (4.6, injection)
    // cell completed despite two boot failures.
    for cell in report.cells().iter().filter(|c| {
        c.version == XenVersion::V4_6 && c.mode == Mode::Injection
    }) {
        assert_eq!(cell.outcome, CellOutcome::Completed, "{} did not recover", cell.use_case);
        assert!(!cell.degraded(), "{} degraded", cell.use_case);
    }

    // Exactly the two injected harness faults degraded the run; this is
    // what maps to CLI exit code 2.
    assert!(report.is_degraded());
    assert_eq!(report.degraded_cells().count(), 2);
    assert_eq!(report.completed_cells().count(), 16);

    // Throughput accounting separates the populations.
    let throughput = CampaignThroughput::new(&report, 2, 1_000_000);
    assert_eq!(throughput.completed_cells, 16);
    assert_eq!(throughput.degraded_cells, 2);
    assert_eq!(throughput.cells, 18);
}

#[test]
fn mixed_failure_campaign_is_schedule_independent() {
    let serial = messy_campaign().run_with_jobs(1).normalized().to_json().unwrap();
    let parallel = messy_campaign().run_with_jobs(8).normalized().to_json().unwrap();
    assert_eq!(
        serial, parallel,
        "contained failures must be reported identically at jobs=1 and jobs=8"
    );
}
