//! End-to-end acceptance test for the observability layer: a campaign
//! mixing a panicking use case, a deadline-overrunning use case, and a
//! transiently-failing boot must produce a trace and metrics snapshot
//! that are (after normalization) byte-identical at any worker count,
//! schema-valid line by line, and summarizable — and degraded cells must
//! carry per-phase timings so the failure is attributable.

use guestos::{BootError, World};
use hvsim::XenVersion;
use hvsim_mem::DomainId;
use hvsim_obs::{
    flight, normalized_jsonl, parse_jsonl, to_jsonl, MetricsRegistry, TraceSummary, Tracer,
};
use intrusion_core::campaign::standard_world;
use intrusion_core::{
    AbusiveFunctionality, Campaign, CampaignReport, CampaignThroughput, CellOutcome, Injector,
    IntrusionModel, Mode, ScenarioOutcome, UseCase,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn model() -> IntrusionModel {
    IntrusionModel::guest_hypercall_memory(
        "IM-obs-determinism",
        AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
        &[],
    )
}

/// A well-behaved use case: induces nothing, violates nothing.
struct QuietCase;

impl UseCase for QuietCase {
    fn name(&self) -> &'static str {
        "quiet"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        _world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        ScenarioOutcome::default()
    }
}

/// Panics (only) when injecting on Xen 4.8.
struct PanickyCase;

impl UseCase for PanickyCase {
    fn name(&self) -> &'static str {
        "panicky"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        if world.hv().version() == XenVersion::V4_8 {
            panic!("injector blew up");
        }
        ScenarioOutcome::default()
    }
}

/// Overruns the cell deadline (only) when exploiting Xen 4.13.
struct SleepyCase;

impl UseCase for SleepyCase {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        model()
    }

    fn run_exploit(&self, world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
        if world.hv().version() == XenVersion::V4_13 {
            std::thread::sleep(Duration::from_millis(400));
        }
        ScenarioOutcome::failed("-ENOSYS (not attempted)")
    }

    fn run_injection(
        &self,
        _world: &mut World,
        _attacker: DomainId,
        _injector: &dyn Injector,
    ) -> ScenarioOutcome {
        ScenarioOutcome::default()
    }
}

/// A quiet run — no TLB, one do-nothing cell — must still publish the
/// perf counters added for the chunked-COW/sharded-TLB work as
/// explicit zeros (the `campaign.chaos.*` convention), so a dashboard
/// can tell "nothing happened" from "counter missing".
#[test]
fn quiet_runs_publish_explicit_zero_perf_counters() {
    let registry = MetricsRegistry::new();
    let _report = Campaign::new()
        .with_use_case(Box::new(QuietCase))
        .modes(&[Mode::Injection])
        .use_tlb(false)
        .metrics(registry.clone())
        .run_with_jobs(1);
    let snapshot = registry.snapshot();
    let value = |name: &str| snapshot.counters.iter().find(|c| c.name == name).map(|c| c.value);
    assert_eq!(value("tlb.fill_conflicts"), Some(0), "explicit zero, not absent");
    assert_eq!(value("tlb.hits"), Some(0), "TLB off means zero hits, still published");
    assert!(value("mem.chunks_privatized").is_some(), "published on every run");
}

/// The messy campaign of `fault_containment.rs`: two transient boot
/// failures on `(4.6, injector)`, one panicking cell, one deadline
/// overrun. Fresh failure counters per call.
fn messy_campaign() -> Campaign {
    let boot_attempts: Mutex<BTreeMap<(XenVersion, bool), u32>> = Mutex::new(BTreeMap::new());
    Campaign::new()
        .with_use_case(Box::new(QuietCase))
        .with_use_case(Box::new(PanickyCase))
        .with_use_case(Box::new(SleepyCase))
        .world_factory(Arc::new(move |version, injector| {
            if version == XenVersion::V4_6 && injector {
                let mut attempts = boot_attempts.lock().unwrap();
                let n = attempts.entry((version, injector)).or_insert(0);
                *n += 1;
                if *n <= 2 {
                    return Err(BootError::transient("create dom0", "out of memory"));
                }
            }
            standard_world(version, injector)
        }))
        .retries(2)
        .cell_deadline(Duration::from_millis(100))
}

/// Runs the messy campaign with obs attached; returns (report, trace
/// JSONL, metrics snapshot JSON).
fn observed_run(jobs: usize) -> (CampaignReport, String, String) {
    let tracer = Tracer::enabled();
    let registry = MetricsRegistry::new();
    let report = messy_campaign()
        .tracer(tracer.clone())
        .metrics(registry.clone())
        .run_with_jobs(jobs);
    let jsonl = to_jsonl(&tracer.drain());
    let metrics = serde_json::to_string(&registry.snapshot().normalized()).unwrap();
    (report, jsonl, metrics)
}

#[test]
fn traces_and_metrics_are_schedule_independent() {
    let (serial_report, serial_jsonl, serial_metrics) = observed_run(1);
    let (parallel_report, parallel_jsonl, parallel_metrics) = observed_run(8);

    // The report stays schedule-independent with obs attached.
    assert_eq!(
        serial_report.normalized().to_json().unwrap(),
        parallel_report.normalized().to_json().unwrap(),
        "normalized reports must be byte-identical at jobs=1 and jobs=8"
    );

    // Every line of the raw trace is schema-valid.
    let serial_events = parse_jsonl(&serial_jsonl).expect("serial trace validates");
    let parallel_events = parse_jsonl(&parallel_jsonl).expect("parallel trace validates");
    assert!(!serial_events.is_empty());
    assert_eq!(serial_events.len(), parallel_events.len());

    // Normalized (wall-clock zeroed) traces are byte-identical: the
    // logical clock is positional, not scheduling-dependent.
    assert_eq!(
        normalized_jsonl(&serial_events),
        normalized_jsonl(&parallel_events),
        "normalized traces must be byte-identical at jobs=1 and jobs=8"
    );

    // So are the normalized metrics snapshots.
    assert_eq!(serial_metrics, parallel_metrics);
}

#[test]
fn degraded_cells_carry_phase_timings() {
    let report = messy_campaign().run_with_jobs(2);

    // The deadline overrun is attributable: the sleepy exploit burned
    // its time in the inject phase, and the recorded timing says so.
    let slow = report.cell("sleepy", XenVersion::V4_13, Mode::Exploit).unwrap();
    assert!(matches!(slow.outcome, CellOutcome::TimedOut { .. }));
    let inject_us = slow.phase_us.inject_us.expect("timed-out cell keeps inject timing");
    assert!(
        inject_us >= 300_000,
        "the 400 ms sleep must show up in the inject phase, got {inject_us} us"
    );
    assert!(slow.phase_us.boot_us.is_some());

    // The panicking cell records how far it got: boot and inject are
    // timed, the monitor phase was never entered.
    let crashed = report.cell("panicky", XenVersion::V4_8, Mode::Injection).unwrap();
    assert!(matches!(crashed.outcome, CellOutcome::Crashed { .. }));
    assert!(crashed.phase_us.boot_us.is_some());
    assert!(crashed.phase_us.inject_us.is_some(), "elapsed-until-panic is recorded");
    assert_eq!(crashed.phase_us.monitor_us, None, "monitor never ran");

    // The latency breakdown splits the populations.
    let throughput = CampaignThroughput::new(&report, 2, 1_000_000);
    assert_eq!(throughput.latency.inject.degraded.count, 2, "panicky + sleepy");
    // Sleepy ran to completion (late), so its monitor phase was timed;
    // panicky never reached the monitor.
    assert_eq!(throughput.latency.monitor.degraded.count, 1);
    assert_eq!(throughput.latency.boot.completed.count, 16);
    assert!(throughput.latency.inject.degraded.max_us >= 300_000);
}

#[test]
fn flight_dumps_are_schedule_independent() {
    let serial = messy_campaign().run_with_jobs(1);
    let parallel = messy_campaign().run_with_jobs(8);
    // Key dumps by cell identity (slots are equal across runs, but the
    // identity makes failures readable).
    let dumps = |report: &CampaignReport| -> Vec<(String, String)> {
        report
            .cells()
            .iter()
            .filter(|c| c.degraded())
            .map(|c| {
                (
                    format!("{}/{}/{}", c.use_case, c.version, c.mode),
                    flight::normalized_dump_jsonl(&c.flight),
                )
            })
            .collect()
    };
    let serial_dumps = dumps(&serial);
    assert!(!serial_dumps.is_empty(), "the messy campaign degrades cells");
    for (id, dump) in &serial_dumps {
        assert!(!dump.is_empty(), "degraded cell {id} has no forensic tail");
        // Dumps are themselves schema-valid trace JSONL, so every trace
        // tool (validate, summary) works on them.
        parse_jsonl(dump).unwrap_or_else(|e| panic!("dump for {id} is not trace JSONL: {e}"));
    }
    assert_eq!(
        serial_dumps,
        dumps(&parallel),
        "normalized flight dumps must be byte-identical at jobs=1 and jobs=8"
    );
}

#[test]
fn trace_summary_profiles_the_campaign() {
    let (_, jsonl, _) = observed_run(4);
    let events = parse_jsonl(&jsonl).unwrap();
    let summary = TraceSummary::compute(&events);
    let rendered = summary.render(5);
    assert!(rendered.contains("per-path self-time profile"), "{rendered}");
    assert!(rendered.contains("cell/inject"), "{rendered}");
    assert!(rendered.contains("cell/monitor"), "{rendered}");
    assert!(rendered.contains("slowest cells"), "{rendered}");
    // The deadline-overrunning cell dominates wall time.
    assert!(
        rendered.contains("sleepy / Xen 4.13 / exploit"),
        "the slowest cell is the sleeper:\n{rendered}"
    );
}
