//! Ablation benches for the design choices DESIGN.md calls out:
//! injector implementation (patched hypercall vs debug stub), the
//! exhaustive PV-invariant audit, and event-channel delivery.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hvsim::{EventChannelOp, XenVersion};
use intrusion_core::{ArbitraryAccessInjector, DebugStubInjector, ErroneousStateSpec, Injector};

/// Hypercall injector vs debug-stub injector for the same erroneous
/// state — the intrusiveness-vs-mechanism tradeoff of §IX-D, measured.
fn bench_injector_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/injector_impl");
    let spec = |world: &guestos::World| ErroneousStateSpec::OverwriteIdtGate {
        cpu: 0,
        vector: 99,
        value: world.hv().version() as u64 + 0x4141,
    };
    group.bench_function("arbitrary_access_hypercall", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_13, true),
            |(mut world, attacker)| {
                let s = spec(&world);
                ArbitraryAccessInjector.inject(&mut world, attacker, &s).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("debug_stub", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_13, false),
            |(mut world, attacker)| {
                let s = spec(&world);
                DebugStubInjector.inject(&mut world, attacker, &s).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The exhaustive PV-invariant audit: the price of the "detect latent
/// erroneous states" monitor.
fn bench_invariant_audit(c: &mut Criterion) {
    let (world, _) = attack_world(XenVersion::V4_8, true);
    c.bench_function("ablations/pv_invariant_audit", |b| {
        b.iter(|| world.hv().audit_pv_invariants())
    });
}

/// Event-channel send latency (bound path) and the spurious-port scan.
fn bench_event_channels(c: &mut Criterion) {
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    let dom0 = world.dom0();
    let rp = world
        .hv_mut()
        .hc_event_channel_op(dom0, EventChannelOp::AllocUnbound { remote: attacker })
        .unwrap() as u16;
    let lp = world
        .hv_mut()
        .hc_event_channel_op(
            attacker,
            EventChannelOp::BindInterdomain { remote: dom0, remote_port: rp },
        )
        .unwrap() as u16;
    c.bench_function("ablations/evtchn_send_bound", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_event_channel_op(attacker, EventChannelOp::Send { port: lp })
                .unwrap()
        })
    });
    c.bench_function("ablations/spurious_port_scan", |b| {
        b.iter(|| world.hv().spurious_pending_ports(dom0))
    });
}

criterion_group!(
    benches,
    bench_injector_implementations,
    bench_invariant_audit,
    bench_event_channels
);
criterion_main!(benches);
