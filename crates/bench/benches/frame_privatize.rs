//! First-write privatization cost under the chunked COW frame
//! directory: after a snapshot, touching one frame must copy one
//! *chunk* (default 128 frames), not the whole 4096-frame world. The
//! `monolithic_1_touch` baseline pins the pre-chunking behaviour by
//! forcing a single world-sized chunk; the acceptance floor for this
//! PR is a ≥5× win of the chunked path over it.

use criterion::{criterion_group, criterion_main, Criterion};
use hvsim_mem::{MachineMemory, Mfn, DEFAULT_CHUNK_FRAMES};
use std::hint::black_box;

const FRAMES: usize = 4096;

/// A fully materialized memory: every frame holds nonzero bytes, so a
/// privatization pays the real per-frame copy, not the `Zero` shortcut.
fn materialized(chunk_frames: usize) -> MachineMemory {
    let mut mem = MachineMemory::with_chunk_frames(FRAMES, chunk_frames);
    for f in 0..FRAMES {
        mem.write(Mfn::new(f as u64).base(), &[1u8]).expect("frame in range");
    }
    mem
}

fn bench_chunked_one_touch(c: &mut Criterion) {
    let base = materialized(DEFAULT_CHUNK_FRAMES);
    c.bench_function("frame_privatize/chunked_1_touch", |b| {
        b.iter(|| {
            let mut snap = base.clone();
            snap.write(Mfn::new(8).base(), black_box(&[0xAAu8; 64])).unwrap();
            black_box(snap)
        })
    });
}

fn bench_monolithic_one_touch(c: &mut Criterion) {
    // The pre-chunking baseline: one chunk spanning the whole world, so
    // the first write after a snapshot privatizes all 4096 frames.
    let base = materialized(FRAMES);
    c.bench_function("frame_privatize/monolithic_1_touch", |b| {
        b.iter(|| {
            let mut snap = base.clone();
            snap.write(Mfn::new(8).base(), black_box(&[0xAAu8; 64])).unwrap();
            black_box(snap)
        })
    });
}

fn bench_chunked_clone(c: &mut Criterion) {
    // The snapshot itself: a refcount sweep over the chunk directory
    // (32 Arcs at the default chunk size), untouched by the write path.
    let base = materialized(DEFAULT_CHUNK_FRAMES);
    c.bench_function("frame_privatize/chunked_clone", |b| {
        b.iter(|| black_box(base.clone()))
    });
}

fn bench_scatter_touch(c: &mut Criterion) {
    // Worst case for chunking: 8 writes scattered one per chunk region,
    // privatizing 8 chunks. Still bounded by 8 × chunk, far below the
    // monolithic world copy.
    let base = materialized(DEFAULT_CHUNK_FRAMES);
    let frames: Vec<Mfn> =
        (0..8).map(|i| Mfn::new((i * DEFAULT_CHUNK_FRAMES * 4 + 3) as u64)).collect();
    c.bench_function("frame_privatize/chunked_8_scattered", |b| {
        b.iter(|| {
            let mut snap = base.clone();
            for f in &frames {
                snap.write(f.base(), black_box(&[0x55u8; 64])).unwrap();
            }
            black_box(snap)
        })
    });
}

criterion_group!(
    benches,
    bench_chunked_one_touch,
    bench_monolithic_one_touch,
    bench_chunked_clone,
    bench_scatter_touch
);
criterion_main!(benches);
