//! Checkpoint-journal overhead on the streaming hot path: the same
//! synthetic grid with journaling off, at the default fold interval,
//! and at a pathologically small interval (a durable fsync'd fold every
//! 16 slots). The `table3_campaign` binary asserts the default-interval
//! cost stays under 10% and records it in `BENCH_campaign.json`; this
//! bench exists to localize regressions when that gate trips.

use bench::synthetic_campaign;
use criterion::{criterion_group, criterion_main, Criterion};

/// 3 versions × 400 trials = 1,200 cells per iteration.
const TRIALS: u64 = 400;
const SEED: u64 = 0xD5_2023;

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let journal = std::env::temp_dir().join(format!("hvsim-bench-{}.journal", std::process::id()));
    let mut group = c.benchmark_group("checkpoint_overhead/1200_cells");
    group.sample_size(10);
    group.bench_function("no_journal_jobs4", |b| {
        b.iter(|| synthetic_campaign(SEED, TRIALS).jobs(4).run_streaming())
    });
    group.bench_function("journal_default_interval_jobs4", |b| {
        b.iter(|| {
            synthetic_campaign(SEED, TRIALS)
                .jobs(4)
                .run_streaming_checkpointed(&journal)
                .expect("journal opens in temp dir")
        })
    });
    group.bench_function("journal_interval16_jobs4", |b| {
        b.iter(|| {
            synthetic_campaign(SEED, TRIALS)
                .jobs(4)
                .checkpoint_interval(16)
                .run_streaming_checkpointed(&journal)
                .expect("journal opens in temp dir")
        })
    });
    group.bench_function("journal_slots_sidecar_jobs4", |b| {
        b.iter(|| {
            synthetic_campaign(SEED, TRIALS)
                .jobs(4)
                .journal_slots(true)
                .run_streaming_checkpointed(&journal)
                .expect("journal opens in temp dir")
        })
    });
    group.finish();
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(format!("{}.slots", journal.display())).ok();
}

criterion_group!(benches, bench_checkpoint_overhead);
criterion_main!(benches);
