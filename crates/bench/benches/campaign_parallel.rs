//! The parallel-engine speedup story: the full Table-III campaign run
//! the way the paper did it (boot a fresh world per cell, one cell at a
//! time) against snapshot reuse and the multi-worker engine. All three
//! configurations produce byte-identical normalized reports — see the
//! determinism tests — so this measures pure overhead.

use bench::paper_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use intrusion_core::default_jobs;

fn bench_engine_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_parallel/full_table3");
    group.sample_size(10);
    group.bench_function("boot_per_cell_serial", |b| {
        b.iter(|| paper_campaign().reuse_snapshots(false).jobs(1).run())
    });
    group.bench_function("snapshot_reuse_serial", |b| {
        b.iter(|| paper_campaign().jobs(1).run())
    });
    group.bench_function(format!("snapshot_reuse_{}_workers", default_jobs()), |b| {
        b.iter(|| paper_campaign().run())
    });
    group.finish();
}

criterion_group!(benches, bench_engine_configurations);
criterion_main!(benches);
