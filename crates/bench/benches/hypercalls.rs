//! Hypercall latency, including the validation-cost ablation behind
//! XSA-182: the L4 fast path exists because full revalidation is
//! expensive; `l4_fastpath` vs `l4_full_validation` quantifies the gap
//! the vulnerable optimization was buying.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hvsim::{ExchangeArgs, MmuUpdate, PteFlags, XenVersion};
use hvsim_mem::{PageType, Pfn};
use hvsim_paging::PageTableEntry;
use std::hint::black_box;

const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

fn bench_console_io(c: &mut Criterion) {
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    c.bench_function("hypercalls/console_io", |b| {
        b.iter(|| world.hv_mut().hc_console_io(black_box(attacker), "ping").unwrap())
    });
}

fn bench_mmu_update_l1(c: &mut Criterion) {
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    let (hv, kernel) = world.hv_and_kernel_mut(attacker).unwrap();
    let (_, data_a, _) = kernel.alloc_heap_page(hv).unwrap();
    let (_, data_b, _) = kernel.alloc_heap_page(hv).unwrap();
    let l1 = kernel.tables().l1;
    let ptr = l1.base().offset(200 * 8).raw();
    let mut flip = false;
    c.bench_function("hypercalls/mmu_update_l1_remap", |b| {
        b.iter(|| {
            flip = !flip;
            let target = if flip { data_a } else { data_b };
            world
                .hv_mut()
                .hc_mmu_update(
                    attacker,
                    &[MmuUpdate::normal(ptr, PageTableEntry::new(target, LINK).raw())],
                )
                .unwrap()
        })
    });
}

fn bench_l4_fastpath_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercalls/l4_update");
    // Vulnerable fast path (4.6): flags-only change accepted blindly.
    {
        let (mut world, attacker) = attack_world(XenVersion::V4_6, false);
        let l4 = world.hv().domain(attacker).unwrap().cr3().unwrap();
        let ptr = l4.base().offset(42 * 8).raw();
        let ro = PageTableEntry::new(l4, LINK.difference(PteFlags::RW));
        world
            .hv_mut()
            .hc_mmu_update(attacker, &[MmuUpdate::normal(ptr, ro.raw())])
            .unwrap();
        let mut accessed = false;
        group.bench_function("fastpath_flags_only_4.6", |b| {
            b.iter(|| {
                accessed = !accessed;
                let e = if accessed { ro.with_flags(PteFlags::ACCESSED) } else { ro };
                world
                    .hv_mut()
                    .hc_mmu_update(attacker, &[MmuUpdate::normal(ptr, e.raw())])
                    .unwrap()
            })
        });
    }
    // Full validation (4.13): a fresh L4 link each time (promote L3 type).
    {
        let (mut world, attacker) = attack_world(XenVersion::V4_13, false);
        let (hv, kernel) = world.hv_and_kernel_mut(attacker).unwrap();
        let (_, l3_frame, _) = kernel.alloc_heap_page(hv).unwrap();
        let _ = l3_frame;
        let l4 = kernel.tables().l4;
        let l3 = kernel.tables().l3;
        let ptr = l4.base().offset(43 * 8).raw();
        let entry = PageTableEntry::new(l3, LINK);
        group.bench_function("full_validation_4.13", |b| {
            b.iter(|| {
                world
                    .hv_mut()
                    .hc_mmu_update(attacker, &[MmuUpdate::normal(ptr, entry.raw())])
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_memory_exchange(c: &mut Criterion) {
    c.bench_function("hypercalls/memory_exchange_legit", |b| {
        b.iter_batched(
            || {
                let (world, attacker) = attack_world(XenVersion::V4_8, false);
                let out = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
                (world, attacker, out)
            },
            |(mut world, attacker, out)| {
                world
                    .hv_mut()
                    .hc_memory_exchange(attacker, &ExchangeArgs::new(vec![10], out))
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_domain_frame_alloc(c: &mut Criterion) {
    c.bench_function("hypercalls/alloc_domain_frame", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_8, false),
            |(mut world, attacker)| {
                for _ in 0..16 {
                    world
                        .hv_mut()
                        .alloc_domain_frame(attacker, PageType::Writable)
                        .unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_console_io,
    bench_mmu_update_l1,
    bench_l4_fastpath_vs_full,
    bench_memory_exchange,
    bench_domain_frame_alloc
);
criterion_main!(benches);
