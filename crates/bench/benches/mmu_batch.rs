//! Batched `mmu_update` validation: Xen's real hypercall takes an
//! array of updates, and the batch path must beat a loop of singleton
//! hypercalls — same per-entry validation and audit events, but one
//! page-table-generation bump (one TLB shoot-down equivalent) per
//! batch instead of one per entry.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, Criterion};
use hvsim::{MmuUpdate, PteFlags, XenVersion};
use hvsim_paging::PageTableEntry;
use std::hint::black_box;

const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);
const BATCH: u64 = 64;

/// A world plus 64 valid L1 updates mapping spare slots onto a heap
/// frame — the same work for the batch and the singleton loop.
fn setup() -> (guestos::World, hvsim_mem::DomainId, Vec<MmuUpdate>) {
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    let (hv, kernel) = world.hv_and_kernel_mut(attacker).unwrap();
    let (_, data, _) = kernel.alloc_heap_page(hv).unwrap();
    let l1 = kernel.tables().l1;
    let updates: Vec<MmuUpdate> = (300..300 + BATCH)
        .map(|i| {
            MmuUpdate::normal(
                l1.base().offset(i * 8).raw(),
                PageTableEntry::new(data, LINK).raw(),
            )
        })
        .collect();
    (world, attacker, updates)
}

fn bench_batch(c: &mut Criterion) {
    let (mut world, attacker, updates) = setup();
    c.bench_function("mmu_batch/batch64", |b| {
        b.iter(|| {
            black_box(world.hv_mut().hc_mmu_update(attacker, black_box(&updates)).unwrap())
        })
    });
}

fn bench_singleton_loop(c: &mut Criterion) {
    let (mut world, attacker, updates) = setup();
    c.bench_function("mmu_batch/singleton64", |b| {
        b.iter(|| {
            let mut done = 0u64;
            for u in &updates {
                done += world
                    .hv_mut()
                    .hc_mmu_update(attacker, black_box(std::slice::from_ref(u)))
                    .unwrap();
            }
            black_box(done)
        })
    });
}

criterion_group!(benches, bench_batch, bench_singleton_loop);
criterion_main!(benches);
