//! Streaming-pipeline throughput: the classic collect-everything engine
//! against the bounded-memory streaming runner on a synthetic grid, plus
//! the effect of queue depth on the streamed hot path. Reports are
//! byte-identical across engines (see the streaming tests), so this
//! measures pure pipeline overhead — `cells_per_sec` and
//! `peak_resident_cells` for the same grid land in `BENCH_campaign.json`
//! via `table3_campaign`.

use bench::synthetic_campaign;
use criterion::{criterion_group, criterion_main, Criterion};

/// 3 versions × 400 trials = 1,200 cells per iteration — big enough to
/// amortize base-world boots, small enough for criterion's sample count.
const TRIALS: u64 = 400;
const SEED: u64 = 0xD5_2023;

fn bench_stream_vs_classic(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_stream/1200_cells");
    group.sample_size(10);
    group.bench_function("classic_collect_jobs4", |b| {
        b.iter(|| synthetic_campaign(SEED, TRIALS).run_with_jobs(4))
    });
    group.bench_function("streaming_jobs4", |b| {
        b.iter(|| synthetic_campaign(SEED, TRIALS).run_streaming_with_jobs(4))
    });
    group.bench_function("streaming_jobs1", |b| {
        b.iter(|| synthetic_campaign(SEED, TRIALS).run_streaming_with_jobs(1))
    });
    group.finish();
}

fn bench_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_stream/queue_depth");
    group.sample_size(10);
    for depth in [1usize, 8, 64] {
        group.bench_function(format!("depth_{depth}_jobs4"), |b| {
            b.iter(|| {
                synthetic_campaign(SEED, TRIALS).queue_depth(depth).run_streaming_with_jobs(4)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_vs_classic, bench_queue_depth);
criterion_main!(benches);
