//! Software page-walk throughput: 4 KiB vs superpage translations,
//! classic vs hardened walk policy, and the audit primitive.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, Criterion};
use hvsim::XenVersion;
use hvsim_mem::{Pfn, VirtAddr};
use hvsim_paging::{pte_slot, walk, WalkPolicy};
use std::hint::black_box;

fn bench_walk_4k(c: &mut Criterion) {
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    let policy = WalkPolicy::default();
    c.bench_function("page_walk/4k_translation", |b| {
        b.iter(|| walk(world.hv().mem(), cr3, black_box(va), &policy).unwrap())
    });
}

fn bench_walk_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_walk/policy");
    for (name, hardened) in [("classic", false), ("hardened", true)] {
        let (world, attacker) = attack_world(
            if hardened { XenVersion::V4_13 } else { XenVersion::V4_8 },
            false,
        );
        let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
        let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
        let policy = world.hv().walk_policy();
        group.bench_function(name, |b| {
            b.iter(|| walk(world.hv().mem(), cr3, black_box(va), &policy).unwrap())
        });
    }
    group.finish();
}

fn bench_walk_2m_superpage(c: &mut Criterion) {
    // Build the XSA-148 superpage window on 4.6 and translate through it.
    let (mut world, attacker) = attack_world(XenVersion::V4_6, false);
    xsa_exploits::primitives::map_superpage_window(
        &mut world,
        attacker,
        9,
        hvsim_mem::Mfn::new(0),
    )
    .unwrap();
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let va = xsa_exploits::primitives::l2_window_va(9).offset(0x1234);
    let policy = WalkPolicy::default();
    c.bench_function("page_walk/2m_superpage_translation", |b| {
        b.iter(|| walk(world.hv().mem(), cr3, black_box(va), &policy).unwrap())
    });
}

fn bench_pte_slot_audit(c: &mut Criterion) {
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    c.bench_function("page_walk/pte_slot_audit", |b| {
        b.iter(|| pte_slot(world.hv().mem(), cr3, black_box(va), 1).unwrap())
    });
}

fn bench_faulting_walk(c: &mut Criterion) {
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let policy = WalkPolicy::default();
    c.bench_function("page_walk/not_present_fault", |b| {
        b.iter(|| {
            walk(
                world.hv().mem(),
                cr3,
                black_box(VirtAddr::new(0x7f00_0000_0000)),
                &policy,
            )
            .unwrap_err()
        })
    });
}

criterion_group!(
    benches,
    bench_walk_4k,
    bench_walk_policies,
    bench_walk_2m_superpage,
    bench_pte_slot_audit,
    bench_faulting_walk
);
criterion_main!(benches);
