//! Campaign-level wall-clock costs: world boot, one full Table-III
//! campaign, and per-version single-cell costs.

use bench::{attack_world, run_paper_campaign};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hvsim::XenVersion;
use intrusion_core::{Campaign, Mode};
use xsa_exploits::Xsa182Test;

fn bench_world_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/world_boot");
    for version in XenVersion::ALL {
        group.bench_function(format!("xen_{version}"), |b| {
            b.iter(|| attack_world(version, true))
        });
    }
    group.finish();
}

fn bench_single_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/single_cell_xsa182");
    group.sample_size(20);
    for version in XenVersion::ALL {
        group.bench_function(format!("injection_xen_{version}"), |b| {
            b.iter_batched(
                || {
                    Campaign::new()
                        .with_use_case(Box::new(Xsa182Test))
                        .versions(&[version])
                        .modes(&[Mode::Injection])
                },
                |campaign| campaign.run(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_full_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/full_table3");
    group.sample_size(10);
    group.bench_function("24_cells", |b| b.iter(run_paper_campaign));
    group.finish();
}

criterion_group!(benches, bench_world_boot, bench_single_cell, bench_full_campaign);
criterion_main!(benches);
