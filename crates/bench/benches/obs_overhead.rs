//! Observability overhead: the full Table-III campaign with tracing and
//! metrics disabled (the default), with a disabled-but-attached tracer,
//! and with both fully enabled. The disabled path must be a no-op — the
//! tracer holds no sink and every attribute closure goes uncalled — so
//! the first two configurations should be statistically identical; the
//! third bounds what `--trace-out` costs.

use bench::paper_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use hvsim_obs::{MetricsRegistry, Tracer};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/full_table3");
    group.sample_size(10);
    group.bench_function("no_obs", |b| b.iter(|| paper_campaign().run()));
    group.bench_function("tracer_disabled", |b| {
        b.iter(|| paper_campaign().tracer(Tracer::disabled()).run())
    });
    group.bench_function("tracer_and_metrics_enabled", |b| {
        b.iter(|| {
            let tracer = Tracer::enabled();
            let report = paper_campaign()
                .tracer(tracer.clone())
                .metrics(MetricsRegistry::new())
                .run();
            // Drain inside the measurement: producing the event stream
            // is part of what "enabled" costs.
            (report, tracer.drain().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
