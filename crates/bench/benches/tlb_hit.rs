//! Software-TLB hit path: repeated translations of the same page must
//! be served from the per-CR3 TLB instead of re-walking four levels of
//! page tables. The acceptance floor for this PR is a ≥5× win of
//! repeated same-page translation (`SharedTlb::phys_of`, whose hit path
//! is a lock-free seqlocked front cache) over an uncached `walk` of the
//! same VA. `debug_stub_resolve` measures the same hit plus the
//! hypervisor-layer pre-work (domain lookup, region classification).

use bench::attack_world;
use criterion::{criterion_group, criterion_main, Criterion};
use hvsim::XenVersion;
use hvsim_mem::Pfn;
use hvsim_paging::{walk, SharedTlb};
use std::hint::black_box;

fn bench_phys_of_hit(c: &mut Criterion) {
    // The headline pair: repeated same-page translation through the TLB
    // vs the uncached walk it replaces, both at the paging layer.
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    let policy = world.hv().walk_policy();
    let tlb = SharedTlb::new(true);
    tlb.phys_of(world.hv().mem(), cr3, va, &policy).expect("va resolves"); // warm
    c.bench_function("tlb_hit/phys_of_cached", |b| {
        b.iter(|| tlb.phys_of(world.hv().mem(), cr3, black_box(va), &policy).unwrap())
    });
}

fn bench_cached_phys_resolve(c: &mut Criterion) {
    // The allocation-free fast path the injector's debug stub uses.
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    world.hv().debug_stub_resolve(attacker, va).expect("va resolves"); // warm the TLB
    c.bench_function("tlb_hit/debug_stub_resolve_cached", |b| {
        b.iter(|| world.hv().debug_stub_resolve(attacker, black_box(va)).unwrap())
    });
}

fn bench_cached_guest_translate(c: &mut Criterion) {
    // The full-translation path: a hit still reconstructs the recorded
    // walk steps, so this is slower than phys_of but skips the table
    // reads.
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    world.hv().guest_translate(attacker, va).expect("va translates"); // warm the TLB
    c.bench_function("tlb_hit/guest_translate_cached", |b| {
        b.iter(|| world.hv().guest_translate(attacker, black_box(va)).unwrap())
    });
}

fn bench_raw_walk(c: &mut Criterion) {
    // The uncached baseline the TLB is measured against.
    let (world, attacker) = attack_world(XenVersion::V4_8, false);
    let cr3 = world.hv().domain(attacker).unwrap().cr3().unwrap();
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    let policy = world.hv().walk_policy();
    c.bench_function("tlb_hit/raw_walk", |b| {
        b.iter(|| walk(world.hv().mem(), cr3, black_box(va), &policy).unwrap())
    });
}

fn bench_tlb_disabled_translate(c: &mut Criterion) {
    // The `--no-tlb` escape hatch: guest_translate falling through to a
    // full walk every time.
    let (mut world, attacker) = attack_world(XenVersion::V4_8, false);
    world.set_tlb_enabled(false);
    let va = world.kernel(attacker).unwrap().va_of_pfn(Pfn::new(8));
    c.bench_function("tlb_hit/guest_translate_no_tlb", |b| {
        b.iter(|| world.hv().guest_translate(attacker, black_box(va)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_phys_of_hit,
    bench_cached_phys_resolve,
    bench_cached_guest_translate,
    bench_raw_walk,
    bench_tlb_disabled_translate
);
criterion_main!(benches);
