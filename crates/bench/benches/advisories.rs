//! Dataset classification throughput (Table I machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xsa_exploits::advisories;

fn bench_classify(c: &mut Criterion) {
    c.bench_function("advisories/classify_100", |b| {
        b.iter(|| black_box(advisories::classify()))
    });
    c.bench_function("advisories/counts", |b| {
        b.iter(|| black_box(advisories::counts()))
    });
    c.bench_function("advisories/render_table1", |b| {
        b.iter(|| black_box(advisories::render_table1()))
    });
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
