//! Injection-path benchmarks, including the paper's capability (i)
//! quantified: *"it is easier to induce a representative erroneous state
//! than effectively attack the system"* — `state_via_exploit` vs
//! `state_via_injection` measure the full cost of reaching the same
//! erroneous state both ways.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hvsim::{AccessMode, XenVersion};
use intrusion_core::{ArbitraryAccessInjector, ErroneousStateSpec, UseCase};
use xsa_exploits::{Xsa148Priv, Xsa212Crash};
use std::hint::black_box;

fn bench_arbitrary_access_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection/arbitrary_access");
    let (mut world, attacker) = attack_world(XenVersion::V4_13, true);
    let phys = world
        .hv()
        .domain(attacker)
        .unwrap()
        .p2m(hvsim_mem::Pfn::new(8))
        .unwrap()
        .base()
        .raw();
    let linear = world.hv().sidt(0).raw();
    let mut buf = vec![0u8; 8];
    group.bench_function("phys_read_8B", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_arbitrary_access(attacker, black_box(phys), &mut buf, AccessMode::PhysRead)
                .unwrap()
        })
    });
    group.bench_function("phys_write_8B", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_arbitrary_access(attacker, black_box(phys), &mut buf, AccessMode::PhysWrite)
                .unwrap()
        })
    });
    group.bench_function("linear_read_8B", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_arbitrary_access(attacker, black_box(linear), &mut buf, AccessMode::LinearRead)
                .unwrap()
        })
    });
    let guest_va = world.kernel(attacker).unwrap().va_of_pfn(hvsim_mem::Pfn::new(8)).raw();
    group.bench_function("linear_read_guest_half_8B", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_arbitrary_access(attacker, black_box(guest_va), &mut buf, AccessMode::LinearRead)
                .unwrap()
        })
    });
    let mut page = vec![0u8; 4096];
    group.bench_function("phys_write_4KiB", |b| {
        b.iter(|| {
            world
                .hv_mut()
                .hc_arbitrary_access(attacker, black_box(phys), &mut page, AccessMode::PhysWrite)
                .unwrap()
        })
    });
    group.finish();
}

/// The paper's core claim, measured: cost of reaching the XSA-212-crash
/// erroneous state via the real exploit chain vs via one injector call.
fn bench_exploit_vs_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection/state_cost_xsa212_crash");
    group.bench_function("state_via_exploit_4.6", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_6, false),
            |(mut world, attacker)| {
                let outcome = Xsa212Crash.run_exploit(&mut world, attacker);
                assert!(outcome.erroneous_state);
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("state_via_injection_4.6", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_6, true),
            |(mut world, attacker)| {
                let outcome =
                    Xsa212Crash.run_injection(&mut world, attacker, &ArbitraryAccessInjector);
                assert!(outcome.erroneous_state);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Same comparison for the heaviest use case (XSA-148's full physical
/// memory scan happens on both paths; the delta is the window machinery
/// vs raw injector reads).
fn bench_exploit_vs_injection_xsa148(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection/state_cost_xsa148_priv");
    group.sample_size(10);
    group.bench_function("state_via_exploit_4.6", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_6, false),
            |(mut world, attacker)| {
                let outcome = Xsa148Priv.run_exploit(&mut world, attacker);
                assert!(outcome.erroneous_state);
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("state_via_injection_4.6", |b| {
        b.iter_batched(
            || attack_world(XenVersion::V4_6, true),
            |(mut world, attacker)| {
                let outcome =
                    Xsa148Priv.run_injection(&mut world, attacker, &ArbitraryAccessInjector);
                assert!(outcome.erroneous_state);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_spec_lower_and_audit(c: &mut Criterion) {
    let (world, _) = attack_world(XenVersion::V4_13, true);
    let spec = ErroneousStateSpec::OverwriteIdtGate {
        cpu: 0,
        vector: 14,
        value: 0x41,
    };
    c.bench_function("injection/spec_lower", |b| {
        b.iter(|| black_box(&spec).lower(&world))
    });
    c.bench_function("injection/spec_audit", |b| {
        b.iter(|| black_box(&spec).audit(&world))
    });
}

criterion_group!(
    benches,
    bench_arbitrary_access_modes,
    bench_exploit_vs_injection,
    bench_exploit_vs_injection_xsa148,
    bench_spec_lower_and_audit
);
criterion_main!(benches);
