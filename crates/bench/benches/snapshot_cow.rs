//! Copy-on-write snapshot cost: cloning a booted world's machine memory
//! must be a refcount sweep (one `Arc` bump per materialized frame),
//! not a page-by-page copy. The acceptance floor for this PR is a ≥10×
//! win of `MachineMemory::clone` over `deep_copy` on the standard
//! 4096-frame world.

use bench::attack_world;
use criterion::{criterion_group, criterion_main, Criterion};
use hvsim::XenVersion;
use std::hint::black_box;

fn bench_cow_clone(c: &mut Criterion) {
    let (world, _) = attack_world(XenVersion::V4_8, true);
    let mem = world.hv().mem();
    c.bench_function("snapshot_cow/cow_clone", |b| b.iter(|| black_box(mem.clone())));
}

fn bench_deep_copy(c: &mut Criterion) {
    // The pre-COW baseline: every materialized frame gets a fresh 4 KiB
    // allocation. This is what `clone` used to cost.
    let (world, _) = attack_world(XenVersion::V4_8, true);
    let mem = world.hv().mem();
    c.bench_function("snapshot_cow/deep_copy", |b| b.iter(|| black_box(mem.deep_copy())));
}

fn bench_world_clone(c: &mut Criterion) {
    // The campaign's actual snapshot operation: the whole world,
    // dominated by the machine-memory clone.
    let (world, _) = attack_world(XenVersion::V4_8, true);
    c.bench_function("snapshot_cow/world_clone", |b| b.iter(|| black_box(world.clone())));
}

fn bench_first_write_after_clone(c: &mut Criterion) {
    // Cost of privatizing one frame after a snapshot: the COW fault
    // path (one page copy) plus the write itself.
    let (world, _) = attack_world(XenVersion::V4_8, true);
    let base = world.hv().mem();
    let frame = hvsim_mem::Mfn::new(8);
    c.bench_function("snapshot_cow/first_write_after_clone", |b| {
        b.iter(|| {
            let mut snap = base.clone();
            snap.write(frame.base(), black_box(&[0xAAu8; 64])).unwrap();
            black_box(snap)
        })
    });
}

criterion_group!(
    benches,
    bench_cow_clone,
    bench_deep_copy,
    bench_world_clone,
    bench_first_write_after_clone
);
criterion_main!(benches);
