//! The 4-level software page walk.

use crate::{AccessKind, PageFault, PageFaultKind, PageTableEntry, PteFlags, VaIndices};
use hvsim_mem::{MachineMemory, Mfn, PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};

/// Size class of a completed mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingLevel {
    /// 4 KiB page mapped by an L1 entry.
    Page4K,
    /// 2 MiB superpage mapped by an L2 entry with `PSE`.
    Page2M,
    /// 1 GiB superpage mapped by an L3 entry with `PSE`.
    Page1G,
}

/// One visited page-table entry during a walk. The sequence of steps is the
/// "page-table walk audit" the paper uses to prove injected erroneous
/// states equal exploit-induced ones (§VI-C, §VII).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStep {
    /// Paging level of the table (4 down to 1).
    pub level: u8,
    /// The frame holding the table.
    pub table: Mfn,
    /// Index of the entry within the table.
    pub index: usize,
    /// The entry's value.
    pub entry: PageTableEntry,
}

/// Policy knobs applied during translation, derived from the target
/// hypervisor version's hardening level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkPolicy {
    /// Reject translations passing through a *writable self-referencing*
    /// page-table entry (Xen ≥ 4.9 hardening; defeats the XSA-182 abuse
    /// of an injected writable self-map).
    pub forbid_writable_selfmap: bool,
}

/// A successful translation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// The translated virtual address.
    pub va: VirtAddr,
    /// Machine frame of the final mapping (base frame for superpages).
    pub mfn: Mfn,
    /// Final physical byte address.
    pub phys: PhysAddr,
    /// Size class of the mapping.
    pub level: MappingLevel,
    /// Every entry visited, top-down.
    pub steps: Vec<WalkStep>,
}

impl Translation {
    /// `true` if every visited level permits writes.
    pub fn writable(&self) -> bool {
        self.steps.iter().all(|s| s.entry.flags().contains(PteFlags::RW))
    }

    /// `true` if every visited level permits user-mode access.
    pub fn user_accessible(&self) -> bool {
        self.steps.iter().all(|s| s.entry.flags().contains(PteFlags::USER))
    }

    /// `true` if no visited level sets `NX`.
    pub fn executable(&self) -> bool {
        !self.steps.iter().any(|s| s.entry.flags().contains(PteFlags::NX))
    }

    /// Validates an access against the accumulated permissions.
    ///
    /// # Errors
    ///
    /// Returns the [`PageFault`] real hardware would raise: `NotWritable`
    /// for a write through a read-only level, `NotUser` for a user access
    /// through a supervisor level, `NoExecute` for a fetch through `NX`.
    pub fn check(&self, access: AccessKind, user_mode: bool) -> Result<(), PageFault> {
        if user_mode {
            if let Some(s) = self
                .steps
                .iter()
                .find(|s| !s.entry.flags().contains(PteFlags::USER))
            {
                return Err(PageFault::new(
                    self.va,
                    access,
                    PageFaultKind::NotUser { level: s.level },
                ));
            }
        }
        match access {
            AccessKind::Read => Ok(()),
            AccessKind::Write => match self
                .steps
                .iter()
                .find(|s| !s.entry.flags().contains(PteFlags::RW))
            {
                Some(s) => Err(PageFault::new(
                    self.va,
                    access,
                    PageFaultKind::NotWritable { level: s.level },
                )),
                None => Ok(()),
            },
            AccessKind::Execute => {
                if self.executable() {
                    Ok(())
                } else {
                    Err(PageFault::new(self.va, access, PageFaultKind::NoExecute))
                }
            }
        }
    }
}

fn read_entry(
    mem: &MachineMemory,
    table: Mfn,
    index: usize,
    level: u8,
    va: VirtAddr,
    access: AccessKind,
) -> Result<PageTableEntry, PageFault> {
    let slot = table.base().offset(index as u64 * 8);
    let raw = mem
        .read_u64(slot)
        .map_err(|_| PageFault::new(va, access, PageFaultKind::BadFrame { level }))?;
    Ok(PageTableEntry::from_raw(raw))
}

/// Translates `va` through the 4-level page tables rooted at `cr3`.
///
/// Performs no permission checks beyond structural validity; call
/// [`Translation::check`] for access checks. This mirrors hardware, where
/// the walk and the permission fault are distinct steps.
///
/// # Errors
///
/// Returns a [`PageFault`] if the address is non-canonical, an entry is
/// not present, a referenced frame is not installed, or (under a hardened
/// [`WalkPolicy`]) a writable self-referencing page-table entry is used.
pub fn walk(
    mem: &MachineMemory,
    cr3: Mfn,
    va: VirtAddr,
    policy: &WalkPolicy,
) -> Result<Translation, PageFault> {
    let access = AccessKind::Read; // faults during the structural walk report as reads
    if !va.is_canonical() {
        return Err(PageFault::new(va, access, PageFaultKind::NonCanonical));
    }
    let idx = VaIndices::of(va);
    let mut steps = Vec::with_capacity(4);
    let mut table = cr3;

    for level in (1..=4u8).rev() {
        let index = idx.at_level(level);
        let entry = read_entry(mem, table, index, level, va, access)?;
        if !entry.is_present() {
            return Err(PageFault::new(va, access, PageFaultKind::NotPresent { level }));
        }
        if policy.forbid_writable_selfmap
            && entry.mfn() == table
            && entry.flags().contains(PteFlags::RW)
        {
            return Err(PageFault::new(
                va,
                access,
                PageFaultKind::HardenedSelfMap { level },
            ));
        }
        steps.push(WalkStep {
            level,
            table,
            index,
            entry,
        });
        let next = entry.mfn();
        let pse = entry.flags().contains(PteFlags::PSE);
        match (level, pse) {
            (3, true) => {
                let offset = ((idx.l2 as u64) << 21) | ((idx.l1 as u64) << 12) | idx.offset as u64;
                let phys = next.base().offset(offset);
                check_installed(mem, phys, va, level)?;
                return Ok(Translation {
                    va,
                    mfn: phys.frame(),
                    phys,
                    level: MappingLevel::Page1G,
                    steps,
                });
            }
            (2, true) => {
                let offset = ((idx.l1 as u64) << 12) | idx.offset as u64;
                let phys = next.base().offset(offset);
                check_installed(mem, phys, va, level)?;
                return Ok(Translation {
                    va,
                    mfn: phys.frame(),
                    phys,
                    level: MappingLevel::Page2M,
                    steps,
                });
            }
            (1, _) => {
                let phys = next.base().offset(idx.offset as u64);
                check_installed(mem, phys, va, level)?;
                return Ok(Translation {
                    va,
                    mfn: next,
                    phys,
                    level: MappingLevel::Page4K,
                    steps,
                });
            }
            _ => {
                if !mem.contains(next) {
                    return Err(PageFault::new(va, access, PageFaultKind::BadFrame { level }));
                }
                table = next;
            }
        }
    }
    unreachable!("4-level walk always terminates at level 1")
}

fn check_installed(
    mem: &MachineMemory,
    phys: PhysAddr,
    va: VirtAddr,
    level: u8,
) -> Result<(), PageFault> {
    if mem.contains(phys.frame()) {
        Ok(())
    } else {
        Err(PageFault::new(
            va,
            AccessKind::Read,
            PageFaultKind::BadFrame { level },
        ))
    }
}

/// Returns the physical slot address and current value of the page-table
/// entry that maps `va` at `level`, without requiring the leaf mapping to
/// exist below that level.
///
/// This is the audit primitive behind "a page-table walk to audit the same
/// erroneous state was performed" (paper §VI-C3): tests and monitors use
/// it to compare exploit-induced and injected page-table states.
///
/// # Errors
///
/// Returns a [`PageFault`] if the walk cannot reach `level`.
pub fn pte_slot(
    mem: &MachineMemory,
    cr3: Mfn,
    va: VirtAddr,
    level: u8,
) -> Result<(PhysAddr, PageTableEntry), PageFault> {
    assert!((1..=4).contains(&level), "paging level {level} out of range");
    if !va.is_canonical() {
        return Err(PageFault::new(va, AccessKind::Read, PageFaultKind::NonCanonical));
    }
    let idx = VaIndices::of(va);
    let mut table = cr3;
    for cur in (level..=4u8).rev() {
        let index = idx.at_level(cur);
        let slot = table.base().offset(index as u64 * 8);
        let entry = read_entry(mem, table, index, cur, va, AccessKind::Read)?;
        if cur == level {
            return Ok((slot, entry));
        }
        if !entry.is_present() {
            return Err(PageFault::new(
                va,
                AccessKind::Read,
                PageFaultKind::NotPresent { level: cur },
            ));
        }
        if !mem.contains(entry.mfn()) {
            return Err(PageFault::new(
                va,
                AccessKind::Read,
                PageFaultKind::BadFrame { level: cur },
            ));
        }
        table = entry.mfn();
    }
    unreachable!("loop returns at the requested level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose_va;

    const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

    struct Harness {
        mem: MachineMemory,
        cr3: Mfn,
        next_free: u64,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                mem: MachineMemory::new(64),
                cr3: Mfn::new(1),
                next_free: 2,
            }
        }

        fn fresh(&mut self) -> Mfn {
            let mfn = Mfn::new(self.next_free);
            self.next_free += 1;
            mfn
        }

        fn write_entry(&mut self, table: Mfn, index: usize, entry: PageTableEntry) {
            self.mem
                .write_u64(table.base().offset(index as u64 * 8), entry.raw())
                .unwrap();
        }

        /// Builds the full chain for `va` -> `target` with per-level flags.
        fn map(&mut self, va: VirtAddr, target: Mfn, flags: [PteFlags; 4]) {
            let idx = VaIndices::of(va);
            let l3 = self.fresh();
            let l2 = self.fresh();
            let l1 = self.fresh();
            self.write_entry(self.cr3, idx.l4, PageTableEntry::new(l3, flags[3]));
            self.write_entry(l3, idx.l3, PageTableEntry::new(l2, flags[2]));
            self.write_entry(l2, idx.l2, PageTableEntry::new(l1, flags[1]));
            self.write_entry(l1, idx.l1, PageTableEntry::new(target, flags[0]));
        }
    }

    #[test]
    fn walk_4k_mapping() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50), [LINK; 4]);
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        assert_eq!(t.mfn, Mfn::new(50));
        assert_eq!(t.phys, Mfn::new(50).base().offset(0xabc));
        assert_eq!(t.level, MappingLevel::Page4K);
        assert_eq!(t.steps.len(), 4);
        assert!(t.writable());
        assert!(t.user_accessible());
        assert!(t.executable());
    }

    #[test]
    fn walk_rejects_non_canonical() {
        let h = Harness::new();
        let err = walk(
            &h.mem,
            h.cr3,
            VirtAddr::new(0x8000_0000_0000_0000),
            &WalkPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind, PageFaultKind::NonCanonical);
    }

    #[test]
    fn walk_not_present_reports_level() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x1000);
        // Only the L4 entry exists.
        let l3 = h.fresh();
        h.write_entry(h.cr3, 0, PageTableEntry::new(l3, LINK));
        let err = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap_err();
        assert_eq!(err.kind, PageFaultKind::NotPresent { level: 3 });
    }

    #[test]
    fn walk_2m_superpage() {
        let mut h = Harness::new();
        // Map a PSE entry at L2 index 3 of va 0x0060_xxxx.
        let va = VirtAddr::new((3 << 21) | 0x5123);
        let idx = VaIndices::of(va);
        let l3 = h.fresh();
        let l2 = h.fresh();
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
        h.write_entry(l2, idx.l2, PageTableEntry::new(Mfn::new(32), LINK | PteFlags::PSE));
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        assert_eq!(t.level, MappingLevel::Page2M);
        assert_eq!(t.phys, Mfn::new(32).base().offset(((idx.l1 as u64) << 12) | 0x123));
        assert_eq!(t.steps.len(), 3, "L4, L3 and the PSE L2 entry are visited");
    }

    #[test]
    fn walk_1g_superpage() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x4000_5123);
        let idx = VaIndices::of(va);
        let l3 = h.fresh();
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(Mfn::new(0), LINK | PteFlags::PSE));
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        assert_eq!(t.level, MappingLevel::Page1G);
        // phys = l2 index << 21 | l1 << 12 | offset relative to frame 0.
        assert_eq!(t.phys.raw(), ((idx.l2 as u64) << 21) | ((idx.l1 as u64) << 12) | 0x123);
    }

    #[test]
    fn permission_checks_report_limiting_level() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x2000);
        let ro_l2 = [LINK, LINK.difference(PteFlags::RW), LINK, LINK];
        h.map(va, Mfn::new(40), ro_l2);
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        assert!(!t.writable());
        let err = t.check(AccessKind::Write, false).unwrap_err();
        assert_eq!(err.kind, PageFaultKind::NotWritable { level: 2 });
        assert!(t.check(AccessKind::Read, false).is_ok());
    }

    #[test]
    fn supervisor_only_mapping_faults_user_access() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x3000);
        let sup_l1 = [LINK.difference(PteFlags::USER), LINK, LINK, LINK];
        h.map(va, Mfn::new(41), sup_l1);
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        let err = t.check(AccessKind::Read, true).unwrap_err();
        assert_eq!(err.kind, PageFaultKind::NotUser { level: 1 });
        assert!(t.check(AccessKind::Read, false).is_ok());
    }

    #[test]
    fn nx_blocks_execute() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x4000);
        h.map(va, Mfn::new(42), [LINK | PteFlags::NX, LINK, LINK, LINK]);
        let t = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap();
        assert_eq!(
            t.check(AccessKind::Execute, false).unwrap_err().kind,
            PageFaultKind::NoExecute
        );
    }

    #[test]
    fn hardened_policy_rejects_writable_selfmap() {
        let mut h = Harness::new();
        // L4 entry 42 points back at the L4 itself, writable: XSA-182's state.
        h.write_entry(h.cr3, 42, PageTableEntry::new(h.cr3, LINK));
        let va = compose_va(42, 42, 42, 42, 0);
        // Classic policy: the walk loops through the same frame and terminates.
        assert!(walk(&h.mem, h.cr3, va, &WalkPolicy::default()).is_ok());
        // Hardened policy: rejected at L4.
        let err = walk(
            &h.mem,
            h.cr3,
            va,
            &WalkPolicy {
                forbid_writable_selfmap: true,
            },
        )
        .unwrap_err();
        assert_eq!(err.kind, PageFaultKind::HardenedSelfMap { level: 4 });
    }

    #[test]
    fn hardened_policy_allows_readonly_selfmap() {
        let mut h = Harness::new();
        h.write_entry(h.cr3, 42, PageTableEntry::new(h.cr3, LINK.difference(PteFlags::RW)));
        let va = compose_va(42, 42, 42, 42, 0);
        assert!(walk(
            &h.mem,
            h.cr3,
            va,
            &WalkPolicy {
                forbid_writable_selfmap: true
            }
        )
        .is_ok());
    }

    #[test]
    fn bad_frame_in_entry_faults() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x5000);
        let idx = VaIndices::of(va);
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(Mfn::new(9999), LINK));
        let err = walk(&h.mem, h.cr3, va, &WalkPolicy::default()).unwrap_err();
        assert_eq!(err.kind, PageFaultKind::BadFrame { level: 4 });
    }

    #[test]
    fn pte_slot_returns_entry_location() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50), [LINK; 4]);
        let idx = VaIndices::of(va);
        // L4 slot lives in the cr3 frame.
        let (slot4, e4) = pte_slot(&h.mem, h.cr3, va, 4).unwrap();
        assert_eq!(slot4, h.cr3.base().offset(idx.l4 as u64 * 8));
        assert!(e4.is_present());
        // L1 slot holds the final mapping.
        let (_, e1) = pte_slot(&h.mem, h.cr3, va, 1).unwrap();
        assert_eq!(e1.mfn(), Mfn::new(50));
    }

    #[test]
    fn pte_slot_fault_above_requested_level() {
        let h = Harness::new();
        let err = pte_slot(&h.mem, h.cr3, VirtAddr::new(0x1000), 1).unwrap_err();
        assert_eq!(err.kind, PageFaultKind::NotPresent { level: 4 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pte_slot_rejects_level_zero() {
        let h = Harness::new();
        let _ = pte_slot(&h.mem, h.cr3, VirtAddr::new(0), 0);
    }
}
