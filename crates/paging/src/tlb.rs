//! A software TLB for the translation hot path.
//!
//! [`walk`] reads nothing but frame *contents* (and the fixed installed
//! range), so a cached translation stays valid exactly as long as no
//! frame it visited is rewritten. The cache exploits the structure of
//! that statement instead of tracking individual frames:
//!
//! * **Fill rule** — a walk is cached only if *every* visited table
//!   frame is typed as a page table in [`PageInfo`]. Walks through
//!   forged chains in writable data frames (the XSA-212 style) or
//!   through hypervisor-private frames are never cached, so writes to
//!   such frames can never strand a stale entry.
//! * **Invalidation rule** — [`MachineMemory`] bumps a page-table write
//!   generation on every store to (or accounting mutation of) a
//!   page-table-typed frame. Each shard compares generations on every
//!   lookup and flushes wholesale on mismatch. Data writes never flush;
//!   PTE writes always do — including injector writes that corrupt a
//!   PTE behind the hypervisor's back, which is what keeps the paper's
//!   audit-walk semantics intact: a monitor walk after injection always
//!   sees the corruption.
//!
//! Entries are keyed by `(CR3, VPN, size class, walk policy)` with
//! separate probes for 4 KiB, 2 MiB and 1 GiB classes. Storage is
//! **sharded and set-associative**: the key hashes to one of
//! [`TLB_SHARDS`] independently locked shards, then to a set of
//! [`TLB_WAYS`] ways inside it, so concurrent fills and misses on
//! different shards never serialize on a single lock (the pre-sharding
//! design funneled every probe through one `Mutex<Tlb>`). A fill into a
//! set whose ways are all live evicts round-robin and counts a
//! `fill_conflicts` — the set-pressure signal `BENCH_campaign.json`
//! reports. Cached superpage hits re-check that the reconstructed
//! physical frame is installed, because different offsets inside one
//! superpage can fall off the end of machine memory.
//!
//! [`PageInfo`]: hvsim_mem::PageInfo

use crate::walk::{walk, MappingLevel, Translation, WalkPolicy, WalkStep};
use crate::PageFault;
use hvsim_mem::{MachineMemory, Mfn, PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Independently locked shards; must be a power of two.
const TLB_SHARDS: usize = 8;
/// Sets per shard; must be a power of two.
const TLB_SETS: usize = 8;
/// Ways per set. Total capacity stays at the pre-sharding 256 entries
/// (8 shards × 8 sets × 4 ways).
const TLB_WAYS: usize = 4;

/// Hit/miss counters, reported per campaign cell and aggregated into the
/// `tlb.hits` / `tlb.misses` / `tlb.fill_conflicts` observability
/// counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations served from the cache.
    pub hits: u64,
    /// Translations that fell through to a full walk while the cache was
    /// enabled (faulting walks included).
    pub misses: u64,
    /// Fills that evicted a live entry because every way in the target
    /// set was occupied.
    pub fill_conflicts: u64,
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    cr3: Mfn,
    /// `va >> shift` for the entry's size class, so one entry covers the
    /// whole mapped region (page or superpage).
    vpn: u64,
    /// The [`WalkPolicy::forbid_writable_selfmap`] bit the walk ran under.
    hardened: bool,
    level: MappingLevel,
    /// Base frame of the leaf mapping.
    base: Mfn,
    /// The visited steps, for exact [`Translation`] reconstruction.
    steps: [WalkStep; 4],
    n_steps: u8,
}

impl TlbEntry {
    fn matches(&self, cr3: Mfn, vpn: u64, level: MappingLevel, policy: &WalkPolicy) -> bool {
        self.cr3 == cr3
            && self.vpn == vpn
            && self.level == level
            && self.hardened == policy.forbid_writable_selfmap
    }
}

impl MappingLevel {
    fn page_shift(self) -> u32 {
        match self {
            MappingLevel::Page4K => 12,
            MappingLevel::Page2M => 21,
            MappingLevel::Page1G => 30,
        }
    }

    fn offset_mask(self) -> u64 {
        (1u64 << self.page_shift()) - 1
    }

    fn class_salt(self) -> u64 {
        match self {
            MappingLevel::Page4K => 0,
            MappingLevel::Page2M => 0x5555_5555_5555_5555,
            MappingLevel::Page1G => 0xaaaa_aaaa_aaaa_aaaa,
        }
    }
}

const PROBE_ORDER: [MappingLevel; 3] =
    [MappingLevel::Page4K, MappingLevel::Page2M, MappingLevel::Page1G];

/// One independently locked slice of the cache: a small set-associative
/// array plus the generation its entries were filled under.
#[derive(Debug, Default)]
struct TlbShard {
    /// The [`MachineMemory::pt_generation`] the cached entries were
    /// filled under.
    gen: u64,
    /// Round-robin eviction cursor; deterministic, so identical
    /// single-threaded workloads produce identical stats.
    tick: u64,
    /// Lazily allocated (`TLB_SETS` sets of `TLB_WAYS` ways) so
    /// untouched clones cost nothing.
    sets: Vec<[Option<TlbEntry>; TLB_WAYS]>,
}

impl TlbShard {
    fn flush(&mut self) {
        for set in &mut self.sets {
            *set = [None; TLB_WAYS];
        }
    }

    /// Flushes if the page-table write generation moved since the last
    /// fill into this shard.
    fn sync_generation(&mut self, mem: &MachineMemory) {
        let gen = mem.pt_generation();
        if gen != self.gen {
            self.flush();
            self.gen = gen;
        }
    }

    /// Finds the way holding `(cr3, vpn, level, policy)` in `set`, if
    /// cached.
    fn find(
        &self,
        set: usize,
        cr3: Mfn,
        vpn: u64,
        level: MappingLevel,
        policy: &WalkPolicy,
    ) -> Option<&TlbEntry> {
        self.sets
            .get(set)?
            .iter()
            .flatten()
            .find(|e| e.matches(cr3, vpn, level, policy))
    }

    /// Caches a cacheable walk into `set`, evicting round-robin if every
    /// way is live. Returns whether a live entry was evicted.
    fn insert(&mut self, set: usize, entry: TlbEntry) -> bool {
        if self.sets.is_empty() {
            self.sets.resize_with(TLB_SETS, || [None; TLB_WAYS]);
        }
        let ways = &mut self.sets[set];
        let way = ways
            .iter()
            .position(|w| {
                w.as_ref().is_some_and(|e| {
                    e.cr3 == entry.cr3
                        && e.vpn == entry.vpn
                        && e.level == entry.level
                        && e.hardened == entry.hardened
                })
            })
            .or_else(|| ways.iter().position(Option::is_none));
        let (way, evicted) = match way {
            Some(w) => (w, false),
            None => {
                let victim = (self.tick as usize) % TLB_WAYS;
                self.tick = self.tick.wrapping_add(1);
                (victim, true)
            }
        };
        ways[way] = Some(entry);
        evicted
    }
}

/// A lock-free single-entry front cache (the "L0") for the phys-only
/// fast path: one seqlocked record of the most recent cacheable
/// translation. Readers never take a lock; writers race only through a
/// compare-exchange on the sequence word, so a contended fill is simply
/// skipped (the L0 is opportunistic — correctness lives in the
/// generation check). An entry is valid only when the stored page-table
/// generation still equals the memory's current one, so PTE writes
/// invalidate it for free — no explicit shootdown.
#[derive(Debug)]
struct L0Cache {
    /// Seqlock word: even = stable, odd = write in progress.
    seq: AtomicU64,
    /// `va >> page_shift(level)` of the cached mapping.
    vpn: AtomicU64,
    /// Packed `cr3.raw() << 3 | level << 1 | hardened`.
    meta: AtomicU64,
    /// Base frame of the leaf mapping.
    base: AtomicU64,
    /// The page-table generation the entry was filled under.
    gen: AtomicU64,
}

/// `meta` value that can never match a real packed key.
const L0_EMPTY_META: u64 = u64::MAX;

impl L0Cache {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            vpn: AtomicU64::new(u64::MAX),
            meta: AtomicU64::new(L0_EMPTY_META),
            base: AtomicU64::new(0),
            gen: AtomicU64::new(u64::MAX),
        }
    }

    fn pack_meta(cr3: Mfn, level: MappingLevel, hardened: bool) -> Option<u64> {
        // Frame numbers are tiny in this model; refuse to cache the
        // (impossible in practice) case where packing would truncate.
        if cr3.raw() >= (1 << 60) {
            return None;
        }
        let level_bits = match level {
            MappingLevel::Page4K => 0u64,
            MappingLevel::Page2M => 1,
            MappingLevel::Page1G => 2,
        };
        Some((cr3.raw() << 3) | (level_bits << 1) | u64::from(hardened))
    }

    fn unpack_level(meta: u64) -> Option<MappingLevel> {
        match (meta >> 1) & 0b11 {
            0 => Some(MappingLevel::Page4K),
            1 => Some(MappingLevel::Page2M),
            2 => Some(MappingLevel::Page1G),
            _ => None,
        }
    }

    /// Opportunistic seqlock write: with sharded fills there is no
    /// single lock serializing writers, so a writer claims the sequence
    /// word with a compare-exchange and simply skips the fill if another
    /// writer holds it — dropping an L0 mirror is always safe.
    fn try_store(&self, vpn: u64, meta: u64, base: u64, gen: u64) -> bool {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 != 0 {
            return false;
        }
        if self
            .seq
            .compare_exchange(s, s.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        fence(Ordering::Release);
        self.vpn.store(vpn, Ordering::Relaxed);
        self.meta.store(meta, Ordering::Relaxed);
        self.base.store(base, Ordering::Relaxed);
        self.gen.store(gen, Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
        true
    }

    /// Clearing must not be dropped the way an opportunistic fill can
    /// be: spin until the write lands (uncontended in practice — fills
    /// are nearly instantaneous).
    fn clear(&self) {
        while !self.try_store(u64::MAX, L0_EMPTY_META, 0, u64::MAX) {
            std::hint::spin_loop();
        }
    }

    /// Lock-free probe: a consistent, generation-current, key-matching
    /// snapshot yields the physical address.
    fn probe(
        &self,
        mem: &MachineMemory,
        cr3: Mfn,
        va: VirtAddr,
        policy: &WalkPolicy,
    ) -> Option<PhysAddr> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        let vpn = self.vpn.load(Ordering::Relaxed);
        let meta = self.meta.load(Ordering::Relaxed);
        let base = self.base.load(Ordering::Relaxed);
        let gen = self.gen.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        if gen != mem.pt_generation() {
            return None;
        }
        let level = Self::unpack_level(meta)?;
        if vpn != va.raw() >> level.page_shift()
            || Self::pack_meta(cr3, level, policy.forbid_writable_selfmap) != Some(meta)
        {
            return None;
        }
        let phys = Mfn::new(base).base().offset(va.raw() & level.offset_mask());
        if !mem.contains(phys.frame()) {
            return None;
        }
        Some(phys)
    }
}

impl Translation {
    /// The root table frame this translation started from (the first
    /// step's table).
    fn cr3_frame(&self) -> Mfn {
        self.steps[0].table
    }
}

/// A software TLB shared behind `&self` translation paths.
///
/// Cloning yields a TLB with the same enablement but an **empty** cache
/// and zeroed [`TlbStats`] — caches are semantically transparent, and
/// per-cell statistics must start from zero in each snapshot.
///
/// Internally this is two tiers: a sharded set-associative array (the
/// "L1", serving [`SharedTlb::translate`] with full step
/// reconstruction; each shard behind its own lock so concurrent fills
/// and misses stop serializing) fronted by a lock-free seqlocked single
/// entry (the "L0") that serves repeated [`SharedTlb::phys_of`]
/// resolutions of the same page without touching any shard. Hit/miss/
/// conflict counters and the enable flag are atomics so the fast path
/// stays lock-free.
#[derive(Debug)]
pub struct SharedTlb {
    shards: Vec<Mutex<TlbShard>>,
    l0: L0Cache,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    fill_conflicts: AtomicU64,
}

impl Clone for SharedTlb {
    fn clone(&self) -> Self {
        SharedTlb::new(self.is_enabled())
    }
}

impl Default for SharedTlb {
    fn default() -> Self {
        SharedTlb::new(true)
    }
}

impl SharedTlb {
    /// Creates an empty TLB.
    pub fn new(enabled: bool) -> Self {
        Self {
            shards: (0..TLB_SHARDS).map(|_| Mutex::new(TlbShard::default())).collect(),
            l0: L0Cache::empty(),
            enabled: AtomicBool::new(enabled),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fill_conflicts: AtomicU64::new(0),
        }
    }

    /// Hashes a lookup key to `(shard, set)`. Shard and set use disjoint
    /// bits of one multiplicative hash so related VPNs spread across
    /// both dimensions.
    fn locate(cr3: Mfn, vpn: u64, level: MappingLevel) -> (usize, usize) {
        let h = (vpn ^ level.class_salt())
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(cr3.raw().rotate_left(17));
        let shard = ((h >> 40) as usize) & (TLB_SHARDS - 1);
        let set = ((h >> 48) as usize) & (TLB_SETS - 1);
        (shard, set)
    }

    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, TlbShard> {
        self.shards[shard].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirrors a freshly probed/inserted L1 entry into the L0 front
    /// cache (best effort — see [`L0Cache::try_store`]).
    fn l0_fill(&self, entry: &TlbEntry, gen: u64) {
        if let Some(meta) = L0Cache::pack_meta(entry.cr3, entry.level, entry.hardened) {
            self.l0.try_store(entry.vpn, meta, entry.base.raw(), gen);
        }
    }

    /// `true` if lookups consult the cache.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the cache. Disabling flushes, so re-enabling
    /// never resurrects entries filled before the toggle.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.flush();
        }
    }

    /// Drops every cached entry (statistics are kept).
    pub fn flush(&self) {
        for shard in 0..TLB_SHARDS {
            self.lock_shard(shard).flush();
        }
        self.l0.clear();
    }

    /// Hit/miss/conflict counters accumulated since creation (or since
    /// this TLB was cloned from another).
    pub fn stats(&self) -> TlbStats {
        TlbStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fill_conflicts: self.fill_conflicts.load(Ordering::Relaxed),
        }
    }

    /// Probes all size classes for `va`, locking only the shard each
    /// class hashes to. A hit returns a copy of the entry (entries are
    /// tiny) plus the shard's generation for the L0 mirror. Superpage
    /// reconstruction re-validates that the physical frame is installed.
    fn probe(
        &self,
        mem: &MachineMemory,
        cr3: Mfn,
        va: VirtAddr,
        policy: &WalkPolicy,
    ) -> Option<(TlbEntry, PhysAddr, u64)> {
        for level in PROBE_ORDER {
            let vpn = va.raw() >> level.page_shift();
            let (shard_idx, set) = Self::locate(cr3, vpn, level);
            let mut shard = self.lock_shard(shard_idx);
            shard.sync_generation(mem);
            if let Some(entry) = shard.find(set, cr3, vpn, level, policy) {
                let phys = entry.base.base().offset(va.raw() & level.offset_mask());
                if mem.contains(phys.frame()) {
                    return Some((*entry, phys, shard.gen));
                }
            }
        }
        None
    }

    /// Caches a successful walk — but only if every visited table frame
    /// is page-table-typed, so the generation counter is guaranteed to
    /// cover every byte the walk depended on. Mirrors the fill into the
    /// L0 front cache.
    fn fill(&self, mem: &MachineMemory, t: &Translation, policy: &WalkPolicy) {
        let all_typed = t.steps.iter().all(|s| {
            mem.info(s.table)
                .map(|i| i.page_type().is_page_table())
                .unwrap_or(false)
        });
        if !all_typed || t.steps.is_empty() || t.steps.len() > 4 {
            return;
        }
        let mut steps = [t.steps[0]; 4];
        steps[..t.steps.len()].copy_from_slice(&t.steps);
        let vpn = t.va.raw() >> t.level.page_shift();
        let entry = TlbEntry {
            cr3: t.cr3_frame(),
            vpn,
            hardened: policy.forbid_writable_selfmap,
            level: t.level,
            // The leaf entry's frame: the walk computes superpage
            // physical addresses relative to it, and the model does not
            // require it to be superpage-aligned.
            base: t.steps[t.steps.len() - 1].entry.mfn(),
            steps,
            n_steps: t.steps.len() as u8,
        };
        let (shard_idx, set) = Self::locate(entry.cr3, vpn, t.level);
        let mut shard = self.lock_shard(shard_idx);
        shard.sync_generation(mem);
        let gen = shard.gen;
        let evicted = shard.insert(set, entry);
        drop(shard);
        if evicted {
            self.fill_conflicts.fetch_add(1, Ordering::Relaxed);
        }
        self.l0_fill(&entry, gen);
    }

    /// Translates `va` like [`walk`], consulting and filling the cache.
    ///
    /// # Errors
    ///
    /// Exactly the [`PageFault`]s [`walk`] returns; faulting walks are
    /// never cached.
    pub fn translate(
        &self,
        mem: &MachineMemory,
        cr3: Mfn,
        va: VirtAddr,
        policy: &WalkPolicy,
    ) -> Result<Translation, PageFault> {
        if !self.is_enabled() {
            return walk(mem, cr3, va, policy);
        }
        if let Some((entry, phys, gen)) = self.probe(mem, cr3, va, policy) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.l0_fill(&entry, gen);
            return Ok(Translation {
                va,
                mfn: phys.frame(),
                phys,
                level: entry.level,
                steps: entry.steps[..entry.n_steps as usize].to_vec(),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t = walk(mem, cr3, va, policy)?;
        self.fill(mem, &t, policy);
        Ok(t)
    }

    /// Physical-address-only fast path: like [`SharedTlb::translate`]
    /// but a cache hit allocates nothing (no step vector), which is what
    /// makes repeated same-page resolution O(1).
    ///
    /// # Errors
    ///
    /// Exactly the [`PageFault`]s [`walk`] returns.
    pub fn phys_of(
        &self,
        mem: &MachineMemory,
        cr3: Mfn,
        va: VirtAddr,
        policy: &WalkPolicy,
    ) -> Result<PhysAddr, PageFault> {
        if !self.is_enabled() {
            return walk(mem, cr3, va, policy).map(|t| t.phys);
        }
        // Lock-free front cache: repeated resolutions of the same page
        // never touch a shard lock. The generation check makes stale
        // entries (any PTE write since the fill) miss automatically.
        if let Some(phys) = self.l0.probe(mem, cr3, va, policy) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(phys);
        }
        if let Some((entry, phys, gen)) = self.probe(mem, cr3, va, policy) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.l0_fill(&entry, gen);
            return Ok(phys);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t = walk(mem, cr3, va, policy)?;
        self.fill(mem, &t, policy);
        Ok(t.phys)
    }

    /// Returns the physical slot address of the L1 entry mapping `va`,
    /// if a valid 4 KiB translation for it is cached. This matches what
    /// [`crate::pte_slot`]`(mem, cr3, va, 1)` would return (a cached hit
    /// implies every level above L1 is present), letting PTE-update
    /// hypercalls skip the locating walk.
    pub fn cached_l1_slot(&self, mem: &MachineMemory, cr3: Mfn, va: VirtAddr) -> Option<PhysAddr> {
        if !self.is_enabled() {
            return None;
        }
        let vpn = va.raw() >> MappingLevel::Page4K.page_shift();
        let (shard_idx, set) = Self::locate(cr3, vpn, MappingLevel::Page4K);
        let mut shard = self.lock_shard(shard_idx);
        shard.sync_generation(mem);
        let policy_any = WalkPolicy::default();
        // The slot location is policy-independent (both policy variants
        // walk the same tables), so accept an entry under either policy.
        let entry = shard.find(set, cr3, vpn, MappingLevel::Page4K, &policy_any).or_else(|| {
            shard.find(
                set,
                cr3,
                vpn,
                MappingLevel::Page4K,
                &WalkPolicy { forbid_writable_selfmap: true },
            )
        })?;
        let l1 = entry.steps[..entry.n_steps as usize]
            .iter()
            .find(|s| s.level == 1)?;
        let slot = l1.table.base().offset(l1.index as u64 * 8);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compose_va, PageTableEntry, PteFlags, VaIndices};
    use hvsim_mem::{DomainId, PageType};

    const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

    struct Harness {
        mem: MachineMemory,
        cr3: Mfn,
        next_free: u64,
    }

    impl Harness {
        fn new() -> Self {
            Self::with_frames(64)
        }

        fn with_frames(frames: usize) -> Self {
            Self {
                mem: MachineMemory::new(frames),
                cr3: Mfn::new(1),
                next_free: 2,
            }
        }

        fn fresh(&mut self, level: u8) -> Mfn {
            let mfn = Mfn::new(self.next_free);
            self.next_free += 1;
            self.type_table(mfn, level);
            mfn
        }

        fn type_table(&mut self, mfn: Mfn, level: u8) {
            self.mem.info_mut(mfn).unwrap().assign(
                DomainId::new(1),
                PageType::from_page_table_level(level).unwrap(),
            );
        }

        fn write_entry(&mut self, table: Mfn, index: usize, entry: PageTableEntry) {
            self.mem
                .write_u64(table.base().offset(index as u64 * 8), entry.raw())
                .unwrap();
        }

        /// Maps `va` -> `target` through properly typed page tables.
        fn map(&mut self, va: VirtAddr, target: Mfn) -> (Mfn, usize) {
            self.type_table(self.cr3, 4);
            let idx = VaIndices::of(va);
            let l3 = self.fresh(3);
            let l2 = self.fresh(2);
            let l1 = self.fresh(1);
            self.write_entry(self.cr3, idx.l4, PageTableEntry::new(l3, LINK));
            self.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
            self.write_entry(l2, idx.l2, PageTableEntry::new(l1, LINK));
            self.write_entry(l1, idx.l1, PageTableEntry::new(target, LINK));
            (l1, idx.l1)
        }
    }

    fn stats(hits: u64, misses: u64) -> TlbStats {
        TlbStats { hits, misses, fill_conflicts: 0 }
    }

    #[test]
    fn hit_reproduces_the_walk_exactly() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        let miss = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        let hit = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        let raw = walk(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(miss, raw);
        assert_eq!(hit, raw, "a cached translation must be indistinguishable");
        assert_eq!(tlb.stats(), stats(1, 1));
        // Another offset in the same page also hits.
        let other = tlb
            .translate(&h.mem, h.cr3, VirtAddr::new(0x40_0000_1010), &policy)
            .unwrap();
        assert_eq!(other.phys, Mfn::new(50).base().offset(0x10));
        assert_eq!(tlb.stats().hits, 2);
    }

    #[test]
    fn pte_write_invalidates_cached_translation() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        let (l1, l1_idx) = h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        // Corrupt the L1 PTE behind the TLB's back — the injector path.
        h.write_entry(l1, l1_idx, PageTableEntry::new(Mfn::new(51), LINK));
        let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(t.mfn, Mfn::new(51), "the walk after a PTE write must see the new mapping");
    }

    #[test]
    fn data_writes_do_not_flush() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        h.mem
            .info_mut(Mfn::new(50))
            .unwrap()
            .assign(DomainId::new(1), PageType::Writable);
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        h.mem.write_u64(Mfn::new(50).base(), 0x4141).unwrap();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(tlb.stats(), stats(1, 1));
    }

    #[test]
    fn walks_through_untyped_frames_are_never_cached() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        let (l1, _) = h.map(va, Mfn::new(50));
        // Demote the L1 to a plain writable frame: a forged chain.
        h.mem
            .info_mut(l1)
            .unwrap()
            .set_type_unchecked(PageType::Writable);
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(
            tlb.stats(),
            stats(0, 2),
            "walks through non-page-table frames must not be cached"
        );
    }

    #[test]
    fn superpage_hits_cover_the_region_and_recheck_bounds() {
        let mut h = Harness::new();
        let va = VirtAddr::new((3u64 << 21) | 0x5123);
        h.type_table(h.cr3, 4);
        let idx = VaIndices::of(va);
        let l3 = h.fresh(3);
        let l2 = h.fresh(2);
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
        h.write_entry(l2, idx.l2, PageTableEntry::new(Mfn::new(32), LINK | PteFlags::PSE));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        let first = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(first.level, MappingLevel::Page2M);
        // A different 4 KiB page inside the same 2 MiB region hits.
        let other_va = VirtAddr::new((3u64 << 21) | 0x1_f00d);
        let hit = tlb.translate(&h.mem, h.cr3, other_va, &policy).unwrap();
        assert_eq!(hit, walk(&h.mem, h.cr3, other_va, &policy).unwrap());
        assert_eq!(tlb.stats().hits, 1);
        // An offset that runs past installed memory faults instead of
        // returning a fabricated hit (frame 32 + 2 MiB > 64 frames).
        let oob_va = VirtAddr::new((3u64 << 21) | 0x10_0000);
        assert!(tlb.translate(&h.mem, h.cr3, oob_va, &policy).is_err());
        assert!(walk(&h.mem, h.cr3, oob_va, &policy).is_err(), "the raw walk agrees");
    }

    #[test]
    fn policy_variants_do_not_share_entries() {
        let mut h = Harness::new();
        let va = compose_va(42, 42, 42, 42, 0);
        h.type_table(h.cr3, 4);
        // Read-only self-map: legal under both policies but the hardened
        // walk must still be computed under its own rules.
        h.write_entry(h.cr3, 42, PageTableEntry::new(h.cr3, LINK.difference(PteFlags::RW)));
        let tlb = SharedTlb::new(true);
        let classic = WalkPolicy::default();
        let hardened = WalkPolicy {
            forbid_writable_selfmap: true,
        };
        tlb.translate(&h.mem, h.cr3, va, &classic).unwrap();
        tlb.translate(&h.mem, h.cr3, va, &hardened).unwrap();
        assert_eq!(tlb.stats().misses, 2, "different policies never share entries");
    }

    #[test]
    fn disabled_tlb_is_a_transparent_walk() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(false);
        let policy = WalkPolicy::default();
        let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(t, walk(&h.mem, h.cr3, va, &policy).unwrap());
        assert_eq!(tlb.stats(), TlbStats::default());
    }

    #[test]
    fn clone_preserves_enablement_but_not_entries() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        let clone = tlb.clone();
        assert!(clone.is_enabled());
        assert_eq!(clone.stats(), TlbStats::default());
        clone.translate(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(clone.stats().misses, 1, "the clone starts cold");
    }

    #[test]
    fn cached_l1_slot_matches_pte_slot() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        assert!(tlb.cached_l1_slot(&h.mem, h.cr3, va).is_none(), "cold cache");
        tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
        let cached = tlb.cached_l1_slot(&h.mem, h.cr3, va).unwrap();
        let (slot, _) = crate::pte_slot(&h.mem, h.cr3, va, 1).unwrap();
        assert_eq!(cached, slot);
        // A PTE write drops the cached slot too.
        h.mem.write_u64(slot, 0).unwrap();
        assert!(tlb.cached_l1_slot(&h.mem, h.cr3, va).is_none());
    }

    #[test]
    fn phys_of_fast_path_agrees_with_translate() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        let p1 = tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        let p2 = tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(p1, Mfn::new(50).base().offset(0xabc));
        assert_eq!(p1, p2);
        assert_eq!(tlb.stats(), stats(1, 1));
    }

    #[test]
    fn phys_of_front_cache_respects_pt_generation() {
        let mut h = Harness::new();
        let va = VirtAddr::new(0x40_0000_1abc);
        let (l1, l1_idx) = h.map(va, Mfn::new(50));
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        // Fill and then hit the lock-free L0 front cache.
        tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        let hit = tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(hit, Mfn::new(50).base().offset(0xabc));
        assert_eq!(tlb.stats(), stats(1, 1));
        // An injector-style PTE write behind the TLB's back bumps the
        // page-table generation; the L0 entry must miss, not serve the
        // stale frame.
        h.write_entry(l1, l1_idx, PageTableEntry::new(Mfn::new(51), LINK));
        let after = tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(after, Mfn::new(51).base().offset(0xabc));
        assert_eq!(tlb.stats(), stats(1, 2));
        // flush() also kills the front cache.
        tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        tlb.flush();
        tlb.phys_of(&h.mem, h.cr3, va, &policy).unwrap();
        assert_eq!(tlb.stats().misses, 3, "flush must clear the L0 too");
    }

    /// Many distinct pages under one CR3: every one must be cached and
    /// hit on re-translation (set-associativity actually spreads the
    /// working set), and the stats must stay deterministic.
    #[test]
    fn sharded_cache_holds_a_multi_page_working_set() {
        let mut h = Harness::with_frames(512);
        h.type_table(h.cr3, 4);
        // One L4->L3->L2 spine, then 64 L1 entries mapping 64 pages.
        let base_va = 0x40_0000_0000u64; // l4=0 is fine; use l4 idx from VA
        let idx = VaIndices::of(VirtAddr::new(base_va));
        let l3 = h.fresh(3);
        let l2 = h.fresh(2);
        let l1 = h.fresh(1);
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
        h.write_entry(l2, idx.l2, PageTableEntry::new(l1, LINK));
        for i in 0..64usize {
            h.write_entry(l1, i, PageTableEntry::new(Mfn::new(100 + i as u64), LINK));
        }
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        for i in 0..64u64 {
            let va = VirtAddr::new(base_va + i * 4096);
            let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
            assert_eq!(t.mfn, Mfn::new(100 + i));
        }
        assert_eq!(tlb.stats().misses, 64);
        let after_fill = tlb.stats();
        for i in 0..64u64 {
            let va = VirtAddr::new(base_va + i * 4096 + 0x123);
            let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
            assert_eq!(t.mfn, Mfn::new(100 + i));
            assert_eq!(t, walk(&h.mem, h.cr3, va, &policy).unwrap());
        }
        let after_probe = tlb.stats();
        assert_eq!(
            after_probe.misses, after_fill.misses,
            "a 64-page working set fits without evictions (256-entry capacity)"
        );
        assert_eq!(after_probe.hits, after_fill.hits + 64);
        // Deterministic: the same sequence on a fresh TLB reproduces the
        // exact same counters, conflicts included.
        let tlb2 = SharedTlb::new(true);
        for round in 0..2 {
            for i in 0..64u64 {
                let off = if round == 0 { 0 } else { 0x123 };
                let va = VirtAddr::new(base_va + i * 4096 + off);
                tlb2.translate(&h.mem, h.cr3, va, &policy).unwrap();
            }
        }
        assert_eq!(tlb2.stats(), after_probe);
    }

    /// Overflow a single set until fills must evict: the conflict
    /// counter moves, and evicted entries simply re-walk (correctness is
    /// untouched by set pressure).
    #[test]
    fn set_conflicts_evict_deterministically_and_stay_correct() {
        let mut h = Harness::with_frames(4096);
        h.type_table(h.cr3, 4);
        let base_va = 0x40_0000_0000u64;
        let idx = VaIndices::of(VirtAddr::new(base_va));
        let l3 = h.fresh(3);
        let l2 = h.fresh(2);
        let l1 = h.fresh(1);
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
        h.write_entry(l2, idx.l2, PageTableEntry::new(l1, LINK));
        for i in 0..512usize {
            h.write_entry(l1, i, PageTableEntry::new(Mfn::new(1024 + i as u64), LINK));
        }
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        // 512 pages through 256 entries (64 sets × 4 ways): some set
        // must overflow.
        for i in 0..512u64 {
            let va = VirtAddr::new(base_va + i * 4096);
            let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
            assert_eq!(t.mfn, Mfn::new(1024 + i));
        }
        let s = tlb.stats();
        assert!(s.fill_conflicts > 0, "512 fills into 256 entries must conflict");
        assert_eq!(s.misses, 512);
        // Re-translating everything is still exact, evicted or not.
        for i in 0..512u64 {
            let va = VirtAddr::new(base_va + i * 4096 + 0xf);
            let t = tlb.translate(&h.mem, h.cr3, va, &policy).unwrap();
            assert_eq!(t.phys, Mfn::new(1024 + i).base().offset(0xf));
        }
        // And the whole sequence is reproducible, conflicts included.
        let tlb2 = SharedTlb::new(true);
        for round in 0..2 {
            for i in 0..512u64 {
                let off = if round == 0 { 0 } else { 0xf };
                let va = VirtAddr::new(base_va + i * 4096 + off);
                tlb2.translate(&h.mem, h.cr3, va, &policy).unwrap();
            }
        }
        assert_eq!(tlb2.stats(), tlb.stats());
    }

    /// Concurrent translations through one shared TLB: every thread must
    /// see exact translations (the shards and the opportunistic L0 can
    /// drop fills but never serve wrong data).
    #[test]
    fn concurrent_probes_and_fills_stay_exact() {
        let mut h = Harness::with_frames(512);
        h.type_table(h.cr3, 4);
        let base_va = 0x40_0000_0000u64;
        let idx = VaIndices::of(VirtAddr::new(base_va));
        let l3 = h.fresh(3);
        let l2 = h.fresh(2);
        let l1 = h.fresh(1);
        h.write_entry(h.cr3, idx.l4, PageTableEntry::new(l3, LINK));
        h.write_entry(l3, idx.l3, PageTableEntry::new(l2, LINK));
        h.write_entry(l2, idx.l2, PageTableEntry::new(l1, LINK));
        for i in 0..64usize {
            h.write_entry(l1, i, PageTableEntry::new(Mfn::new(100 + i as u64), LINK));
        }
        let tlb = SharedTlb::new(true);
        let policy = WalkPolicy::default();
        let cr3 = h.cr3;
        let mem = &h.mem;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let tlb = &tlb;
                let policy = &policy;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        for i in 0..64u64 {
                            let page = (i + t * 7 + round) % 64;
                            let va = VirtAddr::new(base_va + page * 4096 + (t * 8));
                            let got = tlb.phys_of(mem, cr3, va, policy).unwrap();
                            assert_eq!(got, Mfn::new(100 + page).base().offset(t * 8));
                        }
                    }
                });
            }
        });
        let s = tlb.stats();
        assert_eq!(s.hits + s.misses, 4 * 50 * 64, "every translation is counted");
    }
}
