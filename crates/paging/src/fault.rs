//! Structured page-fault information.

use hvsim_mem::{MemError, VirtAddr};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The kind of memory access being attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// Why a translation failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PageFaultKind {
    /// The address is not canonical (#GP on real hardware).
    NonCanonical,
    /// A table entry at `level` was not present.
    NotPresent {
        /// Paging level of the missing entry (1..=4).
        level: u8,
    },
    /// Write attempted through a read-only mapping.
    NotWritable {
        /// Paging level whose entry lacked `RW`.
        level: u8,
    },
    /// User access attempted through a supervisor-only mapping.
    NotUser {
        /// Paging level whose entry lacked `USER`.
        level: u8,
    },
    /// Instruction fetch through a no-execute mapping.
    NoExecute,
    /// An entry referenced a frame beyond installed memory.
    BadFrame {
        /// Paging level of the bad entry.
        level: u8,
    },
    /// Hardened layout: translation passed through a writable
    /// self-referencing page-table mapping, which Xen ≥ 4.9 forbids.
    HardenedSelfMap {
        /// Paging level of the rejected self-map.
        level: u8,
    },
}

/// A failed translation: the faulting address, the access kind, and why.
///
/// In the simulator these propagate to the hypervisor's exception-delivery
/// path (`#PF`), which is exactly the surface the XSA-212-crash use case
/// corrupts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFault {
    /// Faulting virtual address.
    pub va: VirtAddr,
    /// The attempted access.
    pub access: AccessKind,
    /// The reason.
    pub kind: PageFaultKind,
}

impl PageFault {
    /// Convenience constructor.
    pub fn new(va: VirtAddr, access: AccessKind, kind: PageFaultKind) -> Self {
        Self { va, access, kind }
    }
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page fault: {} at {}: ", self.access, self.va)?;
        match &self.kind {
            PageFaultKind::NonCanonical => f.write_str("non-canonical address"),
            PageFaultKind::NotPresent { level } => write!(f, "L{level} entry not present"),
            PageFaultKind::NotWritable { level } => write!(f, "L{level} entry not writable"),
            PageFaultKind::NotUser { level } => write!(f, "L{level} entry supervisor-only"),
            PageFaultKind::NoExecute => f.write_str("no-execute mapping"),
            PageFaultKind::BadFrame { level } => write!(f, "L{level} entry references bad frame"),
            PageFaultKind::HardenedSelfMap { level } => {
                write!(f, "L{level} writable self-map rejected by hardened layout")
            }
        }
    }
}

impl Error for PageFault {}

impl From<(VirtAddr, AccessKind, MemError)> for PageFault {
    fn from((va, access, _): (VirtAddr, AccessKind, MemError)) -> Self {
        PageFault::new(va, access, PageFaultKind::BadFrame { level: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let pf = PageFault::new(
            VirtAddr::new(0xffff_8040_0000_0000),
            AccessKind::Write,
            PageFaultKind::NotWritable { level: 4 },
        );
        let s = pf.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("0xffff804000000000"));
        assert!(s.contains("L4"));
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Execute.to_string(), "execute");
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(PageFault::new(
            VirtAddr::new(0),
            AccessKind::Read,
            PageFaultKind::NonCanonical,
        ));
    }
}
