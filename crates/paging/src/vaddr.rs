//! Virtual-address decomposition and composition.

use hvsim_mem::VirtAddr;
use serde::{Deserialize, Serialize};

/// Number of 8-byte entries in one page-table page.
pub const ENTRIES_PER_TABLE: usize = 512;

/// The four page-table indices plus page offset of a virtual address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VaIndices {
    /// Index into the L4 (top-level) table, bits 47..=39.
    pub l4: usize,
    /// Index into the L3 table, bits 38..=30.
    pub l3: usize,
    /// Index into the L2 table, bits 29..=21.
    pub l2: usize,
    /// Index into the L1 table, bits 20..=12.
    pub l1: usize,
    /// Byte offset within the 4 KiB page, bits 11..=0.
    pub offset: usize,
}

impl VaIndices {
    /// Decomposes a virtual address into its table indices.
    pub const fn of(va: VirtAddr) -> Self {
        let raw = va.raw();
        Self {
            l4: ((raw >> 39) & 0x1ff) as usize,
            l3: ((raw >> 30) & 0x1ff) as usize,
            l2: ((raw >> 21) & 0x1ff) as usize,
            l1: ((raw >> 12) & 0x1ff) as usize,
            offset: (raw & 0xfff) as usize,
        }
    }

    /// Index for the given paging level (1..=4).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    pub fn at_level(&self, level: u8) -> usize {
        match level {
            1 => self.l1,
            2 => self.l2,
            3 => self.l3,
            4 => self.l4,
            _ => panic!("paging level {level} out of range 1..=4"),
        }
    }
}

/// Composes a canonical virtual address from four table indices and an
/// in-page offset.
///
/// # Panics
///
/// Panics if any index is ≥ 512 or `offset` ≥ 4096 (debug builds assert;
/// release builds mask).
pub fn compose_va(l4: usize, l3: usize, l2: usize, l1: usize, offset: usize) -> VirtAddr {
    debug_assert!(l4 < ENTRIES_PER_TABLE && l3 < ENTRIES_PER_TABLE);
    debug_assert!(l2 < ENTRIES_PER_TABLE && l1 < ENTRIES_PER_TABLE);
    debug_assert!(offset < 4096);
    let raw = ((l4 as u64 & 0x1ff) << 39)
        | ((l3 as u64 & 0x1ff) << 30)
        | ((l2 as u64 & 0x1ff) << 21)
        | ((l1 as u64 & 0x1ff) << 12)
        | (offset as u64 & 0xfff);
    VirtAddr::canonicalize(raw)
}

/// The virtual address that reaches the L4 page *itself* through a
/// self-referencing L4 entry at `index` — the construction at the heart of
/// the XSA-182 exploit ("create a self-mapping L4 page, then craft a
/// virtual address to point to it with writable permissions").
pub fn selfmap_va(index: usize, offset: usize) -> VirtAddr {
    compose_va(index, index, index, index, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decompose_known_address() {
        // 0xffff_8040_0000_0000: l4 = 256 (hypervisor half), l3 = 256
        // (0x40_0000_0000 = 256 GiB, and each L3 slot spans 1 GiB).
        let idx = VaIndices::of(VirtAddr::new(0xffff_8040_0000_0000));
        assert_eq!(idx.l4, 256);
        assert_eq!(idx.l3, 256);
        assert_eq!(idx.l2, 0);
        assert_eq!(idx.l1, 0);
        assert_eq!(idx.offset, 0);
    }

    #[test]
    fn at_level_matches_fields() {
        let idx = VaIndices::of(VirtAddr::new(0x0000_7fab_cdef_1234));
        assert_eq!(idx.at_level(4), idx.l4);
        assert_eq!(idx.at_level(3), idx.l3);
        assert_eq!(idx.at_level(2), idx.l2);
        assert_eq!(idx.at_level(1), idx.l1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_level_rejects_bad_level() {
        VaIndices::of(VirtAddr::new(0)).at_level(5);
    }

    #[test]
    fn compose_is_canonical_for_upper_half() {
        let va = compose_va(256, 0, 0, 0, 0);
        assert_eq!(va.raw(), 0xffff_8000_0000_0000);
        assert!(va.is_canonical());
    }

    #[test]
    fn selfmap_repeats_index() {
        let va = selfmap_va(42, 8 * 42);
        let idx = VaIndices::of(va);
        assert_eq!((idx.l4, idx.l3, idx.l2, idx.l1), (42, 42, 42, 42));
        assert_eq!(idx.offset, 8 * 42);
        assert!(va.is_canonical());
    }

    proptest! {
        #[test]
        fn prop_compose_decompose_roundtrip(
            l4 in 0usize..512, l3 in 0usize..512,
            l2 in 0usize..512, l1 in 0usize..512,
            offset in 0usize..4096,
        ) {
            let va = compose_va(l4, l3, l2, l1, offset);
            let idx = VaIndices::of(va);
            prop_assert_eq!(idx, VaIndices { l4, l3, l2, l1, offset });
            prop_assert!(va.is_canonical());
        }
    }
}
