//! Bit-accurate x86-64 page-table entries.

use bitflags::bitflags;
use hvsim_mem::Mfn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mask of the frame-address bits (51..=12) within a PTE.
pub const PTE_ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

bitflags! {
    /// x86-64 page-table entry flag bits.
    ///
    /// The names follow the Intel SDM; `PSE` (bit 7) marks a superpage
    /// mapping at L2 (2 MiB) or L3 (1 GiB). Setting `PSE` on an entry the
    /// hypervisor failed to validate is the core of XSA-148.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
    pub struct PteFlags: u64 {
        /// Entry is valid.
        const PRESENT  = 1 << 0;
        /// Writes allowed (subject to every level agreeing).
        const RW       = 1 << 1;
        /// User-mode (CPL 3) access allowed.
        const USER     = 1 << 2;
        /// Write-through caching.
        const PWT      = 1 << 3;
        /// Cache disabled.
        const PCD      = 1 << 4;
        /// Set by hardware on access.
        const ACCESSED = 1 << 5;
        /// Set by hardware on write.
        const DIRTY    = 1 << 6;
        /// Page-size: this entry maps a superpage (L2/L3 only).
        const PSE      = 1 << 7;
        /// Translation survives CR3 reload.
        const GLOBAL   = 1 << 8;
        /// Software-available bit 9 (Xen uses these for bookkeeping).
        const AVAIL0   = 1 << 9;
        /// Software-available bit 10.
        const AVAIL1   = 1 << 10;
        /// Software-available bit 11.
        const AVAIL2   = 1 << 11;
        /// No-execute.
        const NX       = 1 << 63;
    }
}

impl PteFlags {
    /// Flag bits that Xen's fast-path `mmu_update` treats as "safe to
    /// toggle without re-validation": accessed/dirty plus the
    /// software-available bits.
    ///
    /// XSA-182 existed because the *RW bit on a self-referencing L4 entry*
    /// slipped through a fast path that should have been restricted to
    /// these bits.
    pub const FASTPATH_SAFE: PteFlags = PteFlags::ACCESSED
        .union(PteFlags::DIRTY)
        .union(PteFlags::AVAIL0)
        .union(PteFlags::AVAIL1)
        .union(PteFlags::AVAIL2);
}

/// One 64-bit page-table entry: a frame number plus [`PteFlags`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PageTableEntry(u64);

impl PageTableEntry {
    /// An all-zeroes (not-present) entry.
    pub const EMPTY: PageTableEntry = PageTableEntry(0);

    /// Creates an entry pointing at `mfn` with `flags`.
    pub fn new(mfn: Mfn, flags: PteFlags) -> Self {
        Self(((mfn.raw() << 12) & PTE_ADDR_MASK) | flags.bits())
    }

    /// Reinterprets a raw 64-bit value as an entry.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The frame this entry points at.
    pub fn mfn(self) -> Mfn {
        Mfn::new((self.0 & PTE_ADDR_MASK) >> 12)
    }

    /// The entry's flag bits (unknown bits are dropped).
    pub fn flags(self) -> PteFlags {
        PteFlags::from_bits_truncate(self.0)
    }

    /// `true` if the present bit is set.
    pub fn is_present(self) -> bool {
        self.flags().contains(PteFlags::PRESENT)
    }

    /// Returns a copy with `flags` added.
    #[must_use]
    pub fn with_flags(self, flags: PteFlags) -> Self {
        Self(self.0 | flags.bits())
    }

    /// Returns a copy with `flags` removed.
    #[must_use]
    pub fn without_flags(self, flags: PteFlags) -> Self {
        Self(self.0 & !flags.bits())
    }

    /// Bits that differ between `self` and `other`, as a raw mask.
    pub fn diff_bits(self, other: PageTableEntry) -> u64 {
        self.0 ^ other.0
    }
}

impl fmt::Debug for PageTableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pte({:#018x} -> {} {:?})", self.0, self.mfn(), self.flags())
    }
}

impl fmt::Display for PageTableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for PageTableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PageTableEntry> for u64 {
    fn from(e: PageTableEntry) -> u64 {
        e.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entry_packs_mfn_and_flags() {
        let e = PageTableEntry::new(Mfn::new(0x82da9), PteFlags::PRESENT | PteFlags::RW | PteFlags::USER);
        // The value from the paper's XSA-182 output: page_directory[42] = 0x82da9007.
        assert_eq!(e.raw(), 0x0000_0000_82da_9007);
        assert_eq!(e.mfn(), Mfn::new(0x82da9));
        assert!(e.is_present());
        assert!(e.flags().contains(PteFlags::RW));
    }

    #[test]
    fn high_mfn_bits_masked() {
        let e = PageTableEntry::new(Mfn::new(u64::MAX), PteFlags::empty());
        assert_eq!(e.raw() & !PTE_ADDR_MASK, 0);
    }

    #[test]
    fn with_without_flags() {
        let e = PageTableEntry::new(Mfn::new(5), PteFlags::PRESENT);
        let rw = e.with_flags(PteFlags::RW);
        assert!(rw.flags().contains(PteFlags::RW));
        assert_eq!(rw.without_flags(PteFlags::RW), e);
        assert_eq!(e.diff_bits(rw), PteFlags::RW.bits());
    }

    #[test]
    fn nx_bit_is_bit_63() {
        let e = PageTableEntry::new(Mfn::new(1), PteFlags::PRESENT | PteFlags::NX);
        assert_eq!(e.raw() >> 63, 1);
    }

    #[test]
    fn fastpath_safe_excludes_rw_and_present() {
        assert!(!PteFlags::FASTPATH_SAFE.contains(PteFlags::RW));
        assert!(!PteFlags::FASTPATH_SAFE.contains(PteFlags::PRESENT));
        assert!(PteFlags::FASTPATH_SAFE.contains(PteFlags::ACCESSED));
    }

    #[test]
    fn empty_entry_not_present() {
        assert!(!PageTableEntry::EMPTY.is_present());
        assert_eq!(PageTableEntry::EMPTY.raw(), 0);
    }

    proptest! {
        #[test]
        fn prop_mfn_flags_roundtrip(mfn in 0u64..(1 << 40), bits in any::<u64>()) {
            let flags = PteFlags::from_bits_truncate(bits);
            let e = PageTableEntry::new(Mfn::new(mfn), flags);
            prop_assert_eq!(e.mfn(), Mfn::new(mfn));
            prop_assert_eq!(e.flags(), flags);
        }

        #[test]
        fn prop_raw_roundtrip(raw in any::<u64>()) {
            prop_assert_eq!(PageTableEntry::from_raw(raw).raw(), raw);
        }
    }
}
