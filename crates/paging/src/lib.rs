//! x86-64 4-level paging for the `hvsim` hypervisor simulator.
//!
//! This crate implements the translation machinery that Xen's
//! paravirtualized (PV) memory management is built on — and that the
//! memory-corruption exploits reproduced by this project abuse:
//!
//! * [`PteFlags`] / [`PageTableEntry`] — bit-accurate x86-64 page-table
//!   entries (present/RW/user/PSE/NX, 40-bit frame numbers),
//! * [`walk`] — a 4-level software page walk with superpage (PSE) support,
//!   returning either a [`Translation`] or a structured [`PageFault`],
//! * [`SharedTlb`] — a software TLB over [`walk`], keyed per CR3/VPN/size
//!   class and invalidated by the machine memory's page-table write
//!   generation (data writes never flush, PTE writes always do),
//! * [`MemoryLayout`] — the Xen virtual-address-space layout, including the
//!   guest-read-only hypervisor range and the RWX linear-page-table window
//!   whose removal was part of the Xen 4.9+ hardening (the reason Xen 4.13
//!   *handles* two of the paper's injected erroneous states),
//! * index/compose helpers for crafting virtual addresses from page-table
//!   indices (used by the XSA-182 self-mapping exploit).
//!
//! # Example
//!
//! ```
//! use hvsim_mem::{MachineMemory, Mfn, VirtAddr};
//! use hvsim_paging::{walk, PageTableEntry, PteFlags, WalkPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = MachineMemory::new(16);
//! // Build a 4-level mapping of 0x1000 -> frame 9 by hand.
//! let (l4, l3, l2, l1, data) = (Mfn::new(1), Mfn::new(2), Mfn::new(3), Mfn::new(4), Mfn::new(9));
//! let link = PteFlags::PRESENT | PteFlags::RW | PteFlags::USER;
//! mem.write_u64(l4.base(), PageTableEntry::new(l3, link).raw())?;
//! mem.write_u64(l3.base(), PageTableEntry::new(l2, link).raw())?;
//! mem.write_u64(l2.base(), PageTableEntry::new(l1, link).raw())?;
//! mem.write_u64(l1.base().offset(8), PageTableEntry::new(data, link).raw())?;
//! let t = walk(&mem, l4, VirtAddr::new(0x1abc), &WalkPolicy::default())?;
//! assert_eq!(t.phys.raw(), 9 * 4096 + 0xabc);
//! # Ok(())
//! # }
//! ```

mod entry;
mod fault;
mod layout;
mod tlb;
mod vaddr;
mod walk;

pub use entry::{PageTableEntry, PteFlags, PTE_ADDR_MASK};
pub use fault::{AccessKind, PageFault, PageFaultKind};
pub use layout::{
    LayoutDenial, MemoryLayout, Region, DIRECTMAP_START, GUEST_RO_END, HYPERVISOR_VIRT_START,
    LINEAR_PT_SIZE, LINEAR_PT_START,
};
pub use tlb::{SharedTlb, TlbStats};
pub use vaddr::{compose_va, selfmap_va, VaIndices, ENTRIES_PER_TABLE};
pub use walk::{pte_slot, walk, MappingLevel, Translation, WalkPolicy, WalkStep};
