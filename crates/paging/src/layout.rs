//! The Xen virtual-address-space layout, per hardening level.
//!
//! Xen's x86-64 memory layout reserves the upper canonical half for the
//! hypervisor and carves it into ranges with architecturally-defined guest
//! permissions. Two ranges matter for the experiments reproduced here:
//!
//! * `0xffff8000_00000000 ..= 0xffff807f_ffffffff` — **read-only for guest
//!   domains** (quoted verbatim in the paper, §V-A),
//! * `0xffff8040_00000000 ..` — the **linear page-table window**, an RWX
//!   mapping of the page tables that pre-4.9 Xen exposed into every PV
//!   guest. The XSA-212-priv exploit hides its payload here precisely
//!   because *every* guest can reach it. The XSA-213-followup hardening
//!   ([XSAs 213-215 followups], Xen ≥ 4.9) removed this mapping, which is
//!   why Xen 4.13 *handles* the injected erroneous states of XSA-212-priv
//!   and XSA-182-test instead of suffering the violation.

use crate::{AccessKind, PageFault, PageFaultKind};
use hvsim_mem::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First hypervisor-owned virtual address.
pub const HYPERVISOR_VIRT_START: u64 = 0xffff_8000_0000_0000;
/// Last byte of the range that is read-only for guest domains.
pub const GUEST_RO_END: u64 = 0xffff_807f_ffff_ffff;
/// Start of the linear page-table window (pre-hardening layouts only).
pub const LINEAR_PT_START: u64 = 0xffff_8040_0000_0000;
/// Size of the linear page-table window in bytes (256 GiB of the 512 GiB
/// L4 slot is guest-visible; the paper's exploit uses
/// `0xffff804000000000..=0xffff80403fffffff`).
pub const LINEAR_PT_SIZE: u64 = 0x40_0000_0000;
/// Start of the hypervisor's 1:1 direct map of machine memory.
pub const DIRECTMAP_START: u64 = 0xffff_8300_0000_0000;
/// Size of the direct map window.
pub const DIRECTMAP_SIZE: u64 = 0x100_0000_0000;

/// Which architectural region a virtual address falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Lower canonical half: ordinary guest virtual addresses.
    GuestVirtual,
    /// Hypervisor range that guests may read but never write.
    XenGuestReadOnly,
    /// The RWX linear page-table window (only mapped pre-hardening).
    LinearPtWindow,
    /// The hypervisor's direct map of machine memory.
    DirectMap,
    /// Any other hypervisor-private range.
    XenPrivate,
    /// Non-canonical hole.
    NonCanonical,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::GuestVirtual => "guest virtual",
            Region::XenGuestReadOnly => "xen guest-read-only",
            Region::LinearPtWindow => "linear page-table window",
            Region::DirectMap => "direct map",
            Region::XenPrivate => "xen private",
            Region::NonCanonical => "non-canonical",
        })
    }
}

/// Why the layout denied a guest access.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutDenial {
    /// The denied address.
    pub va: VirtAddr,
    /// The attempted access.
    pub access: AccessKind,
    /// The region the address falls into.
    pub region: Region,
}

impl fmt::Display for LayoutDenial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layout denies guest {} at {} ({} region)",
            self.access, self.va, self.region
        )
    }
}

impl std::error::Error for LayoutDenial {}

impl From<LayoutDenial> for PageFault {
    fn from(d: LayoutDenial) -> PageFault {
        let kind = match d.access {
            AccessKind::Write => PageFaultKind::NotWritable { level: 4 },
            _ => PageFaultKind::NotPresent { level: 4 },
        };
        PageFault::new(d.va, d.access, kind)
    }
}

/// The hypervisor's virtual memory layout for a given hardening level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    hardened: bool,
}

impl MemoryLayout {
    /// The pre-4.9 layout: linear page-table window mapped RWX into every
    /// PV guest.
    pub const fn classic() -> Self {
        Self { hardened: false }
    }

    /// The post-XSA-213-followup layout (Xen ≥ 4.9): the linear page-table
    /// window is unmapped and self-referencing writable page-table
    /// mappings are rejected during walks.
    pub const fn hardened() -> Self {
        Self { hardened: true }
    }

    /// Whether this is the hardened layout.
    pub const fn is_hardened(self) -> bool {
        self.hardened
    }

    /// Classifies a virtual address.
    pub fn region_of(self, va: VirtAddr) -> Region {
        let raw = va.raw();
        if !va.is_canonical() {
            Region::NonCanonical
        } else if raw < 0x0000_8000_0000_0000 {
            Region::GuestVirtual
        } else if (LINEAR_PT_START..LINEAR_PT_START + LINEAR_PT_SIZE).contains(&raw) {
            if self.hardened {
                Region::XenPrivate
            } else {
                Region::LinearPtWindow
            }
        } else if (HYPERVISOR_VIRT_START..=GUEST_RO_END).contains(&raw) {
            Region::XenGuestReadOnly
        } else if (DIRECTMAP_START..DIRECTMAP_START + DIRECTMAP_SIZE).contains(&raw) {
            Region::DirectMap
        } else {
            Region::XenPrivate
        }
    }

    /// Checks whether a *guest* may perform `access` at `va` as far as the
    /// architectural layout is concerned (page tables still apply on top).
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutDenial`] describing the refused access.
    pub fn guest_may(self, va: VirtAddr, access: AccessKind) -> Result<(), LayoutDenial> {
        let region = self.region_of(va);
        let allowed = match region {
            Region::GuestVirtual => true,
            // The linear-PT window was mapped RWX into every guest.
            Region::LinearPtWindow => true,
            Region::XenGuestReadOnly => access == AccessKind::Read,
            Region::DirectMap | Region::XenPrivate | Region::NonCanonical => false,
        };
        if allowed {
            Ok(())
        } else {
            Err(LayoutDenial { va, access, region })
        }
    }

    /// The direct-map virtual address of a physical byte address.
    pub fn directmap_va(self, phys: u64) -> VirtAddr {
        VirtAddr::new(DIRECTMAP_START + phys)
    }

    /// Inverts [`MemoryLayout::directmap_va`]: the physical address behind
    /// a direct-map virtual address, if it is one.
    pub fn directmap_phys(self, va: VirtAddr) -> Option<u64> {
        let raw = va.raw();
        if (DIRECTMAP_START..DIRECTMAP_START + DIRECTMAP_SIZE).contains(&raw) {
            Some(raw - DIRECTMAP_START)
        } else {
            None
        }
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        Self::classic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAYLOAD_VA: u64 = 0xffff_8040_0000_0000;

    #[test]
    fn classic_layout_exposes_linear_pt_window() {
        let l = MemoryLayout::classic();
        assert_eq!(l.region_of(VirtAddr::new(PAYLOAD_VA)), Region::LinearPtWindow);
        assert!(l.guest_may(VirtAddr::new(PAYLOAD_VA), AccessKind::Write).is_ok());
        assert!(l.guest_may(VirtAddr::new(PAYLOAD_VA), AccessKind::Execute).is_ok());
    }

    #[test]
    fn hardened_layout_removes_linear_pt_window() {
        let l = MemoryLayout::hardened();
        assert_eq!(l.region_of(VirtAddr::new(PAYLOAD_VA)), Region::XenPrivate);
        let err = l
            .guest_may(VirtAddr::new(PAYLOAD_VA), AccessKind::Execute)
            .unwrap_err();
        assert_eq!(err.region, Region::XenPrivate);
    }

    #[test]
    fn guest_ro_range_is_read_only() {
        for l in [MemoryLayout::classic(), MemoryLayout::hardened()] {
            let va = VirtAddr::new(0xffff_8000_0000_1000);
            assert_eq!(l.region_of(va), Region::XenGuestReadOnly);
            assert!(l.guest_may(va, AccessKind::Read).is_ok());
            assert!(l.guest_may(va, AccessKind::Write).is_err());
        }
    }

    #[test]
    fn guest_virtual_always_allowed_by_layout() {
        let l = MemoryLayout::hardened();
        let va = VirtAddr::new(0x7fff_dead_b000);
        assert!(l.guest_may(va, AccessKind::Write).is_ok());
    }

    #[test]
    fn directmap_denied_to_guests_and_roundtrips() {
        let l = MemoryLayout::classic();
        let va = l.directmap_va(0x1234_5000);
        assert_eq!(l.region_of(va), Region::DirectMap);
        assert!(l.guest_may(va, AccessKind::Read).is_err());
        assert_eq!(l.directmap_phys(va), Some(0x1234_5000));
        assert_eq!(l.directmap_phys(VirtAddr::new(0x1000)), None);
    }

    #[test]
    fn non_canonical_region() {
        let l = MemoryLayout::classic();
        assert_eq!(l.region_of(VirtAddr::new(0x1234_0000_0000_0000)), Region::NonCanonical);
        assert!(l.guest_may(VirtAddr::new(0x1234_0000_0000_0000), AccessKind::Read).is_err());
    }

    #[test]
    fn denial_converts_to_page_fault() {
        let l = MemoryLayout::hardened();
        let denial = l
            .guest_may(VirtAddr::new(PAYLOAD_VA), AccessKind::Write)
            .unwrap_err();
        let pf: PageFault = denial.into();
        assert_eq!(pf.kind, PageFaultKind::NotWritable { level: 4 });
    }

    #[test]
    fn denial_display() {
        let l = MemoryLayout::hardened();
        let d = l
            .guest_may(VirtAddr::new(PAYLOAD_VA), AccessKind::Execute)
            .unwrap_err();
        assert!(d.to_string().contains("denies guest execute"));
    }
}
