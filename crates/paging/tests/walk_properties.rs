//! Property tests over the page walker: randomly built mappings always
//! translate to the manually computed physical address, permission
//! accumulation is the AND over levels, and the walker is total (no
//! panic on any table contents).

use hvsim_mem::{MachineMemory, Mfn, PhysAddr, VirtAddr, PAGE_SIZE};
use hvsim_paging::{
    compose_va, pte_slot, walk, MappingLevel, PageTableEntry, PteFlags, VaIndices, WalkPolicy,
};
use proptest::prelude::*;

const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

fn write_entry(mem: &mut MachineMemory, table: Mfn, index: usize, e: PageTableEntry) {
    mem.write_u64(table.base().offset(index as u64 * 8), e.raw())
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A randomly placed 4-level mapping translates exactly as computed.
    #[test]
    fn random_4k_mappings_translate_exactly(
        l4 in 0usize..512, l3 in 0usize..512, l2 in 0usize..512, l1 in 0usize..512,
        offset in 0usize..PAGE_SIZE,
        target in 10u64..64,
        rw: bool, user: bool, nx: bool,
    ) {
        let mut mem = MachineMemory::new(64);
        let (t4, t3, t2, t1) = (Mfn::new(1), Mfn::new(2), Mfn::new(3), Mfn::new(4));
        let mut leaf = PteFlags::PRESENT;
        if rw { leaf |= PteFlags::RW; }
        if user { leaf |= PteFlags::USER; }
        if nx { leaf |= PteFlags::NX; }
        write_entry(&mut mem, t4, l4, PageTableEntry::new(t3, LINK));
        write_entry(&mut mem, t3, l3, PageTableEntry::new(t2, LINK));
        write_entry(&mut mem, t2, l2, PageTableEntry::new(t1, LINK));
        write_entry(&mut mem, t1, l1, PageTableEntry::new(Mfn::new(target), leaf));
        let va = compose_va(l4, l3, l2, l1, offset);
        let t = walk(&mem, t4, va, &WalkPolicy::default()).unwrap();
        prop_assert_eq!(t.level, MappingLevel::Page4K);
        prop_assert_eq!(t.phys, PhysAddr::new(target * PAGE_SIZE as u64 + offset as u64));
        // Permission accumulation: leaf AND link flags.
        prop_assert_eq!(t.writable(), rw);
        prop_assert_eq!(t.user_accessible(), user);
        prop_assert_eq!(t.executable(), !nx);
        // The audit primitive agrees with the walk.
        let (slot, entry) = pte_slot(&mem, t4, va, 1).unwrap();
        prop_assert_eq!(slot, t1.base().offset(l1 as u64 * 8));
        prop_assert_eq!(entry.mfn(), Mfn::new(target));
    }

    /// The walker never panics whatever garbage fills the tables.
    #[test]
    fn walker_is_total_on_garbage_tables(
        seed in any::<u64>(),
        va in any::<u64>(),
        hardened: bool,
    ) {
        let mut mem = MachineMemory::new(16);
        // Fill all frames with pseudo-random garbage derived from seed.
        let mut state = seed | 1;
        for f in 0..16u64 {
            for slot in 0..512u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                mem.write_u64(Mfn::new(f).base().offset(slot * 8), state).unwrap();
            }
        }
        let policy = WalkPolicy { forbid_writable_selfmap: hardened };
        // Must return Ok or Err, never panic, for any cr3 and va.
        for cr3 in 0..16u64 {
            let _ = walk(&mem, Mfn::new(cr3), VirtAddr::new(va), &policy);
            let _ = pte_slot(&mem, Mfn::new(cr3), VirtAddr::new(va), 1);
            let _ = pte_slot(&mem, Mfn::new(cr3), VirtAddr::new(va), 4);
        }
    }

    /// Superpage translations cover exactly their 2 MiB / 1 GiB spans.
    #[test]
    fn superpage_spans(
        l4 in 0usize..512, l3 in 0usize..512, l2 in 0usize..512,
        inner in 0u64..(2 << 20),
    ) {
        // The 2 MiB superpage over frame 0 spans 512 frames; install them all.
        let mut mem = MachineMemory::new(512);
        let (t4, t3, t2) = (Mfn::new(1), Mfn::new(2), Mfn::new(3));
        write_entry(&mut mem, t4, l4, PageTableEntry::new(t3, LINK));
        write_entry(&mut mem, t3, l3, PageTableEntry::new(t2, LINK));
        write_entry(&mut mem, t2, l2, PageTableEntry::new(Mfn::new(0), LINK | PteFlags::PSE));
        let base = compose_va(l4, l3, l2, 0, 0);
        let va = VirtAddr::new(base.raw() + inner);
        let t = walk(&mem, t4, va, &WalkPolicy::default()).unwrap();
        prop_assert_eq!(t.level, MappingLevel::Page2M);
        prop_assert_eq!(t.phys.raw(), inner, "2MiB superpage over frame 0");
    }

    /// The hardened policy is a strict restriction: anything it allows,
    /// the classic policy also allows with the identical translation.
    #[test]
    fn hardened_policy_is_a_restriction(
        entries in proptest::collection::vec((0usize..512, 1u64..16, any::<u16>()), 1..24),
        va in any::<u64>(),
    ) {
        let mut mem = MachineMemory::new(16);
        let cr3 = Mfn::new(1);
        for (index, target, flag_bits) in entries {
            let flags = PteFlags::from_bits_truncate(flag_bits as u64) | PteFlags::PRESENT;
            write_entry(&mut mem, cr3, index, PageTableEntry::new(Mfn::new(target), flags));
        }
        let classic = walk(&mem, cr3, VirtAddr::new(va), &WalkPolicy::default());
        let hardened = walk(
            &mem,
            cr3,
            VirtAddr::new(va),
            &WalkPolicy { forbid_writable_selfmap: true },
        );
        if let Ok(h) = hardened {
            prop_assert_eq!(classic.unwrap(), h);
        }
    }
}

/// Translation indices round-trip through VaIndices for every mapping
/// level boundary (first/last entries of each table).
#[test]
fn boundary_indices() {
    for idx in [0usize, 1, 255, 256, 511] {
        let va = compose_va(idx, idx, idx, idx, 0);
        let d = VaIndices::of(va);
        assert_eq!((d.l4, d.l3, d.l2, d.l1), (idx, idx, idx, idx));
    }
}
