//! Adversarial property tests: **no sequence of guest hypercalls may
//! break the PV memory-safety invariants on a fixed build** — while on
//! the vulnerable build the known attack sequences must break them.
//!
//! This is the simulator-level statement of why intrusion injection is
//! needed at all: on fixed versions the attack surface is closed, so the
//! only way to reach the erroneous states is to inject them.

use hvsim::{
    BuildConfig, ExchangeArgs, HvError, Hypervisor, InvariantViolation, MmuExtOp, MmuUpdate,
    PageType, PteFlags, XenVersion,
};
use hvsim_mem::{DomainId, Mfn, Pfn, VirtAddr};
use hvsim_paging::PageTableEntry;
use proptest::prelude::*;

const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

/// A guest with pinned page tables ready for adversarial hypercalls.
struct Rig {
    hv: Hypervisor,
    dom: DomainId,
    l4: Mfn,
    l3: Mfn,
    l2: Mfn,
    l1: Mfn,
    data: Vec<Mfn>,
}

fn rig(version: XenVersion) -> Rig {
    let mut hv = Hypervisor::new(BuildConfig::new(version));
    let dom = hv.create_domain("fuzz", false, 24).unwrap();
    let mfn_of = |hv: &Hypervisor, p: u64| hv.domain(dom).unwrap().p2m(Pfn::new(p)).unwrap();
    let (l4, l3, l2, l1) = (mfn_of(&hv, 1), mfn_of(&hv, 2), mfn_of(&hv, 3), mfn_of(&hv, 4));
    let w = |hv: &mut Hypervisor, t: Mfn, i: usize, e: PageTableEntry| {
        hv.guest_write_frame(dom, t, i * 8, &e.raw().to_le_bytes()).unwrap();
    };
    w(&mut hv, l4, 0, PageTableEntry::new(l3, LINK));
    w(&mut hv, l3, 0, PageTableEntry::new(l2, LINK));
    w(&mut hv, l2, 0, PageTableEntry::new(l1, LINK));
    let data: Vec<Mfn> = (5..16).map(|p| mfn_of(&hv, p)).collect();
    for (i, &d) in data.iter().enumerate() {
        w(&mut hv, l1, i, PageTableEntry::new(d, LINK));
    }
    hv.hc_mmuext_op(dom, &[MmuExtOp::Pin { level: 4, mfn: l4 }]).unwrap();
    hv.hc_mmuext_op(dom, &[MmuExtOp::NewBaseptr { mfn: l4 }]).unwrap();
    Rig {
        hv,
        dom,
        l4,
        l3,
        l2,
        l1,
        data,
    }
}

/// One adversarial action the fuzzer may attempt.
#[derive(Clone, Debug)]
enum Action {
    /// Arbitrary mmu_update against one of the guest's tables.
    MmuUpdate { table: u8, index: usize, target: u8, flags: u64 },
    /// memory_exchange with an arbitrary out handle.
    Exchange { gmfn: u64, out: u64 },
    /// decrease_reservation with/without cache maintenance.
    Decrease { pfn: u64, acm: bool },
    /// Direct write attempt against a table frame.
    DirectWrite { table: u8, offset: usize, value: u64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, 0usize..512, 0u8..16, any::<u64>()).prop_map(|(table, index, target, flags)| {
            Action::MmuUpdate { table, index, target, flags }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(gmfn, out)| Action::Exchange { gmfn, out }),
        (0u64..32, any::<bool>()).prop_map(|(pfn, acm)| Action::Decrease { pfn, acm }),
        (0u8..4, 0usize..4088, any::<u64>()).prop_map(|(table, offset, value)| {
            Action::DirectWrite { table, offset, value }
        }),
    ]
}

fn table_of(rig: &Rig, sel: u8) -> Mfn {
    match sel % 4 {
        0 => rig.l4,
        1 => rig.l3,
        2 => rig.l2,
        _ => rig.l1,
    }
}

fn target_of(rig: &Rig, sel: u8) -> Mfn {
    // Mix of legal data frames, the guest's own tables, and privileged
    // frames (hypervisor text, shared L3, IDT).
    match sel % 8 {
        0 => rig.l4,
        1 => rig.l1,
        2 => Mfn::new(0),
        3 => rig.hv.shared_l3_mfn(),
        _ => rig.data[(sel as usize) % rig.data.len()],
    }
}

fn apply(rig: &mut Rig, action: &Action) -> Result<(), HvError> {
    match action {
        Action::MmuUpdate { table, index, target, flags } => {
            let t = table_of(rig, *table);
            let ptr = t.base().offset(*index as u64 * 8).raw();
            let entry = PageTableEntry::new(
                target_of(rig, *target),
                PteFlags::from_bits_truncate(*flags) | PteFlags::PRESENT,
            );
            rig.hv
                .hc_mmu_update(rig.dom, &[MmuUpdate::normal(ptr, entry.raw())])
                .map(|_| ())
        }
        Action::Exchange { gmfn, out } => rig
            .hv
            .hc_memory_exchange(
                rig.dom,
                &ExchangeArgs::new(vec![*gmfn], VirtAddr::new(*out)),
            )
            .map(|_| ()),
        Action::Decrease { pfn, acm } => rig
            .hv
            .hc_decrease_reservation(rig.dom, &[Pfn::new(*pfn)], *acm)
            .map(|_| ()),
        Action::DirectWrite { table, offset, value } => {
            let t = table_of(rig, *table);
            rig.hv
                .guest_write_frame(rig.dom, t, *offset, &value.to_le_bytes())
        }
    }
}

/// Violations the fuzz rig itself can cause legally: exchanging its own
/// data frames away makes previously mapped L1 entries point at frames
/// that return to the allocator (and later to other owners). Real Xen
/// prevents this with per-frame mapping counts the simulator models as
/// `retained_access`; exchange in the simulator clears the p2m but not
/// stale L1 entries. Those dangle as *not-present-owner* targets, which
/// the audit reports as ForeignFrameMapped with `owner == None` targets.
/// We therefore accept ForeignFrameMapped findings whose target has no
/// owner (a dangling-but-unreachable mapping), and reject everything
/// else.
fn is_tolerated(hv: &Hypervisor, v: &InvariantViolation) -> bool {
    match v {
        InvariantViolation::ForeignFrameMapped { target, .. } => hv
            .mem()
            .info(*target)
            .map(|i| i.owner().is_none())
            .unwrap_or(true),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fixed versions uphold every PV invariant under arbitrary
    /// guest-reachable hypercall sequences.
    #[test]
    fn fixed_versions_uphold_invariants(
        actions in proptest::collection::vec(action_strategy(), 1..24),
        version in prop_oneof![Just(XenVersion::V4_8), Just(XenVersion::V4_13)],
    ) {
        let mut r = rig(version);
        for action in &actions {
            let _ = apply(&mut r, action);
        }
        let violations: Vec<_> = r
            .hv
            .audit_pv_invariants()
            .into_iter()
            .filter(|v| !is_tolerated(&r.hv, v))
            .collect();
        prop_assert!(
            violations.is_empty(),
            "version {version}: {actions:?} broke {violations:?}"
        );
    }

    /// Freshly built rigs are always sound, on every version.
    #[test]
    fn fresh_rig_is_sound(version in prop_oneof![
        Just(XenVersion::V4_6), Just(XenVersion::V4_8), Just(XenVersion::V4_13)
    ]) {
        let r = rig(version);
        let violations = r.hv.audit_pv_invariants();
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}

/// On the vulnerable version, the *specific* known sequences do break
/// the invariants the fuzzer can't break on fixed builds.
#[test]
fn vulnerable_version_breaks_under_known_sequences() {
    // XSA-148: PSE superpage over privileged frames.
    let mut r = rig(XenVersion::V4_6);
    let ptr = r.l2.base().offset(9 * 8).raw();
    let entry = PageTableEntry::new(Mfn::new(0), LINK | PteFlags::PSE);
    r.hv.hc_mmu_update(r.dom, &[MmuUpdate::normal(ptr, entry.raw())]).unwrap();
    assert!(r
        .hv
        .audit_pv_invariants()
        .iter()
        .any(|v| matches!(v, InvariantViolation::SuperpageOverPrivilegedFrames { .. })));

    // XSA-182: writable self-map via the fast path.
    let mut r = rig(XenVersion::V4_6);
    let ptr = r.l4.base().offset(42 * 8).raw();
    let ro = PageTableEntry::new(r.l4, LINK.difference(PteFlags::RW));
    r.hv.hc_mmu_update(r.dom, &[MmuUpdate::normal(ptr, ro.raw())]).unwrap();
    let rw = PageTableEntry::new(r.l4, LINK);
    r.hv.hc_mmu_update(r.dom, &[MmuUpdate::normal(ptr, rw.raw())]).unwrap();
    assert!(r
        .hv
        .audit_pv_invariants()
        .iter()
        .any(|v| matches!(v, InvariantViolation::WritableSelfMap { .. })));

    // XSA-212: IDT corruption via the exchange write primitive.
    let mut r = rig(XenVersion::V4_6);
    let gate = r.hv.sidt(0).offset(14 * 16);
    let _ = r.hv.hc_memory_exchange(
        r.dom,
        &ExchangeArgs::write_what_where(gate, 0x4141_4141, 0),
    );
    assert!(r
        .hv
        .audit_pv_invariants()
        .iter()
        .any(|v| matches!(v, InvariantViolation::CorruptIdtGate { .. })));
}

/// Mixed workloads on the vulnerable version never crash the *simulator*
/// (panics are bugs; hypervisor crashes are modelled states).
#[test]
fn vulnerable_version_never_panics_the_simulator() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..16 {
        let mut r = rig(XenVersion::V4_6);
        for _ in 0..32 {
            let action = match rng.gen_range(0..4) {
                0 => Action::MmuUpdate {
                    table: rng.gen(),
                    index: rng.gen_range(0..512),
                    target: rng.gen(),
                    flags: rng.gen(),
                },
                1 => Action::Exchange {
                    gmfn: rng.gen_range(0..64),
                    out: rng.gen(),
                },
                2 => Action::Decrease {
                    pfn: rng.gen_range(0..32),
                    acm: rng.gen(),
                },
                _ => Action::DirectWrite {
                    table: rng.gen(),
                    offset: rng.gen_range(0..4088),
                    value: rng.gen(),
                },
            };
            let _ = apply(&mut r, &action);
        }
        // Audit always completes.
        let _ = r.hv.audit_pv_invariants();
    }
}

/// Guards against PageType confusion: allocator reuse after exchange
/// never leaves stale type state behind.
#[test]
fn exchange_recycles_frames_cleanly() {
    let mut r = rig(XenVersion::V4_8);
    let out_va = VirtAddr::new(5 * 4096); // data[5], mapped at l1 index 5
    for round in 0..8u64 {
        let n = r
            .hv
            .hc_memory_exchange(r.dom, &ExchangeArgs::new(vec![16 + (round % 4)], out_va))
            .unwrap();
        assert_eq!(n, 1);
    }
    for raw in 0..r.hv.mem().frame_count() {
        let info = r.hv.mem().info(Mfn::new(raw)).unwrap();
        if info.owner().is_none() && info.page_type() != PageType::Hypervisor {
            assert_eq!(info.page_type(), PageType::None, "frame {raw} leaked type");
        }
    }
}

/// The M2P table stays the exact inverse of every domain's P2M under
/// arbitrary legal and adversarial activity.
#[test]
fn m2p_is_inverse_of_p2m() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4242);
    for version in [XenVersion::V4_6, XenVersion::V4_8] {
        let mut r = rig(version);
        for _ in 0..48 {
            match rng.gen_range(0..3) {
                0 => {
                    let _ = r.hv.alloc_domain_frame(r.dom, PageType::Writable);
                }
                1 => {
                    let pfn = rng.gen_range(0..40u64);
                    let _ = r.hv.hc_decrease_reservation(r.dom, &[Pfn::new(pfn)], false);
                }
                _ => {
                    let gmfn = rng.gen_range(5..40u64);
                    let out = VirtAddr::new(5 * 4096);
                    let _ = r
                        .hv
                        .hc_memory_exchange(r.dom, &ExchangeArgs::new(vec![gmfn], out));
                }
            }
        }
        // Forward: every P2M entry has the matching M2P entry.
        let pairs: Vec<_> = r.hv.domain(r.dom).unwrap().p2m_iter().collect();
        for (pfn, mfn) in pairs {
            assert_eq!(r.hv.machine_to_phys(mfn), Some(pfn), "{version}: m2p({mfn})");
        }
        // Backward: every valid M2P entry appears in some domain's P2M.
        for raw in 0..r.hv.mem().frame_count() {
            let mfn = Mfn::new(raw);
            if let Some(pfn) = r.hv.machine_to_phys(mfn) {
                let backed = r
                    .hv
                    .domains()
                    .any(|d| d.p2m(pfn) == Some(mfn));
                assert!(backed, "{version}: stale m2p entry {mfn} -> {pfn}");
            }
        }
    }
}

/// Guests can read the M2P window but never write it, and the content
/// matches the hypervisor's own accounting.
#[test]
fn guest_reads_m2p_window_read_only() {
    let mut r = rig(XenVersion::V4_13);
    let data_mfn = r.data[0];
    let va = VirtAddr::new(
        hvsim::Hypervisor::M2P_VIRT_START + data_mfn.raw() * 8,
    );
    let mut buf = [0u8; 8];
    r.hv.guest_read_ro_window(r.dom, va, &mut buf).unwrap();
    let pfn = u64::from_le_bytes(buf);
    assert_eq!(r.hv.domain(r.dom).unwrap().p2m(Pfn::new(pfn)), Some(data_mfn));
    // Writes are vetoed by the layout.
    let err = r.hv.guest_write_va(r.dom, va, &buf).unwrap_err();
    assert!(matches!(err, HvError::GuestFault(_)));
    assert!(!r.hv.is_crashed(), "a vetoed M2P write must not crash the hypervisor");
}

/// User-mode (ring 3) accesses respect the USER bit at every level; the
/// XSA-182 PoC's final flourish — adding the USER flag so *user space*
/// can write the page directory — is meaningful because of this check.
#[test]
fn user_mode_respects_supervisor_only_mappings() {
    let mut r = rig(XenVersion::V4_6);
    // Map a supervisor-only page at l1 slot 20.
    let sup = PteFlags::PRESENT | PteFlags::RW;
    let (_, fresh) = r.hv.alloc_domain_frame(r.dom, PageType::Writable).unwrap();
    let ptr = r.l1.base().offset(20 * 8).raw();
    r.hv.hc_mmu_update(r.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(fresh, sup).raw())])
        .unwrap();
    let va = VirtAddr::new(20 * 4096);
    // Kernel mode works, user mode faults.
    let mut buf = [0u8; 4];
    r.hv.guest_read_va(r.dom, va, &mut buf).unwrap();
    let err = r.hv.guest_read_va_user(r.dom, va, &mut buf).unwrap_err();
    assert!(matches!(err, HvError::GuestFault(_)));
    assert!(r.hv.guest_write_va_user(r.dom, va, &buf).is_err());
    // Remap with USER: ring 3 can now access it.
    let usr = sup | PteFlags::USER;
    r.hv.hc_mmu_update(r.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(fresh, usr).raw())])
        .unwrap();
    r.hv.guest_read_va_user(r.dom, va, &mut buf).unwrap();
    r.hv.guest_write_va_user(r.dom, va, &buf).unwrap();
}
