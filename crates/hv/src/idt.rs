//! The simulated per-CPU Interrupt Descriptor Table.
//!
//! Each CPU's IDT lives in a hypervisor-owned machine frame, laid out as
//! 256 × 16-byte x86-64 interrupt gates. The frame's *linear* address (via
//! the direct map) is what the unprivileged `sidt` instruction leaks to PV
//! guests — which is how the XSA-212-crash PoC finds its target: it
//! overwrites the page-fault gate, so the next fault escalates to a double
//! fault and panics the hypervisor.

use hvsim_mem::VirtAddr;
use serde::{Deserialize, Serialize};

/// Number of gates in an IDT.
pub const IDT_ENTRIES: usize = 256;
/// Vector of the page-fault exception (#PF).
pub const PAGE_FAULT_VECTOR: u8 = 14;
/// Vector of the double-fault exception (#DF).
pub const DOUBLE_FAULT_VECTOR: u8 = 8;

/// One x86-64 interrupt gate, in unpacked form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdtEntry {
    /// Handler linear address.
    pub offset: VirtAddr,
    /// Code segment selector.
    pub selector: u16,
    /// Descriptor privilege level (0..=3).
    pub dpl: u8,
    /// Present bit.
    pub present: bool,
}

impl IdtEntry {
    /// Xen's hypervisor code selector.
    pub const XEN_CS: u16 = 0xe008;

    /// A present ring-0 gate for `handler`.
    pub fn gate(handler: VirtAddr) -> Self {
        Self {
            offset: handler,
            selector: Self::XEN_CS,
            dpl: 0,
            present: true,
        }
    }

    /// Packs the gate into its 16-byte hardware format.
    pub fn pack(&self) -> [u8; 16] {
        let off = self.offset.raw();
        let mut b = [0u8; 16];
        b[0..2].copy_from_slice(&(off as u16).to_le_bytes());
        b[2..4].copy_from_slice(&self.selector.to_le_bytes());
        b[4] = 0; // IST
        let type_attr = 0x0e | ((self.dpl & 0x3) << 5) | ((self.present as u8) << 7);
        b[5] = type_attr;
        b[6..8].copy_from_slice(&(((off >> 16) as u16).to_le_bytes()));
        b[8..12].copy_from_slice(&(((off >> 32) as u32).to_le_bytes()));
        b
    }

    /// Unpacks a gate from its 16-byte hardware format.
    pub fn unpack(b: &[u8; 16]) -> Self {
        let low = u16::from_le_bytes([b[0], b[1]]) as u64;
        let mid = u16::from_le_bytes([b[6], b[7]]) as u64;
        let high = u32::from_le_bytes([b[8], b[9], b[10], b[11]]) as u64;
        let offset = VirtAddr::new(low | (mid << 16) | (high << 32));
        Self {
            offset,
            selector: u16::from_le_bytes([b[2], b[3]]),
            dpl: (b[5] >> 5) & 0x3,
            present: b[5] & 0x80 != 0,
        }
    }

    /// Byte offset of a vector's gate within the IDT frame.
    pub fn slot_offset(vector: u8) -> usize {
        vector as usize * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gate_pack_unpack_roundtrip() {
        let gate = IdtEntry::gate(VirtAddr::new(0xffff_8300_0000_1230));
        let packed = gate.pack();
        assert_eq!(IdtEntry::unpack(&packed), gate);
        assert_eq!(packed[5], 0x8e, "present ring-0 interrupt gate");
    }

    #[test]
    fn dpl_and_present_encode() {
        let mut gate = IdtEntry::gate(VirtAddr::new(0x1000));
        gate.dpl = 3;
        gate.present = false;
        let u = IdtEntry::unpack(&gate.pack());
        assert_eq!(u.dpl, 3);
        assert!(!u.present);
    }

    #[test]
    fn slot_offsets() {
        assert_eq!(IdtEntry::slot_offset(0), 0);
        assert_eq!(IdtEntry::slot_offset(PAGE_FAULT_VECTOR), 224);
        assert_eq!(IdtEntry::slot_offset(255), 4080);
    }

    #[test]
    fn corrupted_gate_parses_as_garbage_not_panic() {
        // Overwriting a gate with an arbitrary u64 (the XSA-212-crash
        // write) must still unpack without panicking.
        let mut raw = [0u8; 16];
        raw[..8].copy_from_slice(&0xdead_beef_dead_beefu64.to_le_bytes());
        let e = IdtEntry::unpack(&raw);
        assert_ne!(e.offset, VirtAddr::new(0xdead_beef_dead_beef));
    }

    proptest! {
        #[test]
        fn prop_pack_unpack(off in any::<u64>(), sel in any::<u16>(), dpl in 0u8..4, present: bool) {
            let gate = IdtEntry { offset: VirtAddr::new(off & 0x0000_ffff_ffff_ffff), selector: sel, dpl, present };
            prop_assert_eq!(IdtEntry::unpack(&gate.pack()), gate);
        }
    }
}
