//! The management interface: `domctl`-style privileged domain control.
//!
//! The paper's intrusion-model instantiation lists "activities
//! originating from the management interface" as a triggering source the
//! prototype was being extended toward. This module provides that
//! surface: domain-control operations that only the privileged domain
//! may invoke — pause/unpause, quota changes, destruction. Erroneous
//! states of the *availability* family ("a domain you didn't pause is
//! paused") become injectable and monitorable.

use crate::audit::AuditEvent;
use crate::hypervisor::Hypervisor;
use crate::HvError;
use hvsim_mem::DomainId;
use serde::{Deserialize, Serialize};

/// A domain-control operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomctlOp {
    /// Stop scheduling the target domain.
    Pause,
    /// Resume the target domain.
    Unpause,
    /// Change the target's maximum page quota.
    SetMaxMem {
        /// New quota in pages.
        max_pages: u64,
    },
    /// Destroy the target domain.
    Destroy,
}

impl DomctlOp {
    /// The operation's name for the audit log.
    pub fn name(self) -> &'static str {
        match self {
            DomctlOp::Pause => "pause",
            DomctlOp::Unpause => "unpause",
            DomctlOp::SetMaxMem { .. } => "set_max_mem",
            DomctlOp::Destroy => "destroy",
        }
    }
}

impl Hypervisor {
    /// `HYPERVISOR_domctl`: privileged domain control.
    ///
    /// # Errors
    ///
    /// [`HvError::Perm`] unless the caller is the privileged domain (a
    /// domain may always pause/unpause itself, as in Xen);
    /// [`HvError::NoDomain`] for unknown targets.
    pub fn hc_domctl(
        &mut self,
        caller: DomainId,
        target: DomainId,
        op: DomctlOp,
    ) -> Result<u64, HvError> {
        self.bump_hypercall_count();
        if self.is_crashed() {
            return Err(HvError::Crashed);
        }
        let privileged = self.domain(caller)?.is_privileged();
        let self_directed = caller == target && matches!(op, DomctlOp::Pause | DomctlOp::Unpause);
        if !privileged && !self_directed {
            self.audit.push(AuditEvent::ValidationRejected {
                dom: caller,
                check: "domctl_privilege",
                detail: format!("{caller} attempted {} on {target}", op.name()),
            });
            return Err(HvError::Perm);
        }
        let result: Result<u64, HvError> = match op {
            DomctlOp::Pause => {
                self.domain_mut(target)?.set_paused(true);
                Ok(0)
            }
            DomctlOp::Unpause => {
                self.domain_mut(target)?.set_paused(false);
                Ok(0)
            }
            DomctlOp::SetMaxMem { max_pages } => {
                self.domain(target)?;
                self.alloc.set_quota(target, max_pages);
                Ok(0)
            }
            DomctlOp::Destroy => {
                if target == caller {
                    return Err(HvError::Inval);
                }
                self.domain_mut(target)?.kill();
                Ok(0)
            }
        };
        self.audit.push(AuditEvent::Hypercall {
            dom: caller,
            name: "domctl",
            result: match &result {
                Ok(v) => *v as i64,
                Err(e) => e.errno(),
            },
        });
        result
    }

    /// Injector-only: force a domain's scheduler state (paused flag)
    /// without any privilege check — the *availability* erroneous state
    /// a compromised management interface would leave behind.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSys`] when the injector is not compiled in.
    pub fn inject_pause_state(&mut self, target: DomainId, paused: bool) -> Result<(), HvError> {
        if !self.injector_enabled() {
            return Err(HvError::NoSys);
        }
        self.domain_mut(target)?.set_paused(paused);
        self.audit.push(AuditEvent::InjectorAccess {
            dom: target,
            addr: 0,
            len: 0,
            mode: if paused { "inject pause" } else { "inject unpause" },
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildConfig, XenVersion};

    fn setup() -> (Hypervisor, DomainId, DomainId) {
        let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_8).injector(true));
        let dom0 = hv.create_domain("dom0", true, 16).unwrap();
        let guest = hv.create_domain("guest", false, 16).unwrap();
        (hv, dom0, guest)
    }

    #[test]
    fn dom0_controls_guests() {
        let (mut hv, dom0, guest) = setup();
        hv.hc_domctl(dom0, guest, DomctlOp::Pause).unwrap();
        assert!(hv.domain(guest).unwrap().is_paused());
        hv.hc_domctl(dom0, guest, DomctlOp::Unpause).unwrap();
        assert!(!hv.domain(guest).unwrap().is_paused());
        hv.hc_domctl(dom0, guest, DomctlOp::SetMaxMem { max_pages: 8 }).unwrap();
        hv.hc_domctl(dom0, guest, DomctlOp::Destroy).unwrap();
        assert!(hv.domain(guest).unwrap().is_dead());
    }

    #[test]
    fn guests_cannot_control_others() {
        let (mut hv, dom0, guest) = setup();
        assert_eq!(hv.hc_domctl(guest, dom0, DomctlOp::Pause).unwrap_err(), HvError::Perm);
        assert_eq!(
            hv.hc_domctl(guest, dom0, DomctlOp::Destroy).unwrap_err(),
            HvError::Perm
        );
        // But may pause themselves.
        hv.hc_domctl(guest, guest, DomctlOp::Pause).unwrap();
        assert!(hv.domain(guest).unwrap().is_paused());
    }

    #[test]
    fn dom0_cannot_destroy_itself() {
        let (mut hv, dom0, _) = setup();
        assert_eq!(
            hv.hc_domctl(dom0, dom0, DomctlOp::Destroy).unwrap_err(),
            HvError::Inval
        );
    }

    #[test]
    fn inject_pause_state_bypasses_privilege() {
        let (mut hv, dom0, _) = setup();
        hv.inject_pause_state(dom0, true).unwrap();
        assert!(hv.domain(dom0).unwrap().is_paused());
        // Not available on stock builds.
        let mut stock = Hypervisor::new(BuildConfig::new(XenVersion::V4_8));
        let d = stock.create_domain("g", false, 16).unwrap();
        assert_eq!(stock.inject_pause_state(d, true).unwrap_err(), HvError::NoSys);
    }

    #[test]
    fn privilege_rejections_audited() {
        let (mut hv, dom0, guest) = setup();
        let _ = hv.hc_domctl(guest, dom0, DomctlOp::Pause);
        assert!(hv.audit().events().iter().any(|e| matches!(
            e,
            AuditEvent::ValidationRejected { check: "domctl_privilege", .. }
        )));
    }
}
