//! Hypervisor versions and their vulnerability / hardening configuration.

use hvsim_paging::{MemoryLayout, WalkPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three Xen versions used in the paper's experiments.
///
/// 4.6 is the vulnerable baseline; 4.8 has the use-case vulnerabilities
/// fixed; 4.13 additionally carries the XSA-213-followup hardening (the
/// "security improvements applied to Xen" the paper credits for handling
/// two of the four injected erroneous states).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum XenVersion {
    /// Xen 4.6 — vulnerable to XSA-148, XSA-182 and XSA-212.
    V4_6,
    /// Xen 4.8 — the use-case vulnerabilities are fixed, classic layout.
    V4_8,
    /// Xen 4.13 — fixed and hardened (linear page-table mapping removed).
    V4_13,
}

impl XenVersion {
    /// All versions, in release order.
    pub const ALL: [XenVersion; 3] = [XenVersion::V4_6, XenVersion::V4_8, XenVersion::V4_13];

    /// The vulnerability configuration compiled into this version.
    pub fn vulns(self) -> VulnConfig {
        match self {
            XenVersion::V4_6 => VulnConfig {
                xsa148_l2_pse_unchecked: true,
                xsa182_l4_fastpath_unrestricted: true,
                xsa212_exchange_unchecked_handle: true,
                xsa387_gnttab_v2_status_leak: true,
                xsa393_decrease_reservation_keeps_mapping: true,
                xsa_evtchn_unvalidated_send: true,
            },
            XenVersion::V4_8 | XenVersion::V4_13 => VulnConfig::all_fixed(),
        }
    }

    /// The virtual memory layout of this version.
    pub fn layout(self) -> MemoryLayout {
        match self {
            XenVersion::V4_6 | XenVersion::V4_8 => MemoryLayout::classic(),
            XenVersion::V4_13 => MemoryLayout::hardened(),
        }
    }

    /// The page-walk policy of this version.
    pub fn walk_policy(self) -> WalkPolicy {
        WalkPolicy {
            forbid_writable_selfmap: self.layout().is_hardened(),
        }
    }

    /// `true` if this version still contains the paper's use-case
    /// vulnerabilities.
    pub fn is_vulnerable(self) -> bool {
        self == XenVersion::V4_6
    }
}

impl fmt::Display for XenVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            XenVersion::V4_6 => "4.6",
            XenVersion::V4_8 => "4.8",
            XenVersion::V4_13 => "4.13",
        })
    }
}

/// Individual vulnerability toggles.
///
/// Each flag names the *check that is missing* in vulnerable builds, so
/// the validation code reads as "if the check is compiled in, enforce it".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnConfig {
    /// XSA-148: `mmu_update` accepts L2 entries with the PSE bit without
    /// validating the superpage's frame range, letting a PV guest map a
    /// 2 MiB window over arbitrary machine memory — including its own
    /// page-table frames, yielding a guest-writable page table.
    pub xsa148_l2_pse_unchecked: bool,
    /// XSA-182: the L4 `mmu_update` fast path skips re-validation for any
    /// flags-only change, letting a guest add `RW` to a self-referencing
    /// L4 entry (a writable linear self-map of its own page tables).
    pub xsa182_l4_fastpath_unrestricted: bool,
    /// XSA-212: `memory_exchange` does not validate the guest-supplied
    /// output handle, so the hypervisor writes exchanged MFNs to an
    /// attacker-encoded address with full hypervisor privileges.
    pub xsa212_exchange_unchecked_handle: bool,
    /// XSA-387-style: switching grant tables v2 → v1 fails to release the
    /// v2 status frames, leaving the guest with a reference to Xen pages.
    pub xsa387_gnttab_v2_status_leak: bool,
    /// XSA-393-style: `decrease_reservation` frees the frame but fails to
    /// remove the guest's still-live mapping of it.
    pub xsa393_decrease_reservation_keeps_mapping: bool,
    /// Interrupt-path hole (extension IM substrate): `evtchn_send` trusts
    /// the caller's port number without checking the binding, letting a
    /// guest raise arbitrary events on arbitrary domains.
    pub xsa_evtchn_unvalidated_send: bool,
}

impl VulnConfig {
    /// Every vulnerability fixed (all checks compiled in).
    pub const fn all_fixed() -> Self {
        Self {
            xsa148_l2_pse_unchecked: false,
            xsa182_l4_fastpath_unrestricted: false,
            xsa212_exchange_unchecked_handle: false,
            xsa387_gnttab_v2_status_leak: false,
            xsa393_decrease_reservation_keeps_mapping: false,
            xsa_evtchn_unvalidated_send: false,
        }
    }

    /// Every vulnerability present.
    pub const fn all_vulnerable() -> Self {
        Self {
            xsa148_l2_pse_unchecked: true,
            xsa182_l4_fastpath_unrestricted: true,
            xsa212_exchange_unchecked_handle: true,
            xsa387_gnttab_v2_status_leak: true,
            xsa393_decrease_reservation_keeps_mapping: true,
            xsa_evtchn_unvalidated_send: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_vulnerability_matrix() {
        assert!(XenVersion::V4_6.vulns().xsa212_exchange_unchecked_handle);
        assert!(XenVersion::V4_6.vulns().xsa148_l2_pse_unchecked);
        assert!(XenVersion::V4_6.is_vulnerable());
        for v in [XenVersion::V4_8, XenVersion::V4_13] {
            assert_eq!(v.vulns(), VulnConfig::all_fixed());
            assert!(!v.is_vulnerable());
        }
    }

    #[test]
    fn only_4_13_is_hardened() {
        assert!(!XenVersion::V4_6.layout().is_hardened());
        assert!(!XenVersion::V4_8.layout().is_hardened());
        assert!(XenVersion::V4_13.layout().is_hardened());
        assert!(XenVersion::V4_13.walk_policy().forbid_writable_selfmap);
        assert!(!XenVersion::V4_8.walk_policy().forbid_writable_selfmap);
    }

    #[test]
    fn display_matches_paper_labels() {
        let labels: Vec<String> = XenVersion::ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(labels, ["4.6", "4.8", "4.13"]);
    }

    #[test]
    fn release_ordering() {
        assert!(XenVersion::V4_6 < XenVersion::V4_8);
        assert!(XenVersion::V4_8 < XenVersion::V4_13);
    }
}
