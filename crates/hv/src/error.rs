//! Hypervisor error type with Xen-style errno mapping.

use hvsim_mem::MemError;
use hvsim_paging::PageFault;
use std::error::Error;
use std::fmt;

/// Errors returned by hypercalls and hypervisor operations.
///
/// The variants mirror the errno values Xen hypercalls return; the paper's
/// experiments observe them directly (e.g. the XSA-212 exploit "fails with
/// a return code of `-EFAULT`" on fixed versions).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HvError {
    /// `-EFAULT`: bad address (the canonical "exploit fails on a fixed
    /// version" return code).
    Fault,
    /// `-EINVAL`: validation rejected the request.
    Inval,
    /// `-EPERM`: the calling domain lacks the required privilege.
    Perm,
    /// `-ENOMEM`: out of frames or quota.
    NoMem,
    /// `-ENOSYS`: hypercall not compiled into this build (e.g. the
    /// injector hypercall on a stock build).
    NoSys,
    /// `-ESRCH`: no such domain.
    NoDomain,
    /// `-EBUSY`: resource has outstanding references.
    Busy,
    /// The hypervisor has crashed; no further hypercalls are served.
    Crashed,
    /// A guest-context page fault surfaced through a hypercall path.
    GuestFault(PageFault),
    /// An internal machine-memory error (bad frame, out of range).
    Mem(MemError),
}

impl HvError {
    /// The Xen/Linux errno value for this error (negative, as returned in
    /// hypercall result registers). [`HvError::Crashed`] maps to `-EIO`.
    pub fn errno(&self) -> i64 {
        match self {
            HvError::Fault | HvError::GuestFault(_) => -14,
            HvError::Inval => -22,
            HvError::Perm => -1,
            HvError::NoMem => -12,
            HvError::NoSys => -38,
            HvError::NoDomain => -3,
            HvError::Busy => -16,
            HvError::Crashed => -5,
            HvError::Mem(_) => -14,
        }
    }

    /// `true` for `-EFAULT`-class errors (bad address), the signature the
    /// paper reports for fixed-version exploit attempts.
    pub fn is_fault(&self) -> bool {
        self.errno() == -14
    }

    /// `true` for resource-exhaustion errors that a retry may clear
    /// (`-ENOMEM`, `-EBUSY`). The campaign's bounded retry policy uses
    /// this to distinguish transient boot failures from deterministic
    /// ones; everything else fails the cell immediately.
    pub fn is_transient(&self) -> bool {
        matches!(self, HvError::NoMem | HvError::Busy)
    }
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::Fault => f.write_str("bad address (-EFAULT)"),
            HvError::Inval => f.write_str("invalid argument (-EINVAL)"),
            HvError::Perm => f.write_str("operation not permitted (-EPERM)"),
            HvError::NoMem => f.write_str("out of memory (-ENOMEM)"),
            HvError::NoSys => f.write_str("hypercall not implemented (-ENOSYS)"),
            HvError::NoDomain => f.write_str("no such domain (-ESRCH)"),
            HvError::Busy => f.write_str("resource busy (-EBUSY)"),
            HvError::Crashed => f.write_str("hypervisor has crashed"),
            HvError::GuestFault(pf) => write!(f, "guest fault: {pf}"),
            HvError::Mem(e) => write!(f, "machine memory error: {e}"),
        }
    }
}

impl Error for HvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HvError::GuestFault(pf) => Some(pf),
            HvError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for HvError {
    fn from(e: MemError) -> Self {
        HvError::Mem(e)
    }
}

impl From<PageFault> for HvError {
    fn from(pf: PageFault) -> Self {
        HvError::GuestFault(pf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvsim_mem::VirtAddr;
    use hvsim_paging::{AccessKind, PageFaultKind};

    #[test]
    fn errno_values_match_xen() {
        assert_eq!(HvError::Fault.errno(), -14);
        assert_eq!(HvError::Inval.errno(), -22);
        assert_eq!(HvError::NoSys.errno(), -38);
        assert_eq!(HvError::NoMem.errno(), -12);
        assert!(HvError::Fault.is_fault());
        assert!(!HvError::Inval.is_fault());
    }

    #[test]
    fn transient_errors_are_the_retryable_ones() {
        assert!(HvError::NoMem.is_transient());
        assert!(HvError::Busy.is_transient());
        assert!(!HvError::Fault.is_transient());
        assert!(!HvError::Crashed.is_transient());
        assert!(!HvError::NoSys.is_transient());
    }

    #[test]
    fn guest_fault_wraps_page_fault() {
        let pf = PageFault::new(VirtAddr::new(0x1000), AccessKind::Write, PageFaultKind::NotPresent { level: 1 });
        let err: HvError = pf.clone().into();
        assert!(err.is_fault());
        assert!(err.to_string().contains("guest fault"));
        assert!(Error::source(&err).is_some());
        assert_eq!(err, HvError::GuestFault(pf));
    }

    #[test]
    fn mem_error_converts() {
        let err: HvError = MemError::NoFreeFrames.into();
        assert_eq!(err.errno(), -14);
        assert!(err.to_string().contains("machine memory"));
    }
}
