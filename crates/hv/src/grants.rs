//! Minimal grant tables, enough to express the "keep page reference"
//! erroneous-state family.
//!
//! Xen grant tables let a domain share pages with another domain. Version 2
//! adds *status frames* owned by Xen. The paper's motivating examples
//! XSA-387 ("status pages should be released to Xen when a guest switches
//! from grant table v2 to v1") and XSA-393 (`XENMEM_decrease_reservation`
//! after a cache-maintenance operation) both leave a guest holding a
//! reference to pages it should have lost — the *Keep Page Reference*
//! abusive functionality of §IV-B.

use hvsim_mem::{DomainId, Mfn};
use serde::{Deserialize, Serialize};

/// Grant table interface version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantTableVersion {
    /// Classic v1 layout (no status frames).
    V1,
    /// v2 layout with separate status frames.
    V2,
}

/// One grant entry: `domid` may map `frame`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantEntry {
    /// Domain the grant is extended to.
    pub domid: DomainId,
    /// The granted frame.
    pub frame: Mfn,
    /// Whether the grantee may write.
    pub writable: bool,
    /// Whether the grant is currently mapped by the grantee.
    pub mapped: bool,
}

/// Per-domain grant table state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GrantTable {
    version: GrantTableVersion,
    entries: Vec<GrantEntry>,
    status_frames: Vec<Mfn>,
}

impl GrantTable {
    /// A fresh v1 grant table with no entries.
    pub fn new() -> Self {
        Self {
            version: GrantTableVersion::V1,
            entries: Vec::new(),
            status_frames: Vec::new(),
        }
    }

    /// Current interface version.
    pub fn version(&self) -> GrantTableVersion {
        self.version
    }

    pub(crate) fn set_version(&mut self, version: GrantTableVersion) {
        self.version = version;
    }

    /// All grant entries.
    pub fn entries(&self) -> &[GrantEntry] {
        &self.entries
    }

    /// Adds a grant entry, returning its reference number.
    pub(crate) fn add_entry(&mut self, entry: GrantEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Looks up a grant entry by reference.
    pub fn entry(&self, gref: usize) -> Option<&GrantEntry> {
        self.entries.get(gref)
    }

    pub(crate) fn entry_mut(&mut self, gref: usize) -> Option<&mut GrantEntry> {
        self.entries.get_mut(gref)
    }

    /// Status frames currently held (v2 only; should be empty after a
    /// switch back to v1 — XSA-387 is exactly these frames leaking).
    pub fn status_frames(&self) -> &[Mfn] {
        &self.status_frames
    }

    pub(crate) fn add_status_frame(&mut self, mfn: Mfn) {
        self.status_frames.push(mfn);
    }

    pub(crate) fn take_status_frames(&mut self) -> Vec<Mfn> {
        std::mem::take(&mut self.status_frames)
    }
}

impl Default for GrantTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_v1_and_empty() {
        let t = GrantTable::new();
        assert_eq!(t.version(), GrantTableVersion::V1);
        assert!(t.entries().is_empty());
        assert!(t.status_frames().is_empty());
    }

    #[test]
    fn entries_get_sequential_refs() {
        let mut t = GrantTable::new();
        let e = GrantEntry {
            domid: DomainId::new(2),
            frame: Mfn::new(7),
            writable: true,
            mapped: false,
        };
        assert_eq!(t.add_entry(e), 0);
        assert_eq!(t.add_entry(e), 1);
        assert_eq!(t.entry(1), Some(&e));
        assert_eq!(t.entry(2), None);
    }

    #[test]
    fn status_frames_take_empties() {
        let mut t = GrantTable::new();
        t.set_version(GrantTableVersion::V2);
        t.add_status_frame(Mfn::new(9));
        t.add_status_frame(Mfn::new(10));
        let taken = t.take_status_frames();
        assert_eq!(taken, vec![Mfn::new(9), Mfn::new(10)]);
        assert!(t.status_frames().is_empty());
    }
}
