//! Hypercall request types and the uniform dispatcher.
//!
//! Guests may either call the typed methods on
//! [`Hypervisor`](crate::Hypervisor) directly or funnel everything through
//! [`Hypervisor::dispatch`] with a [`Hypercall`] value — the latter is what
//! the benchmark harness and the intrusion-injection campaign use, because
//! it gives one audit point and one latency-measurement point per call.

use crate::exchange::ExchangeArgs;
use crate::grants::GrantTableVersion;
use crate::injector::AccessMode;
use hvsim_mem::{Pfn, VirtAddr};
use serde::{Deserialize, Serialize};

/// One `mmu_update` request: write `val` into the page-table entry at
/// machine byte address `ptr`.
///
/// As in Xen, the low two bits of `ptr` encode the update type; only
/// `MMU_NORMAL_PT_UPDATE` (0) is modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuUpdate {
    /// Machine byte address of the target PTE (low 2 bits: update type).
    pub ptr: u64,
    /// The raw new entry value.
    pub val: u64,
}

impl MmuUpdate {
    /// A normal page-table update.
    pub fn normal(ptr: u64, val: u64) -> Self {
        Self { ptr, val }
    }
}

/// Extended MMU operations (`HYPERVISOR_mmuext_op`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmuExtOp {
    /// Pin a frame as a level-`level` page table, validating its contents.
    Pin {
        /// Page-table level (1..=4).
        level: u8,
        /// The frame to pin.
        mfn: hvsim_mem::Mfn,
    },
    /// Unpin a previously pinned page-table frame.
    Unpin {
        /// The frame to unpin.
        mfn: hvsim_mem::Mfn,
    },
    /// Install a new top-level page table for the calling domain.
    NewBaseptr {
        /// The L4 frame to load.
        mfn: hvsim_mem::Mfn,
    },
}

/// A hypercall request, for uniform dispatch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Hypercall {
    /// Batched page-table updates.
    MmuUpdate(Vec<MmuUpdate>),
    /// Extended MMU operations.
    MmuExtOp(Vec<MmuExtOp>),
    /// Single-entry leaf update addressed by virtual address.
    UpdateVaMapping {
        /// The virtual address whose L1 entry is updated.
        va: VirtAddr,
        /// The raw new entry value.
        val: u64,
    },
    /// `XENMEM_exchange`.
    MemoryExchange(ExchangeArgs),
    /// `XENMEM_decrease_reservation`.
    DecreaseReservation {
        /// Pseudo-physical frames to release.
        pfns: Vec<Pfn>,
        /// Whether a cache-maintenance op preceded the call (the XSA-393
        /// trigger condition).
        after_cache_maintenance: bool,
    },
    /// `GNTTABOP_set_version`.
    GrantTableSetVersion(GrantTableVersion),
    /// Register guest trap handlers.
    SetTrapTable(Vec<(u8, VirtAddr)>),
    /// Emit a line on the hypervisor console.
    ConsoleIo(String),
    /// The paper's injector hypercall (present only in injector builds).
    ///
    /// `data` is an in/out buffer: filled on reads, consumed on writes.
    ArbitraryAccess {
        /// Target address (linear or physical per `mode`).
        addr: u64,
        /// In/out data buffer; its length is the access length.
        data: Vec<u8>,
        /// Operation and address mode.
        mode: AccessMode,
    },
}

impl Hypercall {
    /// The hypercall's name, as recorded in the audit log.
    pub fn name(&self) -> &'static str {
        match self {
            Hypercall::MmuUpdate(_) => "mmu_update",
            Hypercall::MmuExtOp(_) => "mmuext_op",
            Hypercall::UpdateVaMapping { .. } => "update_va_mapping",
            Hypercall::MemoryExchange(_) => "memory_exchange",
            Hypercall::DecreaseReservation { .. } => "decrease_reservation",
            Hypercall::GrantTableSetVersion(_) => "grant_table_set_version",
            Hypercall::SetTrapTable(_) => "set_trap_table",
            Hypercall::ConsoleIo(_) => "console_io",
            Hypercall::ArbitraryAccess { .. } => "arbitrary_access",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Hypercall::MmuUpdate(vec![]).name(), "mmu_update");
        assert_eq!(
            Hypercall::ArbitraryAccess {
                addr: 0,
                data: vec![],
                mode: AccessMode::LinearRead,
            }
            .name(),
            "arbitrary_access"
        );
    }

    #[test]
    fn mmu_update_normal_constructor() {
        let u = MmuUpdate::normal(0x1000, 0x2003);
        assert_eq!(u.ptr, 0x1000);
        assert_eq!(u.val, 0x2003);
    }
}
