//! A deterministic paravirtualized hypervisor simulator, modelled on Xen's
//! x86-64 PV interface.
//!
//! `hvsim` is the system-under-test substrate for the intrusion-injection
//! reproduction: a hypervisor whose memory-management state machine is rich
//! enough that the real Xen exploit strategies (XSA-148, XSA-182, XSA-212)
//! and the paper's injector hypercall both *work mechanically*, not as
//! hard-coded outcomes.
//!
//! The simulator provides:
//!
//! * **domains** with machine-frame ownership, pseudo-physical (P2M) maps,
//!   per-domain page quotas and PV page tables ([`Domain`]),
//! * **hypercalls** — `mmu_update`, `memory_exchange`,
//!   `update_va_mapping`, `mmuext_op` (pin/unpin/new-baseptr),
//!   grant-table ops, `decrease_reservation`, `set_trap_table`, console
//!   I/O — each validating its arguments the way the corresponding Xen
//!   version does ([`Hypervisor`]),
//! * **page-type validation** (`get_page_type`-style promotion rules and
//!   per-level PTE validation) with the three reproduced vulnerabilities
//!   as faithful *omissions* of specific checks ([`XenVersion`],
//!   [`VulnConfig`]),
//! * a simulated **IDT** per CPU with page-fault/double-fault escalation,
//!   so corrupting the #PF vector crashes the hypervisor the same way the
//!   XSA-212-crash PoC does,
//! * the paper's **injector hypercall**
//!   [`Hypervisor::hc_arbitrary_access`] — compiled in only when
//!   [`BuildConfig::injector_enabled`] is set, mirroring the authors'
//!   patched Xen builds,
//! * an **audit log** recording validation rejections, PTE writes,
//!   exceptions and injector activity, used by monitors to compare
//!   erroneous states across runs.
//!
//! # Versions
//!
//! [`XenVersion`] selects which vulnerabilities exist and whether the
//! post-XSA-213-followup hardened memory layout is used:
//!
//! | version | XSA-148 | XSA-182 | XSA-212 | hardened layout |
//! |---------|---------|---------|---------|-----------------|
//! | 4.6     | vulnerable | vulnerable | vulnerable | no |
//! | 4.8     | fixed   | fixed   | fixed   | no |
//! | 4.13    | fixed   | fixed   | fixed   | **yes** |
//!
//! # Example
//!
//! ```
//! use hvsim::{BuildConfig, Hypervisor, XenVersion};
//!
//! # fn main() -> Result<(), hvsim::HvError> {
//! let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_6).injector(true));
//! let dom = hv.create_domain("guest", false, 64)?;
//! assert!(!hv.domain(dom)?.is_privileged());
//! # Ok(())
//! # }
//! ```

// Hot hypercall paths must return `HvError` instead of panicking: a
// panicking hypervisor aborts a whole assessment campaign. The few
// remaining `expect`s are boot-time invariant checks, each annotated
// with an `#[allow]` and a justification at the use site. Tests keep
// their unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod audit;
mod domain;
mod domctl;
mod error;
mod events;
mod exchange;
mod grants;
mod hypercall;
mod hypervisor;
mod idt;
mod injector;
mod invariants;
mod validate;
mod version;

pub use audit::{AuditEvent, AuditLog};
pub use domain::{Domain, StartInfo, START_INFO_MAGIC};
pub use domctl::DomctlOp;
pub use error::HvError;
pub use events::{EventChannelOp, PortState, EVTCHN_PORTS, MASK_OFFSET, PENDING_OFFSET};
pub use exchange::ExchangeArgs;
pub use grants::{GrantEntry, GrantTable, GrantTableVersion};
pub use hypercall::{Hypercall, MmuExtOp, MmuUpdate};
pub use hypervisor::{BuildConfig, CrashInfo, Hypervisor, InterruptDispatch};
pub use idt::{IdtEntry, DOUBLE_FAULT_VECTOR, IDT_ENTRIES, PAGE_FAULT_VECTOR};
pub use injector::AccessMode;
pub use invariants::InvariantViolation;
pub use version::{VulnConfig, XenVersion};

// Re-export the vocabulary types users inevitably need alongside this crate.
pub use hvsim_mem::{
    DomainId, MachineMemory, MemError, Mfn, PageType, Pfn, PhysAddr, SnapshotStats, VirtAddr,
};
pub use hvsim_paging::{
    AccessKind, MemoryLayout, PageFault, PageFaultKind, PageTableEntry, PteFlags, TlbStats,
    WalkPolicy,
};
