//! Whole-system PV memory-safety invariant auditing.
//!
//! Xen's PV security reduces to a handful of global invariants over the
//! page-type system. This module checks them *exhaustively* over machine
//! memory — the simulator-side analogue of the paper's "check if an
//! erroneous state is detectable, understandable, interpreted and
//! considered by the system as undesired behavior" (§III-C). Monitors
//! use it to detect erroneous states that have not (yet) caused an
//! observable violation.

use crate::hypervisor::Hypervisor;
use crate::validate::L4_HYPERVISOR_SLOT;
use hvsim_mem::{DomainId, Mfn, PageType};
use hvsim_paging::{PageTableEntry, PteFlags, ENTRIES_PER_TABLE};
use serde::Serialize;
use std::fmt;

/// One violated PV invariant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// An L1 entry maps a page-table (or descriptor) frame writable —
    /// the core PV invariant, broken by XSA-148-style states.
    WritableMappingOfPageTable {
        /// The L1 table holding the entry.
        table: Mfn,
        /// Entry index.
        index: usize,
        /// The page-table frame exposed.
        target: Mfn,
    },
    /// A superpage (PSE) entry whose 2 MiB span covers page-table or
    /// hypervisor frames.
    SuperpageOverPrivilegedFrames {
        /// The L2 table holding the entry.
        table: Mfn,
        /// Entry index.
        index: usize,
        /// First privileged frame covered.
        covers: Mfn,
    },
    /// A writable self-referencing L4 entry (XSA-182's state).
    WritableSelfMap {
        /// The L4 frame.
        table: Mfn,
        /// Entry index.
        index: usize,
    },
    /// A guest-reserved L4 slot (≥ 256) points somewhere other than the
    /// shared hypervisor L3.
    HypervisorSlotHijacked {
        /// The L4 frame.
        table: Mfn,
        /// Slot index.
        index: usize,
        /// Where it points.
        target: Mfn,
    },
    /// A page-table entry targets a frame owned by another domain
    /// without a grant.
    ForeignFrameMapped {
        /// The table's owner.
        owner: DomainId,
        /// The table frame.
        table: Mfn,
        /// Entry index.
        index: usize,
        /// The foreign frame.
        target: Mfn,
    },
    /// A domain retains access to a frame it does not own (keep page
    /// reference).
    StaleRetainedAccess {
        /// The domain holding stale access.
        dom: DomainId,
        /// The frame.
        mfn: Mfn,
    },
    /// An IDT gate points outside the hypervisor's handler stubs.
    CorruptIdtGate {
        /// CPU index.
        cpu: usize,
        /// Vector number.
        vector: u8,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::WritableMappingOfPageTable { table, index, target } => write!(
                f,
                "L1 {table}[{index}] maps page-table frame {target} writable"
            ),
            InvariantViolation::SuperpageOverPrivilegedFrames { table, index, covers } => write!(
                f,
                "PSE entry {table}[{index}] covers privileged frame {covers}"
            ),
            InvariantViolation::WritableSelfMap { table, index } => {
                write!(f, "writable self-map at L4 {table}[{index}]")
            }
            InvariantViolation::HypervisorSlotHijacked { table, index, target } => {
                write!(f, "hypervisor L4 slot {table}[{index}] hijacked -> {target}")
            }
            InvariantViolation::ForeignFrameMapped { owner, table, index, target } => write!(
                f,
                "{owner}'s table {table}[{index}] maps foreign frame {target}"
            ),
            InvariantViolation::StaleRetainedAccess { dom, mfn } => {
                write!(f, "{dom} retains stale access to {mfn}")
            }
            InvariantViolation::CorruptIdtGate { cpu, vector } => {
                write!(f, "IDT gate cpu{cpu}/vec{vector} corrupted")
            }
        }
    }
}

impl Hypervisor {
    /// Audits every PV memory-safety invariant over all installed
    /// frames, all domains and all IDTs. An empty result means the
    /// system is in a (memory-wise) architecturally sound state.
    ///
    /// This is intentionally exhaustive rather than fast; campaigns run
    /// it between injections, not per hypercall.
    pub fn audit_pv_invariants(&self) -> Vec<InvariantViolation> {
        let mut found = Vec::new();
        let frames = self.mem.frame_count();
        for raw in 0..frames {
            let mfn = Mfn::new(raw);
            let info = match self.mem.info(mfn) {
                Ok(i) => i.clone(),
                Err(_) => continue,
            };
            let Some(level) = info.page_type().page_table_level() else {
                continue;
            };
            let owner = info.owner();
            for index in 0..ENTRIES_PER_TABLE {
                let Ok(val) = self.mem.read_u64(mfn.base().offset(index as u64 * 8)) else {
                    continue;
                };
                let entry = PageTableEntry::from_raw(val);
                if !entry.is_present() {
                    continue;
                }
                let target = entry.mfn();
                let rw = entry.flags().contains(PteFlags::RW);
                match level {
                    1 => {
                        if rw {
                            if let Ok(tinfo) = self.mem.info(target) {
                                if tinfo.page_type().is_page_table()
                                    || tinfo.page_type() == PageType::SegDesc
                                {
                                    found.push(InvariantViolation::WritableMappingOfPageTable {
                                        table: mfn,
                                        index,
                                        target,
                                    });
                                }
                            }
                        }
                        self.check_foreign(owner, mfn, index, target, &mut found);
                    }
                    2 if entry.flags().contains(PteFlags::PSE) => {
                        // A 2 MiB superpage covers 512 frames; find the
                        // first privileged one it exposes.
                        for off in 0..512u64 {
                            let covered = target.add(off);
                            let Ok(cinfo) = self.mem.info(covered) else { break };
                            let privileged = cinfo.page_type().is_page_table()
                                || cinfo.page_type() == PageType::Hypervisor
                                || (owner.is_some() && cinfo.owner() != owner);
                            if privileged {
                                found.push(InvariantViolation::SuperpageOverPrivilegedFrames {
                                    table: mfn,
                                    index,
                                    covers: covered,
                                });
                                break;
                            }
                        }
                    }
                    4 => {
                        if index >= L4_HYPERVISOR_SLOT {
                            if target != self.shared_l3_mfn() {
                                found.push(InvariantViolation::HypervisorSlotHijacked {
                                    table: mfn,
                                    index,
                                    target,
                                });
                            }
                            continue;
                        }
                        if target == mfn && rw {
                            found.push(InvariantViolation::WritableSelfMap { table: mfn, index });
                            continue;
                        }
                        self.check_foreign(owner, mfn, index, target, &mut found);
                    }
                    _ => {
                        self.check_foreign(owner, mfn, index, target, &mut found);
                    }
                }
            }
        }
        // Stale retained access across all domains.
        for dom in self.domains() {
            for mfn in dom.retained_frames() {
                let owner = self.mem.info(mfn).ok().and_then(|i| i.owner());
                if owner != Some(dom.id()) {
                    found.push(InvariantViolation::StaleRetainedAccess {
                        dom: dom.id(),
                        mfn,
                    });
                }
            }
        }
        // IDT gate integrity.
        for cpu in 0..self.cpu_count() {
            for vector in 0..32u8 {
                if let Ok(gate) = self.idt_entry(cpu, vector) {
                    if !gate.present || !self.is_valid_handler(gate.offset) {
                        found.push(InvariantViolation::CorruptIdtGate { cpu, vector });
                    }
                }
            }
        }
        found
    }

    fn check_foreign(
        &self,
        owner: Option<DomainId>,
        table: Mfn,
        index: usize,
        target: Mfn,
        found: &mut Vec<InvariantViolation>,
    ) {
        let Some(owner) = owner else { return };
        let Ok(tinfo) = self.mem.info(target) else { return };
        let target_owner = tinfo.owner();
        if target_owner == Some(owner) || tinfo.page_type() == PageType::Hypervisor {
            return;
        }
        let granted = self
            .domain(owner)
            .map(|d| d.retains_access(target))
            .unwrap_or(false);
        if !granted {
            found.push(InvariantViolation::ForeignFrameMapped {
                owner,
                table,
                index,
                target,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildConfig, XenVersion};

    #[test]
    fn fresh_hypervisor_is_sound() {
        let hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_6));
        assert!(hv.audit_pv_invariants().is_empty());
    }

    #[test]
    fn idt_corruption_detected() {
        let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_6).injector(true));
        let dom = hv.create_domain("g", false, 16).unwrap();
        let gate_va = hv.sidt(0).offset(14 * 16);
        let mut garbage = 0x4141u64.to_le_bytes().to_vec();
        hv.hc_arbitrary_access(dom, gate_va.raw(), &mut garbage, crate::AccessMode::LinearWrite)
            .unwrap();
        let violations = hv.audit_pv_invariants();
        assert!(violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::CorruptIdtGate { cpu: 0, vector: 14 })));
    }

    #[test]
    fn stale_retained_access_detected() {
        let mut hv = Hypervisor::new(BuildConfig::new(XenVersion::V4_13).injector(true));
        let dom = hv.create_domain("g", false, 16).unwrap();
        let dom2 = hv.create_domain("h", false, 16).unwrap();
        let foreign = hv.domain(dom2).unwrap().p2m(hvsim_mem::Pfn::new(3)).unwrap();
        hv.inject_retain_access(dom, foreign).unwrap();
        let violations = hv.audit_pv_invariants();
        assert!(violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::StaleRetainedAccess { .. })));
    }

    #[test]
    fn display_renders() {
        let v = InvariantViolation::WritableSelfMap {
            table: Mfn::new(7),
            index: 42,
        };
        assert!(v.to_string().contains("writable self-map"));
    }
}
