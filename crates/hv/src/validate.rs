//! Page-table validation: the MMU hypercall family.
//!
//! This module is the security heart of the simulator. Xen's PV memory
//! safety rests on one invariant: **a guest must never hold a writable
//! mapping of a page-table frame**. Every `mmu_update` /
//! `update_va_mapping` / pin operation funnels through the validation in
//! this file, and each of the reproduced vulnerabilities is a *specific
//! missing check* here:
//!
//! * **XSA-148** — the L2 PSE path accepts superpage entries without any
//!   frame-range or ownership validation,
//! * **XSA-182** — the L4 fast path accepts *any* flags-only change
//!   (including adding `RW` to a self-referencing entry) without
//!   re-validation.
//!
//! Fixed builds enforce the full rules; the difference is driven entirely
//! by [`VulnConfig`](crate::VulnConfig), never by exploit-specific code.

use crate::audit::{AuditEvent, WriteOrigin};
use crate::hypercall::{MmuExtOp, MmuUpdate};
use crate::hypervisor::Hypervisor;
use crate::HvError;
use hvsim_mem::{DomainId, Mfn, PageType, VirtAddr};
use hvsim_paging::{pte_slot, PageTableEntry, PteFlags, ENTRIES_PER_TABLE};
#[cfg(test)]
use hvsim_paging::VaIndices;
use std::collections::BTreeSet;

/// First L4 slot reserved for the hypervisor half of the address space.
pub(crate) const L4_HYPERVISOR_SLOT: usize = 256;

impl Hypervisor {
    /// `HYPERVISOR_mmu_update`: batched page-table updates, each
    /// validated per the simulated version's rules.
    ///
    /// # Errors
    ///
    /// Stops at the first rejected update with its error; prior updates
    /// remain applied (as in Xen).
    pub fn hc_mmu_update(&mut self, dom: DomainId, updates: &[MmuUpdate]) -> Result<u64, HvError> {
        self.bump_hypercall_count();
        self.ensure_alive(dom)?;
        // Whole-batch generation scope: every entry is still validated
        // and applied one at a time (per-entry audit events, Xen's
        // stop-at-first-failure semantics, prior updates left applied),
        // but the page-table write generation — and the TLB flush it
        // drives — advances once per batch instead of once per entry.
        // Validation reads page tables physically, never through the
        // TLB, so deferring the bump is invisible inside the batch.
        self.mem.pt_batch_begin();
        let mut done = 0u64;
        let mut first_err = None;
        for u in updates {
            let entry = if u.ptr & 0x3 != 0 {
                // Only MMU_NORMAL_PT_UPDATE is modelled.
                Err(HvError::Inval)
            } else {
                let table = Mfn::new(u.ptr >> 12);
                let index = ((u.ptr & 0xfff) / 8) as usize;
                self.validate_and_write_pte(dom, table, index, PageTableEntry::from_raw(u.val))
            };
            match entry {
                Ok(()) => done += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        self.mem.pt_batch_end();
        match first_err {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// `HYPERVISOR_update_va_mapping`: updates the L1 entry that maps
    /// `va` in the calling domain's current page tables.
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] without installed page tables;
    /// [`HvError::GuestFault`] if the walk to the L1 slot faults;
    /// validation errors as for [`Hypervisor::hc_mmu_update`].
    pub fn hc_update_va_mapping(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        val: u64,
    ) -> Result<u64, HvError> {
        self.bump_hypercall_count();
        self.ensure_alive(dom)?;
        let cr3 = self.domain(dom)?.cr3().ok_or(HvError::Inval)?;
        // A cached 4 KiB translation pins down the L1 slot without
        // re-walking; a valid cache hit returns exactly what
        // `pte_slot(.., 1)` would (see `SharedTlb::cached_l1_slot`).
        let slot = match self.tlb.cached_l1_slot(&self.mem, cr3, va) {
            Some(slot) => slot,
            None => pte_slot(&self.mem, cr3, va, 1)?.0,
        };
        let table = slot.frame();
        let index = slot.page_offset() / 8;
        self.validate_and_write_pte(dom, table, index, PageTableEntry::from_raw(val))?;
        Ok(0)
    }

    /// `HYPERVISOR_mmuext_op`: pin/unpin page tables and install a new
    /// top-level table.
    ///
    /// # Errors
    ///
    /// Per-operation validation errors; processing stops at the first
    /// failure.
    pub fn hc_mmuext_op(&mut self, dom: DomainId, ops: &[MmuExtOp]) -> Result<u64, HvError> {
        self.bump_hypercall_count();
        self.ensure_alive(dom)?;
        let mut done = 0u64;
        for op in ops {
            match *op {
                MmuExtOp::Pin { level, mfn } => self.pin_table(dom, mfn, level)?,
                MmuExtOp::Unpin { mfn } => self.unpin_table(dom, mfn)?,
                MmuExtOp::NewBaseptr { mfn } => self.new_baseptr(dom, mfn)?,
            }
            done += 1;
        }
        Ok(done)
    }

    fn ensure_alive(&self, dom: DomainId) -> Result<(), HvError> {
        if self.is_crashed() {
            return Err(HvError::Crashed);
        }
        if self.domain(dom)?.is_dead() {
            return Err(HvError::NoDomain);
        }
        Ok(())
    }

    fn reject(&mut self, dom: DomainId, check: &'static str, detail: String) -> HvError {
        self.audit.push(AuditEvent::ValidationRejected { dom, check, detail });
        HvError::Inval
    }

    /// Core of `mmu_update`: validate `new` for the slot `table[index]`
    /// and, if accepted, write it.
    pub(crate) fn validate_and_write_pte(
        &mut self,
        dom: DomainId,
        table: Mfn,
        index: usize,
        new: PageTableEntry,
    ) -> Result<(), HvError> {
        if index >= ENTRIES_PER_TABLE {
            return Err(HvError::Inval);
        }
        let info = self.mem.info(table)?.clone();
        let Some(level) = info.page_type().page_table_level() else {
            return Err(self.reject(
                dom,
                "pt_target",
                format!("frame {table} is {} (not a page table)", info.page_type()),
            ));
        };
        if info.owner() != Some(dom) {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "pt_owner",
                detail: format!("frame {table} not owned by {dom}"),
            });
            return Err(HvError::Perm);
        }
        if level == 4 && index >= L4_HYPERVISOR_SLOT {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "l4_hypervisor_slot",
                detail: format!("L4 slot {index} is hypervisor-reserved"),
            });
            return Err(HvError::Perm);
        }
        let slot = table.base().offset(index as u64 * 8);
        let old = PageTableEntry::from_raw(self.mem.read_u64(slot)?);

        let origin = self.validate_entry(dom, table, level, old, new)?;
        self.release_old_reference(table, level, old, new);
        self.mem.write_u64(slot, new.raw())?;
        self.audit.push(AuditEvent::PteWritten {
            dom,
            slot,
            old: old.raw(),
            new: new.raw(),
            origin,
        });
        Ok(())
    }

    /// Decides whether `new` may be installed over `old` in a level-
    /// `level` table. Returns how the write is classified for the audit
    /// log.
    fn validate_entry(
        &mut self,
        dom: DomainId,
        table: Mfn,
        level: u8,
        old: PageTableEntry,
        new: PageTableEntry,
    ) -> Result<WriteOrigin, HvError> {
        // Clearing an entry is always fine.
        if !new.is_present() {
            return Ok(WriteOrigin::Validated);
        }

        // --- L4 fast path (the XSA-182 surface) --------------------------
        // A flags-only change (same target frame) skips revalidation.
        if level == 4 && old.is_present() && old.mfn() == new.mfn() {
            if self.vulns.xsa182_l4_fastpath_unrestricted {
                // Vulnerable: *any* flag difference is waved through,
                // including RW on a self-referencing entry.
                return Ok(WriteOrigin::VulnerableFastPath);
            }
            let diff = PteFlags::from_bits_truncate(old.diff_bits(new));
            if PteFlags::FASTPATH_SAFE.contains(diff) {
                return Ok(WriteOrigin::Validated);
            }
            // Unsafe flag change: fall through to full validation.
        }

        // --- L2 PSE superpages (the XSA-148 surface) ----------------------
        if level == 2 && new.flags().contains(PteFlags::PSE) {
            if self.vulns.xsa148_l2_pse_unchecked {
                // Vulnerable: the superpage's target range is not
                // validated at all — a 2 MiB window over arbitrary
                // machine memory, page tables included.
                return Ok(WriteOrigin::VulnerableFastPath);
            }
            return Err(self.reject(
                dom,
                "l2_pse",
                format!("PSE superpage entry {new:#x} rejected for PV guest"),
            ));
        }

        let target = new.mfn();
        if !self.mem.contains(target) {
            return Err(self.reject(dom, "bad_target", format!("entry references bad frame {target}")));
        }

        // Self-referencing L4 entries: the legitimate read-only linear
        // self-map is allowed; a writable one is exactly the state the
        // PV invariant forbids.
        if level == 4 && target == table {
            if new.flags().contains(PteFlags::RW) {
                return Err(self.reject(
                    dom,
                    "l4_selfmap_rw",
                    "writable self-referencing L4 entry rejected".into(),
                ));
            }
            return Ok(WriteOrigin::Validated);
        }

        let tinfo = self.mem.info(target)?.clone();
        let owned = tinfo.owner() == Some(dom);
        let retained = self.domain(dom)?.retains_access(target);
        if !owned && !retained {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "foreign_frame",
                detail: format!("entry targets foreign frame {target}"),
            });
            return Err(HvError::Perm);
        }

        match level {
            1 => {
                // Data mapping: must not create a writable view of a
                // page-table (or descriptor) frame.
                if new.flags().contains(PteFlags::RW)
                    && (tinfo.page_type().is_page_table()
                        || tinfo.page_type() == PageType::SegDesc)
                {
                    return Err(self.reject(
                        dom,
                        "l1_rw_pagetable",
                        format!(
                            "writable L1 mapping of {}-typed frame {target} rejected",
                            tinfo.page_type()
                        ),
                    ));
                }
                if new.flags().contains(PteFlags::RW) {
                    // Take the PGT_writable_page type reference; this is
                    // what later blocks the frame from being promoted to
                    // a page table while the writable mapping lives.
                    self.mem
                        .info_mut(target)?
                        .get_type(PageType::Writable)
                        .map_err(|e| self.reject(dom, "type_conflict", e.to_string()))?;
                }
                Ok(WriteOrigin::Validated)
            }
            2..=4 => {
                // `level` is 2..=4 here, so `level - 1` is always a
                // page-table level; `Inval` is unreachable but keeps the
                // hot validation path panic-free.
                let wanted =
                    PageType::from_page_table_level(level - 1).ok_or(HvError::Inval)?;
                self.mem
                    .info_mut(target)?
                    .get_type(wanted)
                    .map_err(|e| self.reject(dom, "type_conflict", e.to_string()))?;
                Ok(WriteOrigin::Validated)
            }
            _ => Err(HvError::Inval),
        }
    }

    /// Drops the type reference the *old* entry held, mirroring Xen's
    /// `put_page_type` on PTE replacement. Best-effort: entries written
    /// through vulnerable paths may carry no reference to drop.
    fn release_old_reference(
        &mut self,
        table: Mfn,
        level: u8,
        old: PageTableEntry,
        new: PageTableEntry,
    ) {
        if !old.is_present() {
            return;
        }
        if level == 2 && old.flags().contains(PteFlags::PSE) {
            return; // PSE entries never took a reference
        }
        let target = old.mfn();
        if !self.mem.contains(target) || target == table {
            return; // bad frame or self-map: no reference held
        }
        if target == new.mfn() {
            // Flags-only change: only the L1 RW->RO transition drops the
            // writable reference (the RO->RW side took one above).
            if level == 1
                && old.flags().contains(PteFlags::RW)
                && !new.flags().contains(PteFlags::RW)
            {
                if let Ok(info) = self.mem.info_mut(target) {
                    let _ = info.put_type();
                }
            }
            return;
        }
        let held = match level {
            1 => old.flags().contains(PteFlags::RW),
            _ => true,
        };
        if held {
            if let Ok(info) = self.mem.info_mut(target) {
                let _ = info.put_type();
            }
        }
    }

    /// `MMUEXT_PIN_LnTABLE`: recursively validates a page-table tree and
    /// pins its root at the given level.
    fn pin_table(&mut self, dom: DomainId, mfn: Mfn, level: u8) -> Result<(), HvError> {
        if !(1..=4).contains(&level) {
            return Err(HvError::Inval);
        }
        let mut visited = BTreeSet::new();
        self.validate_table(dom, mfn, level, &mut visited)?;
        self.mem.info_mut(mfn)?.pin();
        Ok(())
    }

    fn unpin_table(&mut self, dom: DomainId, mfn: Mfn) -> Result<(), HvError> {
        let info = self.mem.info(mfn)?;
        if info.owner() != Some(dom) {
            return Err(HvError::Perm);
        }
        self.mem.info_mut(mfn)?.unpin();
        Ok(())
    }

    /// Recursive content validation for pinning (Xen's
    /// `alloc_lN_table` family, condensed).
    fn validate_table(
        &mut self,
        dom: DomainId,
        mfn: Mfn,
        level: u8,
        visited: &mut BTreeSet<Mfn>,
    ) -> Result<(), HvError> {
        if !visited.insert(mfn) {
            return Ok(());
        }
        let info = self.mem.info(mfn)?.clone();
        if info.owner() != Some(dom) {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "pin_owner",
                detail: format!("cannot pin foreign frame {mfn}"),
            });
            return Err(HvError::Perm);
        }
        let wanted = PageType::from_page_table_level(level).ok_or(HvError::Inval)?;
        self.mem
            .info_mut(mfn)?
            .get_type(wanted)
            .map_err(|e| self.reject(dom, "pin_type", e.to_string()))?;

        for index in 0..ENTRIES_PER_TABLE {
            let raw = self.mem.read_u64(mfn.base().offset(index as u64 * 8))?;
            let entry = PageTableEntry::from_raw(raw);
            if !entry.is_present() {
                continue;
            }
            if level == 4 && index >= L4_HYPERVISOR_SLOT {
                return Err(self.reject(
                    dom,
                    "pin_l4_hypervisor_slot",
                    format!("guest L4 populates hypervisor slot {index}"),
                ));
            }
            if level == 4 && entry.mfn() == mfn {
                if entry.flags().contains(PteFlags::RW) {
                    return Err(self.reject(
                        dom,
                        "l4_selfmap_rw",
                        "writable self-referencing L4 entry rejected at pin".into(),
                    ));
                }
                continue;
            }
            if level == 2 && entry.flags().contains(PteFlags::PSE) {
                if self.vulns.xsa148_l2_pse_unchecked {
                    continue;
                }
                return Err(self.reject(
                    dom,
                    "l2_pse",
                    format!("PSE entry at pin time rejected (index {index})"),
                ));
            }
            if level == 1 {
                let target = entry.mfn();
                if !self.mem.contains(target) {
                    return Err(self.reject(dom, "bad_target", format!("bad frame {target}")));
                }
                let tinfo = self.mem.info(target)?;
                if entry.flags().contains(PteFlags::RW) && tinfo.page_type().is_page_table() {
                    return Err(self.reject(
                        dom,
                        "l1_rw_pagetable",
                        format!("writable mapping of page-table frame {target} at pin"),
                    ));
                }
                if entry.flags().contains(PteFlags::RW) {
                    self.mem
                        .info_mut(target)?
                        .get_type(PageType::Writable)
                        .map_err(|e| self.reject(dom, "pin_type", e.to_string()))?;
                }
                continue;
            }
            self.validate_table(dom, entry.mfn(), level - 1, visited)?;
        }
        self.mem.info_mut(mfn)?.set_validated(true);
        Ok(())
    }

    /// `MMUEXT_NEW_BASEPTR`: installs a validated L4 as the domain's
    /// current page table and stitches the hypervisor half into it.
    fn new_baseptr(&mut self, dom: DomainId, mfn: Mfn) -> Result<(), HvError> {
        let info = self.mem.info(mfn)?.clone();
        if info.owner() != Some(dom) {
            return Err(HvError::Perm);
        }
        if info.page_type() != PageType::L4PageTable || !info.validated() {
            return Err(self.reject(
                dom,
                "baseptr_unvalidated",
                format!("frame {mfn} is not a validated L4 table"),
            ));
        }
        // Stitch the shared hypervisor L3 into slot 256. Pre-hardening
        // layouts map it RWX into the guest (the linear page-table
        // window); the hardened layout still links the structures but the
        // layout veto makes the window unreachable from guests.
        let entry = PageTableEntry::new(
            self.shared_l3_mfn(),
            PteFlags::PRESENT | PteFlags::RW | PteFlags::USER,
        );
        let slot = mfn.base().offset(L4_HYPERVISOR_SLOT as u64 * 8);
        let old = self.mem.read_u64(slot)?;
        self.mem.write_u64(slot, entry.raw())?;
        self.audit.push(AuditEvent::PteWritten {
            dom,
            slot,
            old,
            new: entry.raw(),
            origin: WriteOrigin::Validated,
        });
        self.domain_mut(dom)?.set_cr3(mfn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildConfig, ExchangeArgs, Hypercall, IdtEntry, XenVersion};
    use hvsim_mem::{Pfn, VirtAddr};
    use hvsim_paging::{compose_va, selfmap_va, walk, AccessKind, PageFaultKind};

    const LINK: PteFlags = PteFlags::PRESENT.union(PteFlags::RW).union(PteFlags::USER);

    /// A guest with a minimal 4-level address space mapping
    /// `VA 0x0000_0000_0040_0000` (l4=0,l3=0,l2=2) onto one data frame.
    struct Guest {
        hv: Hypervisor,
        dom: DomainId,
        l4: Mfn,
        l3: Mfn,
        l2: Mfn,
        l1: Mfn,
        data: Mfn,
        data_va: VirtAddr,
    }

    fn boot(version: XenVersion, injector: bool) -> Guest {
        let mut hv = Hypervisor::new(BuildConfig::new(version).injector(injector));
        let dom = hv.create_domain("guest", false, 16).unwrap();
        // Use dedicated frames from the domain's allocation for tables.
        let (_, l4) = hv.alloc_domain_frame(dom, PageType::Writable).unwrap();
        let (_, l3) = hv.alloc_domain_frame(dom, PageType::Writable).unwrap();
        let (_, l2) = hv.alloc_domain_frame(dom, PageType::Writable).unwrap();
        let (_, l1) = hv.alloc_domain_frame(dom, PageType::Writable).unwrap();
        let (_, data) = hv.alloc_domain_frame(dom, PageType::Writable).unwrap();
        let data_va = VirtAddr::new(0x40_0000); // l4=0 l3=0 l2=2 l1=0
        let idx = VaIndices::of(data_va);
        // Build tables with direct writes while frames are untyped.
        let w = |hv: &mut Hypervisor, t: Mfn, i: usize, e: PageTableEntry| {
            hv.guest_write_frame(dom, t, i * 8, &e.raw().to_le_bytes()).unwrap();
        };
        w(&mut hv, l4, idx.l4, PageTableEntry::new(l3, LINK));
        w(&mut hv, l3, idx.l3, PageTableEntry::new(l2, LINK));
        w(&mut hv, l2, idx.l2, PageTableEntry::new(l1, LINK));
        w(&mut hv, l1, idx.l1, PageTableEntry::new(data, LINK));
        hv.hc_mmuext_op(dom, &[MmuExtOp::Pin { level: 4, mfn: l4 }]).unwrap();
        hv.hc_mmuext_op(dom, &[MmuExtOp::NewBaseptr { mfn: l4 }]).unwrap();
        Guest {
            hv,
            dom,
            l4,
            l3,
            l2,
            l1,
            data,
            data_va,
        }
    }

    #[test]
    fn boot_guest_and_access_memory() {
        let mut g = boot(XenVersion::V4_6, false);
        g.hv.guest_write_va(g.dom, g.data_va.offset(16), b"hello").unwrap();
        let mut buf = [0u8; 5];
        g.hv.guest_read_va(g.dom, g.data_va.offset(16), &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // Page-table frames got typed by the pin.
        assert_eq!(g.hv.mem().info(g.l4).unwrap().page_type(), PageType::L4PageTable);
        assert_eq!(g.hv.mem().info(g.l1).unwrap().page_type(), PageType::L1PageTable);
    }

    #[test]
    fn direct_write_to_page_table_refused_after_pin() {
        let mut g = boot(XenVersion::V4_6, false);
        let err = g
            .hv
            .guest_write_frame(g.dom, g.l1, 0, &[0u8; 8])
            .unwrap_err();
        assert_eq!(err, HvError::Perm);
    }

    #[test]
    fn mmu_update_legitimate_remap() {
        let mut g = boot(XenVersion::V4_8, false);
        let (_, new_data) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
        let idx = VaIndices::of(g.data_va);
        let ptr = g.l1.base().offset(idx.l1 as u64 * 8).raw();
        g.hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(new_data, LINK).raw())])
            .unwrap();
        let t = g.hv.guest_translate(g.dom, g.data_va).unwrap();
        assert_eq!(t.mfn, new_data);
    }

    #[test]
    fn mmu_update_batch_bumps_generation_once() {
        let mut g = boot(XenVersion::V4_8, false);
        let updates: Vec<MmuUpdate> = (64..128)
            .map(|i| {
                let ptr = g.l1.base().offset(i as u64 * 8).raw();
                MmuUpdate::normal(ptr, PageTableEntry::new(g.data, LINK).raw())
            })
            .collect();
        let gen_before = g.hv.mem().pt_generation();
        let pte_events = |g: &Guest| {
            g.hv
                .audit()
                .events()
                .iter()
                .filter(|e| matches!(e, AuditEvent::PteWritten { .. }))
                .count()
        };
        let events_before = pte_events(&g);
        assert_eq!(g.hv.hc_mmu_update(g.dom, &updates).unwrap(), 64);
        assert_eq!(
            g.hv.mem().pt_generation(),
            gen_before + 1,
            "a 64-entry batch costs exactly one generation bump"
        );
        assert_eq!(pte_events(&g) - events_before, 64, "audit events stay per-entry");
        // The entry-at-a-time loop applies the identical updates but
        // pays one flush per entry — and lands on identical memory.
        let mut s = boot(XenVersion::V4_8, false);
        assert_eq!((s.l1, s.data), (g.l1, g.data), "boot is deterministic");
        let gen_before = s.hv.mem().pt_generation();
        for u in &updates {
            s.hv.hc_mmu_update(s.dom, std::slice::from_ref(u)).unwrap();
        }
        assert_eq!(s.hv.mem().pt_generation(), gen_before + 64);
        let mut batch_l1 = [0u8; hvsim_mem::PAGE_SIZE];
        let mut single_l1 = [0u8; hvsim_mem::PAGE_SIZE];
        g.hv.mem().read_frame(g.l1, &mut batch_l1).unwrap();
        s.hv.mem().read_frame(s.l1, &mut single_l1).unwrap();
        assert_eq!(batch_l1[..], single_l1[..]);
    }

    #[test]
    fn mmu_update_batch_first_failure_matches_singleton_loop() {
        // Entry 3 of 6 attempts a writable mapping of the L1 table
        // itself — the core PV invariant violation, rejected by every
        // build. The batch must stop there with the same error the
        // singleton loop hits, leaving entries 0..3 applied.
        let make_updates = |g: &Guest| -> Vec<MmuUpdate> {
            (0..6u64)
                .map(|i| {
                    let ptr = g.l1.base().offset((100 + i) * 8).raw();
                    let target = if i == 3 { g.l1 } else { g.data };
                    MmuUpdate::normal(ptr, PageTableEntry::new(target, LINK).raw())
                })
                .collect()
        };
        let mut batch = boot(XenVersion::V4_8, false);
        let updates = make_updates(&batch);
        let batch_err = batch.hv.hc_mmu_update(batch.dom, &updates).unwrap_err();
        let rejected = |g: &Guest| {
            g.hv
                .audit()
                .events()
                .iter()
                .filter(|e| matches!(e, AuditEvent::ValidationRejected { .. }))
                .count()
        };
        assert_eq!(rejected(&batch), 1, "exactly the failing entry is audited as rejected");

        let mut single = boot(XenVersion::V4_8, false);
        let mut applied = 0u64;
        let mut single_err = None;
        for u in &updates {
            match single.hv.hc_mmu_update(single.dom, std::slice::from_ref(u)) {
                Ok(n) => applied += n,
                Err(e) => {
                    single_err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(applied, 3, "updates before the failure stay applied");
        assert_eq!(batch_err, single_err.unwrap(), "identical first-failure error");
        // Identical resulting page-table bytes: prior updates applied,
        // the rejected entry and everything after it not.
        let mut batch_l1 = [0u8; hvsim_mem::PAGE_SIZE];
        let mut single_l1 = [0u8; hvsim_mem::PAGE_SIZE];
        batch.hv.mem().read_frame(batch.l1, &mut batch_l1).unwrap();
        single.hv.mem().read_frame(single.l1, &mut single_l1).unwrap();
        assert_eq!(batch_l1[..], single_l1[..]);
        // A misaligned pointer mid-batch also matches the singleton loop.
        let bad = MmuUpdate::normal(batch.l1.base().offset(106 * 8).raw() | 0x2, 0);
        let e1 = batch.hv.hc_mmu_update(batch.dom, &[bad]).unwrap_err();
        let e2 = single.hv.hc_mmu_update(single.dom, &[bad]).unwrap_err();
        assert_eq!(e1, HvError::Inval);
        assert_eq!(e1, e2);
    }

    #[test]
    fn mmu_update_rejects_writable_map_of_page_table() {
        let mut g = boot(XenVersion::V4_8, false);
        let idx = VaIndices::of(g.data_va);
        let ptr = g.l1.base().offset(idx.l1 as u64 * 8).raw();
        // Try to map the L2 frame writable at L1 — the PV invariant.
        let err = g
            .hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(g.l2, LINK).raw())])
            .unwrap_err();
        assert_eq!(err, HvError::Inval);
        // Read-only is fine.
        g.hv
            .hc_mmu_update(
                g.dom,
                &[MmuUpdate::normal(
                    ptr,
                    PageTableEntry::new(g.l2, LINK.difference(PteFlags::RW)).raw(),
                )],
            )
            .unwrap();
    }

    #[test]
    fn mmu_update_rejects_foreign_frames() {
        let mut g = boot(XenVersion::V4_8, false);
        let dom2 = g.hv.create_domain("other", false, 4).unwrap();
        let other_frame = g.hv.domain(dom2).unwrap().p2m(Pfn::new(1)).unwrap();
        let idx = VaIndices::of(g.data_va);
        let ptr = g.l1.base().offset(idx.l1 as u64 * 8).raw();
        let err = g
            .hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(other_frame, LINK).raw())])
            .unwrap_err();
        assert_eq!(err, HvError::Perm);
    }

    #[test]
    fn mmu_update_rejects_hypervisor_l4_slots() {
        let mut g = boot(XenVersion::V4_6, false);
        let ptr = g.l4.base().offset(300 * 8).raw();
        let err = g
            .hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, PageTableEntry::new(g.l3, LINK).raw())])
            .unwrap_err();
        assert_eq!(err, HvError::Perm);
    }

    #[test]
    fn mmu_update_on_non_pagetable_frame_rejected() {
        let mut g = boot(XenVersion::V4_6, false);
        let err = g
            .hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(g.data.base().raw(), 0)])
            .unwrap_err();
        assert_eq!(err, HvError::Inval);
    }

    // ------------------------------------------------------------------
    // XSA-148: L2 PSE superpages
    // ------------------------------------------------------------------

    #[test]
    fn xsa148_vulnerable_accepts_arbitrary_pse_superpage() {
        let mut g = boot(XenVersion::V4_6, false);
        let idx = VaIndices::of(g.data_va);
        // Point a PSE superpage at machine frame 0 (the hypervisor text!).
        let ptr = g.l2.base().offset(idx.l2 as u64 * 8).raw();
        let entry = PageTableEntry::new(Mfn::new(0), LINK | PteFlags::PSE);
        g.hv.hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, entry.raw())]).unwrap();
        // The guest can now read hypervisor memory through the window.
        let mut buf = [0u8; 8];
        g.hv.guest_read_va(g.dom, g.data_va, &mut buf).unwrap();
        assert_eq!(&buf, b"XEN-4.6 ");
    }

    #[test]
    fn xsa148_fixed_rejects_pse_superpage() {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let mut g = boot(version, false);
            let idx = VaIndices::of(g.data_va);
            let ptr = g.l2.base().offset(idx.l2 as u64 * 8).raw();
            let entry = PageTableEntry::new(Mfn::new(0), LINK | PteFlags::PSE);
            let err = g
                .hv
                .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, entry.raw())])
                .unwrap_err();
            assert_eq!(err, HvError::Inval, "version {version} must reject PSE");
        }
    }

    // ------------------------------------------------------------------
    // XSA-182: L4 fast path
    // ------------------------------------------------------------------

    fn setup_ro_selfmap(g: &mut Guest, slot: usize) -> u64 {
        let ptr = g.l4.base().offset(slot as u64 * 8).raw();
        let ro = PageTableEntry::new(g.l4, LINK.difference(PteFlags::RW));
        g.hv.hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, ro.raw())]).unwrap();
        ptr
    }

    #[test]
    fn xsa182_vulnerable_fastpath_allows_rw_selfmap() {
        let mut g = boot(XenVersion::V4_6, false);
        let ptr = setup_ro_selfmap(&mut g, 42);
        let rw = PageTableEntry::new(g.l4, LINK);
        g.hv.hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, rw.raw())]).unwrap();
        // The guest can now write its own page tables through the self-map.
        let va = selfmap_va(42, 0);
        let t = walk(g.hv.mem(), g.l4, va, &g.hv.walk_policy()).unwrap();
        assert!(t.writable());
    }

    #[test]
    fn xsa182_fixed_rejects_rw_selfmap_via_fastpath() {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let mut g = boot(version, false);
            let ptr = setup_ro_selfmap(&mut g, 42);
            let rw = PageTableEntry::new(g.l4, LINK);
            let err = g
                .hv
                .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, rw.raw())])
                .unwrap_err();
            assert_eq!(err, HvError::Inval, "version {version}");
        }
    }

    #[test]
    fn fixed_fastpath_still_allows_safe_flag_changes() {
        let mut g = boot(XenVersion::V4_13, false);
        let ptr = setup_ro_selfmap(&mut g, 42);
        let accessed = PageTableEntry::new(g.l4, LINK.difference(PteFlags::RW) | PteFlags::ACCESSED);
        g.hv.hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, accessed.raw())]).unwrap();
    }

    #[test]
    fn rw_selfmap_rejected_on_slow_path_everywhere() {
        // Even on the vulnerable version, *creating* an RW self-map from
        // scratch (not via the fast path) is rejected: XSA-182 is strictly
        // a fast-path bug.
        let mut g = boot(XenVersion::V4_6, false);
        let ptr = g.l4.base().offset(43 * 8).raw();
        let rw = PageTableEntry::new(g.l4, LINK);
        let err = g
            .hv
            .hc_mmu_update(g.dom, &[MmuUpdate::normal(ptr, rw.raw())])
            .unwrap_err();
        assert_eq!(err, HvError::Inval);
    }

    // ------------------------------------------------------------------
    // XSA-212: memory_exchange
    // ------------------------------------------------------------------

    #[test]
    fn memory_exchange_legitimate_use() {
        let mut g = boot(XenVersion::V4_8, false);
        // Use a guest buffer for the out handle.
        let out = g.data_va;
        let old = g.hv.domain(g.dom).unwrap().p2m(Pfn::new(6)).unwrap();
        let n = g
            .hv
            .hc_memory_exchange(g.dom, &ExchangeArgs::new(vec![6], out))
            .unwrap();
        assert_eq!(n, 1);
        let new = g.hv.domain(g.dom).unwrap().p2m(Pfn::new(6)).unwrap();
        assert_ne!(old, new);
        // The new MFN was reported through the handle.
        let mut buf = [0u8; 8];
        g.hv.guest_read_va(g.dom, out, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), new.raw());
    }

    #[test]
    fn xsa212_vulnerable_write_what_where() {
        let mut g = boot(XenVersion::V4_6, false);
        // Target: the page-fault IDT gate, located via sidt.
        let idt_va = g.hv.sidt(0).offset(IdtEntry::slot_offset(crate::PAGE_FAULT_VECTOR) as u64);
        let args = ExchangeArgs::write_what_where(idt_va, 0xdead_beef_dead_beef, 4);
        let err = g.hv.hc_memory_exchange(g.dom, &args).unwrap_err();
        assert_eq!(err, HvError::Fault, "the call errors but the write landed");
        let gate = g.hv.idt_entry(0, crate::PAGE_FAULT_VECTOR).unwrap();
        assert!(!g.hv.is_valid_handler(gate.offset), "gate corrupted");
    }

    #[test]
    fn xsa212_fixed_returns_efault_without_write() {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let mut g = boot(version, false);
            let idt_va = g.hv.sidt(0).offset(IdtEntry::slot_offset(crate::PAGE_FAULT_VECTOR) as u64);
            let args = ExchangeArgs::write_what_where(idt_va, 0xdead_beef, 4);
            let err = g.hv.hc_memory_exchange(g.dom, &args).unwrap_err();
            assert!(err.is_fault());
            let gate = g.hv.idt_entry(0, crate::PAGE_FAULT_VECTOR).unwrap();
            assert!(g.hv.is_valid_handler(gate.offset), "gate intact on {version}");
        }
    }

    #[test]
    fn corrupted_pf_gate_escalates_to_double_fault_crash() {
        let mut g = boot(XenVersion::V4_6, false);
        let idt_va = g.hv.sidt(0).offset(IdtEntry::slot_offset(crate::PAGE_FAULT_VECTOR) as u64);
        let args = ExchangeArgs::write_what_where(idt_va, 0x4141_4141_4141_4141, 0);
        let _ = g.hv.hc_memory_exchange(g.dom, &args);
        // Any faulting access now kills the hypervisor.
        let mut buf = [0u8; 1];
        let err = g.hv.guest_read_va(g.dom, VirtAddr::new(0x7f00_0000_0000), &mut buf).unwrap_err();
        assert!(matches!(err, HvError::GuestFault(_)));
        assert!(g.hv.is_crashed());
        assert!(g.hv.console().iter().any(|l| l.contains("DOUBLE FAULT")));
        assert!(g.hv.domain(g.dom).unwrap().is_dead());
        // Further hypercalls are refused.
        assert_eq!(g.hv.hc_console_io(g.dom, "hi").unwrap_err(), HvError::Crashed);
    }

    // ------------------------------------------------------------------
    // Injector hypercall
    // ------------------------------------------------------------------

    #[test]
    fn injector_absent_on_stock_builds() {
        let mut g = boot(XenVersion::V4_6, false);
        let mut data = vec![0u8; 8];
        let err = g
            .hv
            .hc_arbitrary_access(g.dom, g.hv.sidt(0).raw(), &mut data, crate::AccessMode::LinearRead)
            .unwrap_err();
        assert_eq!(err, HvError::NoSys);
    }

    #[test]
    fn injector_linear_write_bypasses_all_checks() {
        for version in XenVersion::ALL {
            let mut g = boot(version, true);
            let idt_va = g.hv.sidt(0).offset(IdtEntry::slot_offset(crate::PAGE_FAULT_VECTOR) as u64);
            let mut data = 0x4141_4141_4141_4141u64.to_le_bytes().to_vec();
            g.hv
                .hc_arbitrary_access(g.dom, idt_va.raw(), &mut data, crate::AccessMode::LinearWrite)
                .unwrap();
            let gate = g.hv.idt_entry(0, crate::PAGE_FAULT_VECTOR).unwrap();
            assert!(!g.hv.is_valid_handler(gate.offset), "gate corrupted on {version}");
        }
    }

    #[test]
    fn injector_physical_roundtrip() {
        let mut g = boot(XenVersion::V4_13, true);
        let phys = g.data.base().offset(64).raw();
        let mut wbuf = b"injected".to_vec();
        g.hv.hc_arbitrary_access(g.dom, phys, &mut wbuf, crate::AccessMode::PhysWrite).unwrap();
        let mut rbuf = vec![0u8; 8];
        g.hv.hc_arbitrary_access(g.dom, phys, &mut rbuf, crate::AccessMode::PhysRead).unwrap();
        assert_eq!(rbuf, b"injected");
    }

    #[test]
    fn injector_resolves_guest_half_linear_addresses() {
        let mut g = boot(XenVersion::V4_6, true);
        g.hv.guest_write_va(g.dom, g.data_va, b"guestpage").unwrap();
        let mut buf = vec![0u8; 9];
        g.hv
            .hc_arbitrary_access(g.dom, g.data_va.raw(), &mut buf, crate::AccessMode::LinearRead)
            .unwrap();
        assert_eq!(buf, b"guestpage");
    }

    // ------------------------------------------------------------------
    // Keep-page-reference family
    // ------------------------------------------------------------------

    #[test]
    fn xsa393_vulnerable_decrease_reservation_keeps_access() {
        let mut g = boot(XenVersion::V4_6, false);
        let mfn = g.hv.domain(g.dom).unwrap().p2m(Pfn::new(7)).unwrap();
        g.hv.hc_decrease_reservation(g.dom, &[Pfn::new(7)], true).unwrap();
        assert!(g.hv.domain(g.dom).unwrap().retains_access(mfn));
        // The frame can be re-allocated to a victim...
        let victim = g.hv.create_domain("victim", false, 4).unwrap();
        let mut granted = g
            .hv
            .domain(victim)
            .unwrap()
            .p2m_iter()
            .map(|(_, m)| m)
            .find(|&m| m == mfn);
        for _ in 0..8 {
            if granted.is_some() {
                break;
            }
            let (_, m) = g.hv.alloc_domain_frame(victim, PageType::Writable).unwrap();
            if m == mfn {
                granted = Some(m);
            }
        }
        let reused = granted.expect("freed frame is reused");
        // ...and the attacker still reads/writes it.
        g.hv.guest_write_frame(g.dom, reused, 0, b"leak").unwrap();
        let mut buf = [0u8; 4];
        g.hv.guest_read_frame(victim, reused, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"leak");
    }

    #[test]
    fn xsa393_fixed_decrease_reservation_drops_access() {
        let mut g = boot(XenVersion::V4_8, false);
        let mfn = g.hv.domain(g.dom).unwrap().p2m(Pfn::new(7)).unwrap();
        g.hv.hc_decrease_reservation(g.dom, &[Pfn::new(7)], true).unwrap();
        assert!(!g.hv.domain(g.dom).unwrap().retains_access(mfn));
        let mut buf = [0u8; 1];
        assert_eq!(
            g.hv.guest_read_frame(g.dom, mfn, 0, &mut buf).unwrap_err(),
            HvError::Perm
        );
    }

    #[test]
    fn xsa387_vulnerable_gnttab_version_switch_leaks_status_page() {
        let mut g = boot(XenVersion::V4_6, false);
        g.hv.hc_grant_table_set_version(g.dom, crate::GrantTableVersion::V2).unwrap();
        let status = g.hv.domain(g.dom).unwrap().grant_table().status_frames()[0];
        g.hv.hc_grant_table_set_version(g.dom, crate::GrantTableVersion::V1).unwrap();
        assert!(
            g.hv.domain(g.dom).unwrap().retains_access(status),
            "guest keeps the Xen status page after the switch"
        );
    }

    #[test]
    fn xsa387_fixed_gnttab_version_switch_releases_status_page() {
        let mut g = boot(XenVersion::V4_8, false);
        g.hv.hc_grant_table_set_version(g.dom, crate::GrantTableVersion::V2).unwrap();
        let status = g.hv.domain(g.dom).unwrap().grant_table().status_frames()[0];
        g.hv.hc_grant_table_set_version(g.dom, crate::GrantTableVersion::V1).unwrap();
        assert!(!g.hv.domain(g.dom).unwrap().retains_access(status));
    }

    #[test]
    fn grant_map_gives_crossdomain_access() {
        let mut g = boot(XenVersion::V4_8, false);
        let dom2 = g.hv.create_domain("peer", false, 4).unwrap();
        let gref = g.hv.hc_grant_access(g.dom, dom2, g.data, true).unwrap();
        let mapped = g.hv.hc_grant_map(dom2, g.dom, gref as usize).unwrap();
        assert_eq!(mapped, g.data);
        g.hv.guest_write_frame(dom2, g.data, 0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        g.hv.guest_read_frame(g.dom, g.data, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        // A third domain has no access.
        let dom3 = g.hv.create_domain("third", false, 4).unwrap();
        assert_eq!(
            g.hv.guest_write_frame(dom3, g.data, 0, b"x").unwrap_err(),
            HvError::Perm
        );
    }

    // ------------------------------------------------------------------
    // Layout / hardening behaviour through the hypervisor API
    // ------------------------------------------------------------------

    #[test]
    fn hardened_walk_policy_defeats_injected_rw_selfmap() {
        // Inject the XSA-182 erroneous state (RW self-map) on all three
        // versions via the injector and observe who handles it.
        for (version, expect_violation) in [
            (XenVersion::V4_6, true),
            (XenVersion::V4_8, true),
            (XenVersion::V4_13, false),
        ] {
            let mut g = boot(version, true);
            setup_ro_selfmap(&mut g, 42);
            // Inject the RW bit directly into the L4 slot (physical mode).
            let slot_phys = g.l4.base().offset(42 * 8).raw();
            let mut cur = vec![0u8; 8];
            g.hv.hc_arbitrary_access(g.dom, slot_phys, &mut cur, crate::AccessMode::PhysRead).unwrap();
            let mut entry = PageTableEntry::from_raw(u64::from_le_bytes(cur.clone().try_into().unwrap()));
            entry = entry.with_flags(PteFlags::RW);
            let mut new = entry.raw().to_le_bytes().to_vec();
            g.hv.hc_arbitrary_access(g.dom, slot_phys, &mut new, crate::AccessMode::PhysWrite).unwrap();
            // Erroneous state present on every version:
            let (_, e) = pte_slot(g.hv.mem(), g.l4, selfmap_va(42, 0), 4).unwrap();
            assert!(e.flags().contains(PteFlags::RW), "state injected on {version}");
            // Abusing it only works pre-hardening:
            let va = selfmap_va(42, 8 * 42);
            let result = g.hv.guest_write_va(g.dom, va, &0u64.to_le_bytes());
            if expect_violation {
                assert!(result.is_ok(), "write through self-map on {version}");
            } else {
                let err = result.unwrap_err();
                match err {
                    HvError::GuestFault(pf) => {
                        assert_eq!(pf.kind, PageFaultKind::HardenedSelfMap { level: 4 })
                    }
                    other => panic!("unexpected error {other:?}"),
                }
            }
        }
    }

    #[test]
    fn linear_pt_window_reachable_only_pre_hardening() {
        // Map a data frame at the linear-PT window VA by linking through
        // the shared hypervisor L3 (what XSA-212-priv does with its
        // write primitive), then check guest reachability per version.
        for (version, reachable) in [(XenVersion::V4_8, true), (XenVersion::V4_13, false)] {
            let mut g = boot(version, true);
            let (_, pmd) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
            let (_, pt) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
            let (_, payload) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
            let va = VirtAddr::new(hvsim_paging::LINEAR_PT_START);
            let idx = VaIndices::of(va);
            // Forge PMD and PT contents in guest frames (plain data writes).
            g.hv.guest_write_frame(g.dom, pt, idx.l1 * 8, &PageTableEntry::new(payload, LINK).raw().to_le_bytes()).unwrap();
            g.hv.guest_write_frame(g.dom, pmd, idx.l2 * 8, &PageTableEntry::new(pt, LINK).raw().to_le_bytes()).unwrap();
            // Link the PMD into the shared L3 via the injector (the
            // "crafted PUD entry written" step).
            let l3_slot = g.hv.shared_l3_mfn().base().offset(idx.l3 as u64 * 8).raw();
            let mut e = PageTableEntry::new(pmd, LINK).raw().to_le_bytes().to_vec();
            g.hv.hc_arbitrary_access(g.dom, l3_slot, &mut e, crate::AccessMode::PhysWrite).unwrap();
            // Payload content.
            g.hv.guest_write_frame(g.dom, payload, 0, b"PAYLOAD!").unwrap();

            let mut buf = [0u8; 8];
            let res = g.hv.guest_read_va(g.dom, va, &mut buf);
            if reachable {
                res.unwrap();
                assert_eq!(&buf, b"PAYLOAD!");
                // And it is executable (the window is RWX pre-hardening).
                assert!(g.hv.guest_exec_va(g.dom, va).is_ok());
            } else {
                assert!(res.is_err(), "hardened layout must refuse the window");
                assert!(g.hv.guest_exec_va(g.dom, va).is_err());
            }
        }
    }

    #[test]
    fn dispatch_audits_and_counts() {
        let mut g = boot(XenVersion::V4_6, false);
        let before = g.hv.hypercall_count();
        let mut call = Hypercall::ConsoleIo("ping".into());
        g.hv.dispatch(g.dom, &mut call).unwrap();
        assert_eq!(g.hv.hypercall_count(), before + 1);
        assert!(g
            .hv
            .audit()
            .events()
            .iter()
            .any(|e| matches!(e, AuditEvent::Hypercall { name: "console_io", result: 0, .. })));
        assert!(g.hv.console().iter().any(|l| l.contains("ping")));
    }

    #[test]
    fn update_va_mapping_flows_through_validation() {
        let mut g = boot(XenVersion::V4_8, false);
        let (_, fresh) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
        g.hv
            .hc_update_va_mapping(g.dom, g.data_va, PageTableEntry::new(fresh, LINK).raw())
            .unwrap();
        assert_eq!(g.hv.guest_translate(g.dom, g.data_va).unwrap().mfn, fresh);
        // And it rejects the PV invariant violation too.
        let err = g
            .hv
            .hc_update_va_mapping(g.dom, g.data_va, PageTableEntry::new(g.l4, LINK).raw())
            .unwrap_err();
        assert_eq!(err, HvError::Inval);
    }

    #[test]
    fn pin_rejects_bad_trees() {
        let mut g = boot(XenVersion::V4_8, false);
        let (_, bad_l4) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
        // Entry 0 points at a foreign frame (the hypervisor text).
        g.hv.guest_write_frame(g.dom, bad_l4, 0, &PageTableEntry::new(Mfn::new(0), LINK).raw().to_le_bytes()).unwrap();
        let err = g
            .hv
            .hc_mmuext_op(g.dom, &[MmuExtOp::Pin { level: 4, mfn: bad_l4 }])
            .unwrap_err();
        assert_eq!(err, HvError::Perm);
    }

    #[test]
    fn new_baseptr_requires_validated_l4() {
        let mut g = boot(XenVersion::V4_8, false);
        let (_, raw) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
        let err = g
            .hv
            .hc_mmuext_op(g.dom, &[MmuExtOp::NewBaseptr { mfn: raw }])
            .unwrap_err();
        assert_eq!(err, HvError::Inval);
    }

    #[test]
    fn software_interrupt_reads_gate() {
        let mut g = boot(XenVersion::V4_6, true);
        // Forge a gate for vector 0x80 pointing at an arbitrary VA.
        let handler = VirtAddr::new(0xffff_8040_0000_0000);
        let gate = IdtEntry {
            offset: handler,
            selector: IdtEntry::XEN_CS,
            dpl: 3,
            present: true,
        };
        let gate_addr = g.hv.sidt(0).offset(IdtEntry::slot_offset(0x80) as u64);
        let mut bytes = gate.pack().to_vec();
        g.hv.hc_arbitrary_access(g.dom, gate_addr.raw(), &mut bytes, crate::AccessMode::LinearWrite).unwrap();
        let dispatch = g.hv.software_interrupt(g.dom, 0x80).unwrap();
        assert_eq!(dispatch.handler, handler);
        // Unregistered vectors are rejected.
        assert_eq!(g.hv.software_interrupt(g.dom, 0x81).unwrap_err(), HvError::Inval);
    }

    #[test]
    fn start_info_fingerprint_scannable() {
        let g = boot(XenVersion::V4_6, false);
        let d = g.hv.domain(g.dom).unwrap();
        let si = d.read_start_info(g.hv.mem()).unwrap().unwrap();
        assert_eq!(si.domid, g.dom);
        assert_eq!(si.name, "guest");
        assert!(!si.is_privileged());
    }

    #[test]
    fn compose_va_helper_consistency() {
        // Guard the relationship the exploits rely on between compose_va
        // and the walker's index extraction.
        let va = compose_va(0, 0, 2, 0, 0);
        assert_eq!(va, VirtAddr::new(0x40_0000));
        let idx = VaIndices::of(va);
        assert_eq!((idx.l4, idx.l3, idx.l2, idx.l1), (0, 0, 2, 0));
    }

    #[test]
    fn guest_access_checks_layout_before_tables() {
        let mut g = boot(XenVersion::V4_13, false);
        // Directmap addresses are never guest-accessible.
        let va = g.hv.layout().directmap_va(0);
        let mut buf = [0u8; 1];
        let err = g.hv.guest_read_va(g.dom, va, &mut buf).unwrap_err();
        assert!(matches!(err, HvError::GuestFault(_)));
    }

    #[test]
    fn exchange_error_path_writes_back_via_checked_copy_on_fixed() {
        // On fixed versions a *valid guest handle* still gets the error
        // write-back — proving the fix is the handle check, not the
        // write-back removal.
        let mut g = boot(XenVersion::V4_8, false);
        let args = ExchangeArgs::new(vec![0xdead], g.data_va);
        let err = g.hv.hc_memory_exchange(g.dom, &args).unwrap_err();
        assert!(err.is_fault());
        let mut buf = [0u8; 8];
        g.hv.guest_read_va(g.dom, g.data_va, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0xdead);
    }

    #[test]
    fn access_kind_reexport_smoke() {
        // Keep the re-exports honest.
        let _ = AccessKind::Read;
    }

    // ------------------------------------------------------------------
    // Software-TLB transparency under injection
    // ------------------------------------------------------------------

    #[test]
    fn injected_pte_corruption_is_seen_through_a_warm_tlb() {
        use crate::injector::AccessMode;
        // XSA-148 audit-walk semantics: inject a corrupted PTE through
        // the injector hypercall at the slot `pte_slot` locates, and the
        // very next walk — even with the translation already cached —
        // must see the corruption. A stale-TLB false negative here would
        // invalidate every monitor verdict in the campaign.
        let mut g = boot(XenVersion::V4_6, true);
        assert!(g.hv.tlb_enabled());
        let cr3 = g.hv.domain(g.dom).unwrap().cr3().unwrap();
        // Warm the cache: repeated translations of the same page hit.
        let before = g.hv.guest_translate(g.dom, g.data_va).unwrap();
        assert_eq!(before.mfn, g.data);
        g.hv.guest_translate(g.dom, g.data_va).unwrap();
        assert!(g.hv.tlb_stats().hits >= 1, "the second translation must hit");
        // Locate the L1 slot and inject a PTE redirecting data_va.
        let (slot, old) = pte_slot(g.hv.mem(), cr3, g.data_va, 1).unwrap();
        assert_eq!(old.mfn(), g.data);
        let (_, evil) = g.hv.alloc_domain_frame(g.dom, PageType::Writable).unwrap();
        let forged = PageTableEntry::new(evil, LINK);
        let mut bytes = forged.raw().to_le_bytes();
        g.hv.hc_arbitrary_access(g.dom, slot.raw(), &mut bytes, AccessMode::PhysWrite)
            .unwrap();
        // The injected write targeted an L1-typed frame, so the memory
        // generation moved and the cached entry is dead.
        let after = g.hv.guest_translate(g.dom, g.data_va).unwrap();
        assert_eq!(after.mfn, evil, "the walk after injection must see the corruption");
        // And the hypervisor's view agrees with an uncached audit walk.
        let raw = walk(g.hv.mem(), cr3, g.data_va, &g.hv.walk_policy()).unwrap();
        assert_eq!(after, raw);
    }

    #[test]
    fn tlb_escape_hatch_reports_identical_translations() {
        let mut g = boot(XenVersion::V4_8, false);
        let cached = g.hv.guest_translate(g.dom, g.data_va).unwrap();
        g.hv.set_tlb_enabled(false);
        assert!(!g.hv.tlb_enabled());
        let uncached = g.hv.guest_translate(g.dom, g.data_va).unwrap();
        assert_eq!(cached, uncached);
    }
}
