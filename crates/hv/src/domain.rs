//! Domains (virtual machines) as the hypervisor sees them.

use crate::events::{PortState, EVTCHN_PORTS};
use crate::grants::GrantTable;
use crate::HvError;
use hvsim_mem::{DomainId, MachineMemory, MemError, Mfn, Pfn, PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Magic bytes at the start of every domain's start-info page.
///
/// The XSA-148 exploit locates dom0 by scanning machine memory for exactly
/// this kind of fingerprint ("dom0 *startup_info* page which can be easily
/// fingerprinted in memory", paper §VI-A).
pub const START_INFO_MAGIC: &[u8; 16] = b"xen-start-info-\0";

/// Flag bit: the domain is privileged (dom0).
const SIF_PRIVILEGED: u32 = 1;

/// The start-info structure the hypervisor writes into each domain's
/// start-info frame at build time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartInfo {
    /// Owning domain.
    pub domid: DomainId,
    /// Privilege flags (`SIF_*`).
    pub flags: u32,
    /// Domain name (truncated to 32 bytes on the wire).
    pub name: String,
    /// Number of pages initially granted to the domain.
    pub nr_pages: u64,
}

impl StartInfo {
    /// Byte length of the serialized structure.
    pub const WIRE_LEN: usize = 16 + 2 + 4 + 8 + 32;

    /// Serializes the structure into its in-memory wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        out.extend_from_slice(START_INFO_MAGIC);
        out.extend_from_slice(&self.domid.raw().to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.nr_pages.to_le_bytes());
        let mut name = [0u8; 32];
        let n = self.name.len().min(32);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        out.extend_from_slice(&name);
        out
    }

    /// Parses a start-info structure from raw frame bytes.
    ///
    /// Returns `None` if the magic does not match (the scanning primitive
    /// exploits rely on).
    pub fn parse(bytes: &[u8]) -> Option<StartInfo> {
        if bytes.len() < Self::WIRE_LEN || &bytes[..16] != START_INFO_MAGIC {
            return None;
        }
        let domid = DomainId::new(u16::from_le_bytes([bytes[16], bytes[17]]));
        let flags = u32::from_le_bytes(bytes[18..22].try_into().ok()?);
        let nr_pages = u64::from_le_bytes(bytes[22..30].try_into().ok()?);
        let name_raw = &bytes[30..62];
        let end = name_raw.iter().position(|&b| b == 0).unwrap_or(32);
        let name = String::from_utf8_lossy(&name_raw[..end]).into_owned();
        Some(StartInfo {
            domid,
            flags,
            name,
            nr_pages,
        })
    }

    /// `true` if the `SIF_PRIVILEGED` flag is set.
    pub fn is_privileged(&self) -> bool {
        self.flags & SIF_PRIVILEGED != 0
    }

    /// Builds the flags word for a (non-)privileged domain.
    pub fn flags_for(privileged: bool) -> u32 {
        if privileged {
            SIF_PRIVILEGED
        } else {
            0
        }
    }
}

/// Hypervisor-side state of one domain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Domain {
    id: DomainId,
    name: String,
    privileged: bool,
    cr3: Option<Mfn>,
    p2m: BTreeMap<u64, Mfn>,
    start_info_mfn: Mfn,
    dead: bool,
    grant_table: GrantTable,
    trap_handlers: BTreeMap<u8, VirtAddr>,
    /// Frames this domain can still access although it no longer owns
    /// them — the "keep page access / reference" erroneous-state family
    /// (XSA-387/XSA-393-style leaks, or injected states).
    retained_access: BTreeSet<Mfn>,
    shared_info_mfn: Option<Mfn>,
    event_ports: Vec<PortState>,
    events_received: u64,
    paused: bool,
}

impl Domain {
    pub(crate) fn new(id: DomainId, name: &str, privileged: bool, start_info_mfn: Mfn) -> Self {
        Self {
            id,
            name: name.to_owned(),
            privileged,
            cr3: None,
            p2m: BTreeMap::new(),
            start_info_mfn,
            dead: false,
            grant_table: GrantTable::new(),
            trap_handlers: BTreeMap::new(),
            retained_access: BTreeSet::new(),
            shared_info_mfn: None,
            event_ports: vec![PortState::Free; EVTCHN_PORTS],
            events_received: 0,
            paused: false,
        }
    }

    /// The domain id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` for the privileged control domain.
    pub fn is_privileged(&self) -> bool {
        self.privileged
    }

    /// The current top-level page table, if one has been installed via
    /// `MMUEXT_NEW_BASEPTR`.
    pub fn cr3(&self) -> Option<Mfn> {
        self.cr3
    }

    pub(crate) fn set_cr3(&mut self, cr3: Mfn) {
        self.cr3 = Some(cr3);
    }

    /// `true` once the domain has been killed (e.g. by a hypervisor
    /// crash).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub(crate) fn kill(&mut self) {
        self.dead = true;
    }

    /// The machine frame holding this domain's start-info page.
    pub fn start_info_mfn(&self) -> Mfn {
        self.start_info_mfn
    }

    /// Looks up the machine frame backing a pseudo-physical frame.
    pub fn p2m(&self, pfn: Pfn) -> Option<Mfn> {
        self.p2m.get(&pfn.raw()).copied()
    }

    /// Number of pseudo-physical frames currently populated.
    pub fn p2m_len(&self) -> usize {
        self.p2m.len()
    }

    /// Iterates `(pfn, mfn)` pairs in pfn order.
    pub fn p2m_iter(&self) -> impl Iterator<Item = (Pfn, Mfn)> + '_ {
        self.p2m.iter().map(|(&p, &m)| (Pfn::new(p), m))
    }

    pub(crate) fn p2m_insert(&mut self, pfn: Pfn, mfn: Mfn) {
        self.p2m.insert(pfn.raw(), mfn);
    }

    pub(crate) fn p2m_remove(&mut self, pfn: Pfn) -> Option<Mfn> {
        self.p2m.remove(&pfn.raw())
    }

    /// The next unpopulated pfn (for fresh allocations).
    pub(crate) fn next_free_pfn(&self) -> Pfn {
        Pfn::new(self.p2m.keys().next_back().map_or(0, |&p| p + 1))
    }

    /// The domain's grant table.
    pub fn grant_table(&self) -> &GrantTable {
        &self.grant_table
    }

    pub(crate) fn grant_table_mut(&mut self) -> &mut GrantTable {
        &mut self.grant_table
    }

    /// Registered guest trap handlers (vector -> guest VA).
    pub fn trap_handler(&self, vector: u8) -> Option<VirtAddr> {
        self.trap_handlers.get(&vector).copied()
    }

    pub(crate) fn set_trap_handler(&mut self, vector: u8, va: VirtAddr) {
        self.trap_handlers.insert(vector, va);
    }

    /// Frames the domain retains access to without owning — observable
    /// evidence of a "keep page reference" erroneous state.
    pub fn retained_frames(&self) -> impl Iterator<Item = Mfn> + '_ {
        self.retained_access.iter().copied()
    }

    /// `true` if the domain has (possibly stale) access to `mfn`.
    pub fn retains_access(&self, mfn: Mfn) -> bool {
        self.retained_access.contains(&mfn)
    }

    pub(crate) fn retain_access(&mut self, mfn: Mfn) {
        self.retained_access.insert(mfn);
    }

    pub(crate) fn drop_retained_access(&mut self, mfn: Mfn) {
        self.retained_access.remove(&mfn);
    }

    /// The shared-info frame holding this domain's event bitmaps.
    pub fn shared_info_mfn(&self) -> Option<Mfn> {
        self.shared_info_mfn
    }

    pub(crate) fn set_shared_info_mfn(&mut self, mfn: Mfn) {
        self.shared_info_mfn = Some(mfn);
    }

    /// The state of an event port.
    pub fn event_port(&self, port: u16) -> Option<PortState> {
        self.event_ports.get(port as usize).copied()
    }

    /// Allocates the lowest free event port with the given state.
    ///
    /// # Errors
    ///
    /// [`HvError::NoMem`] when every port is taken.
    pub(crate) fn alloc_event_port(&mut self, state: PortState) -> Result<u16, HvError> {
        // Port 0 is reserved, as in Xen.
        for (i, slot) in self.event_ports.iter_mut().enumerate().skip(1) {
            if *slot == PortState::Free {
                *slot = state;
                return Ok(i as u16);
            }
        }
        Err(HvError::NoMem)
    }

    pub(crate) fn set_event_port(&mut self, port: u16, state: PortState) -> Result<(), HvError> {
        let slot = self
            .event_ports
            .get_mut(port as usize)
            .ok_or(HvError::Inval)?;
        *slot = state;
        Ok(())
    }

    /// Total events delivered to this domain.
    pub fn events_received(&self) -> u64 {
        self.events_received
    }

    pub(crate) fn count_event(&mut self) {
        self.events_received += 1;
    }

    /// Whether the domain is paused (management-interface state).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    pub(crate) fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// Reads this domain's start-info structure back from memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the start-info frame is not installed.
    pub fn read_start_info(&self, mem: &MachineMemory) -> Result<Option<StartInfo>, MemError> {
        let mut buf = vec![0u8; StartInfo::WIRE_LEN];
        mem.read(PhysAddr::new(self.start_info_mfn.raw() << 12), &mut buf)?;
        Ok(StartInfo::parse(&buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_info_roundtrip() {
        let si = StartInfo {
            domid: DomainId::new(3),
            flags: StartInfo::flags_for(true),
            name: "dom0".into(),
            nr_pages: 128,
        };
        let bytes = si.to_bytes();
        assert_eq!(bytes.len(), StartInfo::WIRE_LEN);
        let parsed = StartInfo::parse(&bytes).unwrap();
        assert_eq!(parsed, si);
        assert!(parsed.is_privileged());
    }

    #[test]
    fn start_info_rejects_bad_magic() {
        let mut bytes = StartInfo {
            domid: DomainId::DOM0,
            flags: 0,
            name: "x".into(),
            nr_pages: 1,
        }
        .to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(StartInfo::parse(&bytes), None);
        assert_eq!(StartInfo::parse(&bytes[..10]), None);
    }

    #[test]
    fn unprivileged_flags() {
        assert_eq!(StartInfo::flags_for(false), 0);
        let si = StartInfo {
            domid: DomainId::new(1),
            flags: 0,
            name: "guest".into(),
            nr_pages: 64,
        };
        assert!(!si.is_privileged());
    }

    #[test]
    fn long_names_truncate() {
        let si = StartInfo {
            domid: DomainId::new(1),
            flags: 0,
            name: "x".repeat(64),
            nr_pages: 1,
        };
        let parsed = StartInfo::parse(&si.to_bytes()).unwrap();
        assert_eq!(parsed.name.len(), 32);
    }

    #[test]
    fn p2m_bookkeeping() {
        let mut d = Domain::new(DomainId::new(1), "g", false, Mfn::new(10));
        assert_eq!(d.next_free_pfn(), Pfn::new(0));
        d.p2m_insert(Pfn::new(0), Mfn::new(10));
        d.p2m_insert(Pfn::new(1), Mfn::new(11));
        assert_eq!(d.p2m(Pfn::new(1)), Some(Mfn::new(11)));
        assert_eq!(d.next_free_pfn(), Pfn::new(2));
        assert_eq!(d.p2m_remove(Pfn::new(1)), Some(Mfn::new(11)));
        assert_eq!(d.p2m(Pfn::new(1)), None);
        assert_eq!(d.p2m_len(), 1);
    }

    #[test]
    fn retained_access_tracking() {
        let mut d = Domain::new(DomainId::new(2), "g", false, Mfn::new(10));
        assert!(!d.retains_access(Mfn::new(5)));
        d.retain_access(Mfn::new(5));
        assert!(d.retains_access(Mfn::new(5)));
        assert_eq!(d.retained_frames().collect::<Vec<_>>(), vec![Mfn::new(5)]);
        d.drop_retained_access(Mfn::new(5));
        assert!(!d.retains_access(Mfn::new(5)));
    }
}
