//! Event channels: Xen's virtual-interrupt mechanism.
//!
//! The paper's future work — "we are expanding our prototype to cover
//! IMs related with malicious interrupts" — needs a substrate: in Xen,
//! interrupts delivered to guests are *event channels*, and their
//! pending/mask state lives in each domain's **shared-info page**, i.e.
//! in machine memory the injector hypercall can reach. This module
//! models exactly that:
//!
//! * each domain owns a shared-info frame with `evtchn_pending` and
//!   `evtchn_mask` bitmaps at architecturally fixed offsets,
//! * `hc_event_channel_op` implements alloc-unbound / bind-interdomain /
//!   send / close with per-version validation (the vulnerable build
//!   skips the port-ownership check on send — an *Uncontrolled
//!   Arbitrary Interrupts Requests* hole),
//! * monitors detect *spurious pending events*: pending bits on ports
//!   that were never bound, the observable erroneous state of the
//!   interrupt intrusion models.

use crate::audit::AuditEvent;
use crate::hypervisor::Hypervisor;
use crate::HvError;
use hvsim_mem::{DomainId, Mfn};
use serde::{Deserialize, Serialize};

/// Number of event ports per domain.
pub const EVTCHN_PORTS: usize = 512;
/// Byte offset of the pending bitmap within the shared-info frame.
pub const PENDING_OFFSET: usize = 0;
/// Byte offset of the mask bitmap within the shared-info frame.
pub const MASK_OFFSET: usize = 64;

/// State of one event port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortState {
    /// Free for allocation.
    Free,
    /// Allocated, waiting for a remote domain to bind.
    Unbound {
        /// The domain allowed to bind.
        remote: DomainId,
    },
    /// Connected to a remote domain's port.
    Interdomain {
        /// The peer domain.
        remote: DomainId,
        /// The peer's port number.
        remote_port: u16,
    },
}

/// An event-channel operation (`EVTCHNOP_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventChannelOp {
    /// Allocate a port that `remote` may later bind to.
    AllocUnbound {
        /// The domain allowed to bind.
        remote: DomainId,
    },
    /// Bind a local port to a remote domain's unbound port.
    BindInterdomain {
        /// The peer domain.
        remote: DomainId,
        /// The peer's unbound port.
        remote_port: u16,
    },
    /// Raise an event on a local port (delivers to the bound peer).
    Send {
        /// The local port.
        port: u16,
    },
    /// Close a local port.
    Close {
        /// The local port.
        port: u16,
    },
}

impl Hypervisor {
    /// `HYPERVISOR_event_channel_op`.
    ///
    /// Returns the allocated port for `AllocUnbound`/`BindInterdomain`,
    /// 0 otherwise.
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] for bad ports or states; on *fixed* builds,
    /// [`HvError::Perm`] when sending on a port the caller has not
    /// bound (the vulnerable build omits that check).
    pub fn hc_event_channel_op(
        &mut self,
        dom: DomainId,
        op: EventChannelOp,
    ) -> Result<u64, HvError> {
        self.bump_hypercall_count();
        if self.is_crashed() {
            return Err(HvError::Crashed);
        }
        let result = match op {
            EventChannelOp::AllocUnbound { remote } => {
                self.domain(remote)?;
                let d = self.domain_mut(dom)?;
                let port = d.alloc_event_port(PortState::Unbound { remote })?;
                Ok(port as u64)
            }
            EventChannelOp::BindInterdomain { remote, remote_port } => {
                // The remote port must be unbound-for-us.
                match self.domain(remote)?.event_port(remote_port) {
                    Some(PortState::Unbound { remote: allowed }) if allowed == dom => {}
                    _ => return Err(HvError::Inval),
                }
                let local = self
                    .domain_mut(dom)?
                    .alloc_event_port(PortState::Interdomain {
                        remote,
                        remote_port,
                    })?;
                self.domain_mut(remote)?.set_event_port(
                    remote_port,
                    PortState::Interdomain {
                        remote: dom,
                        remote_port: local,
                    },
                )?;
                Ok(local as u64)
            }
            EventChannelOp::Send { port } => {
                let state = self.domain(dom)?.event_port(port);
                match state {
                    Some(PortState::Interdomain { remote, remote_port }) => {
                        self.deliver_event(remote, remote_port)?;
                        Ok(0)
                    }
                    _ if !self.vulns.xsa_evtchn_unvalidated_send => {
                        self.audit.push(AuditEvent::ValidationRejected {
                            dom,
                            check: "evtchn_send",
                            detail: format!("send on unbound port {port}"),
                        });
                        Err(HvError::Perm)
                    }
                    _ => {
                        // Vulnerable: the port number is trusted and used
                        // as a (domain, port) pair raw — a guest can raise
                        // arbitrary events on arbitrary domains.
                        let victims = self.domain_ids();
                        let victim = victims
                            .get((port as usize) % victims.len().max(1))
                            .copied()
                            .ok_or(HvError::NoDomain)?;
                        self.deliver_event(victim, port % EVTCHN_PORTS as u16)?;
                        Ok(0)
                    }
                }
            }
            EventChannelOp::Close { port } => {
                let state = self.domain(dom)?.event_port(port).ok_or(HvError::Inval)?;
                if let PortState::Interdomain { remote, remote_port } = state {
                    if let Ok(r) = self.domain_mut(remote) {
                        let _ = r.set_event_port(remote_port, PortState::Unbound { remote: dom });
                    }
                }
                self.domain_mut(dom)?.set_event_port(port, PortState::Free)?;
                Ok(0)
            }
        };
        self.audit.push(AuditEvent::Hypercall {
            dom,
            name: "event_channel_op",
            result: result.as_ref().map(|&v| v as i64).unwrap_or_else(|e| e.errno()),
        });
        result
    }

    /// Sets the pending bit for `(dom, port)` in the domain's
    /// shared-info frame.
    pub(crate) fn deliver_event(&mut self, dom: DomainId, port: u16) -> Result<(), HvError> {
        let shared = self.domain(dom)?.shared_info_mfn().ok_or(HvError::Inval)?;
        set_bit(self, shared, PENDING_OFFSET, port)?;
        self.audit.push(AuditEvent::Exception {
            vector: 0x20,
            addr: None,
            delivered: true,
        });
        self.domain_mut(dom)?.count_event();
        Ok(())
    }

    /// Reads a domain's pending bitmap (64 bytes).
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] if the domain has no shared-info frame.
    pub fn pending_bitmap(&self, dom: DomainId) -> Result<[u8; 64], HvError> {
        let shared = self.domain(dom)?.shared_info_mfn().ok_or(HvError::Inval)?;
        let mut buf = [0u8; 64];
        self.mem
            .read(shared.base().offset(PENDING_OFFSET as u64), &mut buf)?;
        Ok(buf)
    }

    /// Ports with the pending bit set in a domain's shared-info frame.
    pub fn pending_ports(&self, dom: DomainId) -> Vec<u16> {
        let Ok(bitmap) = self.pending_bitmap(dom) else {
            return Vec::new();
        };
        let mut ports = Vec::new();
        for (byte_idx, byte) in bitmap.iter().enumerate() {
            for bit in 0..8 {
                if byte & (1 << bit) != 0 {
                    ports.push((byte_idx * 8 + bit) as u16);
                }
            }
        }
        ports
    }

    /// Pending ports that are **not bound** — spurious events, the
    /// observable erroneous state of the interrupt intrusion models.
    pub fn spurious_pending_ports(&self, dom: DomainId) -> Vec<u16> {
        let Ok(d) = self.domain(dom) else { return Vec::new() };
        self.pending_ports(dom)
            .into_iter()
            .filter(|&p| {
                !matches!(
                    d.event_port(p),
                    Some(PortState::Interdomain { .. }) | Some(PortState::Unbound { .. })
                )
            })
            .collect()
    }
}

fn set_bit(hv: &mut Hypervisor, frame: Mfn, base: usize, port: u16) -> Result<(), HvError> {
    if port as usize >= EVTCHN_PORTS {
        return Err(HvError::Inval);
    }
    let byte = base + (port as usize) / 8;
    let addr = frame.base().offset(byte as u64);
    let mut cur = [0u8; 1];
    hv.mem.read(addr, &mut cur)?;
    cur[0] |= 1 << (port % 8);
    hv.mem.write(addr, &cur)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildConfig, XenVersion};

    fn setup(version: XenVersion) -> (Hypervisor, DomainId, DomainId) {
        let mut hv = Hypervisor::new(BuildConfig::new(version));
        let a = hv.create_domain("a", false, 16).unwrap();
        let b = hv.create_domain("b", false, 16).unwrap();
        (hv, a, b)
    }

    #[test]
    fn alloc_bind_send_close_roundtrip() {
        let (mut hv, a, b) = setup(XenVersion::V4_8);
        let remote_port = hv
            .hc_event_channel_op(a, EventChannelOp::AllocUnbound { remote: b })
            .unwrap() as u16;
        let local = hv
            .hc_event_channel_op(
                b,
                EventChannelOp::BindInterdomain {
                    remote: a,
                    remote_port,
                },
            )
            .unwrap() as u16;
        // b sends: a's pending bit rises on remote_port.
        hv.hc_event_channel_op(b, EventChannelOp::Send { port: local }).unwrap();
        assert_eq!(hv.pending_ports(a), vec![remote_port]);
        assert!(hv.spurious_pending_ports(a).is_empty(), "bound events are not spurious");
        // Close tears both sides down.
        hv.hc_event_channel_op(b, EventChannelOp::Close { port: local }).unwrap();
        assert!(matches!(
            hv.domain(a).unwrap().event_port(remote_port),
            Some(PortState::Unbound { .. })
        ));
    }

    #[test]
    fn bind_requires_matching_unbound_port() {
        let (mut hv, a, b) = setup(XenVersion::V4_8);
        // Nothing allocated yet.
        assert_eq!(
            hv.hc_event_channel_op(
                b,
                EventChannelOp::BindInterdomain { remote: a, remote_port: 5 }
            )
            .unwrap_err(),
            HvError::Inval
        );
        // Allocated for someone else.
        let c = hv.create_domain("c", false, 16).unwrap();
        let port = hv
            .hc_event_channel_op(a, EventChannelOp::AllocUnbound { remote: c })
            .unwrap() as u16;
        assert_eq!(
            hv.hc_event_channel_op(
                b,
                EventChannelOp::BindInterdomain { remote: a, remote_port: port }
            )
            .unwrap_err(),
            HvError::Inval
        );
    }

    #[test]
    fn fixed_versions_reject_unbound_send() {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let (mut hv, a, _) = setup(version);
            assert_eq!(
                hv.hc_event_channel_op(a, EventChannelOp::Send { port: 77 }).unwrap_err(),
                HvError::Perm,
                "{version}"
            );
        }
    }

    #[test]
    fn vulnerable_send_raises_arbitrary_events() {
        let (mut hv, a, b) = setup(XenVersion::V4_6);
        // a sends on a port it never bound; some domain receives a
        // spurious event.
        hv.hc_event_channel_op(a, EventChannelOp::Send { port: 100 }).unwrap();
        let spurious: usize = [a, b]
            .iter()
            .chain(hv.domain_ids().iter())
            .map(|&d| hv.spurious_pending_ports(d).len())
            .sum();
        assert!(spurious > 0, "uncontrolled interrupt landed somewhere");
    }

    #[test]
    fn send_on_crashed_hypervisor_fails() {
        let (mut hv, a, _) = setup(XenVersion::V4_6);
        hv.crash("test");
        assert_eq!(
            hv.hc_event_channel_op(a, EventChannelOp::Send { port: 0 }).unwrap_err(),
            HvError::Crashed
        );
    }

    #[test]
    fn pending_bitmap_lives_in_injectable_memory() {
        // The whole point: the erroneous state is reachable by the
        // injector because it is machine memory.
        let (mut hv, a, _) = setup(XenVersion::V4_13);
        let shared = hv.domain(a).unwrap().shared_info_mfn().unwrap();
        // Direct write = what the injector's PhysWrite does.
        hv.mem_write_for_test(shared, PENDING_OFFSET, &[0b0000_1010]);
        assert_eq!(hv.pending_ports(a), vec![1, 3]);
        assert_eq!(hv.spurious_pending_ports(a), vec![1, 3]);
    }

    #[test]
    fn event_counter_increments() {
        let (mut hv, a, b) = setup(XenVersion::V4_8);
        let rp = hv
            .hc_event_channel_op(a, EventChannelOp::AllocUnbound { remote: b })
            .unwrap() as u16;
        let lp = hv
            .hc_event_channel_op(b, EventChannelOp::BindInterdomain { remote: a, remote_port: rp })
            .unwrap() as u16;
        for _ in 0..5 {
            hv.hc_event_channel_op(b, EventChannelOp::Send { port: lp }).unwrap();
        }
        assert_eq!(hv.domain(a).unwrap().events_received(), 5);
    }
}
