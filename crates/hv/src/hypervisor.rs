//! The hypervisor proper: boot, domains, hypercall dispatch, exception
//! delivery and the injector hypercall.

use crate::audit::{AuditEvent, AuditLog, WriteOrigin};
use crate::domain::{Domain, StartInfo};
use crate::exchange::ExchangeArgs;
use crate::grants::{GrantEntry, GrantTableVersion};
use crate::hypercall::Hypercall;
use crate::idt::{IdtEntry, DOUBLE_FAULT_VECTOR, PAGE_FAULT_VECTOR};
use crate::injector::AccessMode;
use crate::version::{VulnConfig, XenVersion};
use crate::HvError;
use hvsim_mem::{
    DomainId, FrameAllocator, MachineMemory, Mfn, PageType, Pfn, PhysAddr, VirtAddr, PAGE_SIZE,
};
use hvsim_paging::{
    AccessKind, MemoryLayout, PageFault, Region, SharedTlb, TlbStats, Translation, WalkPolicy,
};
use serde::{Deserialize, Serialize};

/// The M2P value marking a frame with no pseudo-physical mapping.
const INVALID_M2P: u64 = u64::MAX;

/// Build-time configuration of a simulated hypervisor instance.
///
/// Mirrors the paper's experimental setup: the same build environment with
/// only the Xen version varying, plus the choice of whether the injector
/// hypercall is compiled in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// The Xen version being simulated.
    pub version: XenVersion,
    /// Whether the `arbitrary_access` injector hypercall is compiled in.
    pub injector_enabled: bool,
    /// Installed machine frames (default 4096 = 16 MiB).
    pub frames: usize,
    /// Frames per copy-on-write chunk of the frame directory (default
    /// [`hvsim_mem::DEFAULT_CHUNK_FRAMES`]). Purely a performance knob:
    /// chunk size 1 is the worst case CI uses to prove chunking is
    /// unobservable, and a value ≥ `frames` reproduces the old
    /// monolithic-vector privatization cost.
    pub chunk_frames: usize,
    /// Simulated CPUs, each with its own IDT (default 2).
    pub cpus: usize,
    /// Whether translations go through the software TLB (default true;
    /// the cache is semantically transparent, so this is an escape
    /// hatch for A/B comparison, exposed as `--no-tlb` on the CLI).
    pub tlb: bool,
}

impl BuildConfig {
    /// A stock build of `version` (no injector), 16 MiB, 2 CPUs.
    pub fn new(version: XenVersion) -> Self {
        Self {
            version,
            injector_enabled: false,
            frames: 4096,
            chunk_frames: hvsim_mem::DEFAULT_CHUNK_FRAMES,
            cpus: 2,
            tlb: true,
        }
    }

    /// Enables or disables the injector hypercall.
    #[must_use]
    pub fn injector(mut self, enabled: bool) -> Self {
        self.injector_enabled = enabled;
        self
    }

    /// Sets the installed machine frame count.
    #[must_use]
    pub fn frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the copy-on-write chunk size of the frame directory.
    #[must_use]
    pub fn chunk_frames(mut self, chunk_frames: usize) -> Self {
        self.chunk_frames = chunk_frames;
        self
    }

    /// Sets the CPU count.
    #[must_use]
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Enables or disables the software TLB.
    #[must_use]
    pub fn tlb(mut self, enabled: bool) -> Self {
        self.tlb = enabled;
        self
    }
}

/// Details of a hypervisor panic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashInfo {
    /// Panic message, as printed on the console.
    pub message: String,
}

/// The result of a guest software interrupt: the gate that was dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptDispatch {
    /// The invoked vector.
    pub vector: u8,
    /// Handler linear address from the IDT gate.
    pub handler: VirtAddr,
}

/// The simulated hypervisor.
///
/// See the [crate-level documentation](crate) for an overview. All guest
/// interaction goes through hypercall methods (`hc_*`) or the explicit
/// guest memory-access API ([`Hypervisor::guest_read_va`] and friends);
/// the intrusion injector is [`Hypervisor::hc_arbitrary_access`].
#[derive(Clone, Debug)]
pub struct Hypervisor {
    pub(crate) mem: MachineMemory,
    pub(crate) alloc: FrameAllocator,
    domains: std::collections::BTreeMap<DomainId, Domain>,
    next_domid: u16,
    version: XenVersion,
    pub(crate) vulns: VulnConfig,
    layout: MemoryLayout,
    injector_enabled: bool,
    xen_text: Mfn,
    shared_l3: Mfn,
    idt_frames: Vec<Mfn>,
    m2p_frames: Vec<Mfn>,
    crashed: Option<CrashInfo>,
    console: Vec<String>,
    pub(crate) audit: AuditLog,
    hypercall_count: u64,
    /// Software TLB over `mem`'s page tables; cloning a hypervisor
    /// starts the clone with a cold cache (see [`SharedTlb`]).
    pub(crate) tlb: SharedTlb,
}

impl Hypervisor {
    /// Boots a simulated hypervisor.
    ///
    /// Frame 0 holds the hypervisor text (exception handler stubs); the
    /// next frame is the shared hypervisor L3 page stitched into every
    /// guest's L4; then one IDT frame per CPU. Remaining frames form the
    /// domain heap.
    ///
    /// # Panics
    ///
    /// Panics if `config.frames` is too small to hold the hypervisor
    /// image (fewer than 64 frames).
    // Boot-time invariant checks: every `expect` below touches a frame
    // this constructor just reserved out of a heap it just sized, so a
    // failure is a bug in the simulator itself, not a recoverable
    // condition. Campaign code wraps world construction in its own
    // panic boundary, so even these aborts are contained per-cell.
    #[allow(clippy::expect_used)]
    pub fn new(config: BuildConfig) -> Self {
        assert!(config.frames >= 64, "need at least 64 machine frames");
        assert!(config.cpus >= 1, "need at least one CPU");
        let mut mem = MachineMemory::with_chunk_frames(config.frames, config.chunk_frames);
        let xen_text = Mfn::new(0);
        mem.info_mut(xen_text)
            .expect("frame 0 installed")
            .set_type_unchecked(PageType::Hypervisor);
        mem.write(xen_text.base(), format!("XEN-{} text", config.version).as_bytes())
            .expect("write xen text header");

        let shared_l3 = Mfn::new(1);
        mem.info_mut(shared_l3)
            .expect("frame 1 installed")
            .set_type_unchecked(PageType::Hypervisor);

        let layout = config.version.layout();
        let mut idt_frames = Vec::with_capacity(config.cpus);
        for cpu in 0..config.cpus {
            let mfn = Mfn::new(2 + cpu as u64);
            mem.info_mut(mfn)
                .expect("idt frame installed")
                .set_type_unchecked(PageType::Hypervisor);
            // Install handler stubs for the 32 architectural vectors.
            for vector in 0..32u8 {
                let handler = layout.directmap_va(vector as u64 * 16);
                let gate = IdtEntry::gate(handler);
                mem.write(
                    mfn.base().offset(IdtEntry::slot_offset(vector) as u64),
                    &gate.pack(),
                )
                .expect("write idt gate");
            }
            idt_frames.push(mfn);
        }

        // The machine-to-phys table: 8 bytes per installed frame, in
        // Xen-owned frames exposed read-only to guests at the bottom of
        // the hypervisor range (as in real Xen's RO MPT).
        let m2p_entry_bytes = 8usize;
        let m2p_frame_count = (config.frames * m2p_entry_bytes).div_ceil(PAGE_SIZE);
        let mut m2p_frames = Vec::with_capacity(m2p_frame_count);
        for i in 0..m2p_frame_count {
            let mfn = Mfn::new(2 + config.cpus as u64 + i as u64);
            mem.info_mut(mfn)
                .expect("m2p frame installed")
                .set_type_unchecked(PageType::Hypervisor);
            m2p_frames.push(mfn);
        }
        // All entries start invalid.
        for raw in 0..config.frames as u64 {
            let frame = m2p_frames[(raw as usize * 8) / PAGE_SIZE];
            let offset = (raw as usize * 8) % PAGE_SIZE;
            mem.write_u64(frame.base().offset(offset as u64), INVALID_M2P)
                .expect("m2p init");
        }

        let heap_start = Mfn::new(2 + config.cpus as u64 + m2p_frame_count as u64);
        let alloc = FrameAllocator::new(heap_start, Mfn::new(config.frames as u64));

        let mut hv = Self {
            mem,
            alloc,
            domains: Default::default(),
            next_domid: 0,
            version: config.version,
            vulns: config.version.vulns(),
            layout,
            injector_enabled: config.injector_enabled,
            xen_text,
            shared_l3,
            idt_frames,
            m2p_frames,
            crashed: None,
            console: Vec::new(),
            audit: AuditLog::new(),
            hypercall_count: 0,
            tlb: SharedTlb::new(config.tlb),
        };
        hv.console_line(format!(
            "Xen version {} (injector {})",
            config.version,
            if config.injector_enabled { "enabled" } else { "disabled" }
        ));
        hv
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The simulated Xen version.
    pub fn version(&self) -> XenVersion {
        self.version
    }

    /// The virtual memory layout in effect.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// The page-walk policy in effect.
    pub fn walk_policy(&self) -> WalkPolicy {
        self.version.walk_policy()
    }

    /// Whether the injector hypercall is compiled in.
    pub fn injector_enabled(&self) -> bool {
        self.injector_enabled
    }

    /// Read-only view of machine memory (for monitors and audits).
    pub fn mem(&self) -> &MachineMemory {
        &self.mem
    }

    /// Software-TLB hit/miss counters accumulated by this instance.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// `true` if translations consult the software TLB.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb.is_enabled()
    }

    /// Enables or disables the software TLB (the `--no-tlb` escape
    /// hatch). The cache is semantically transparent either way.
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        self.tlb.set_enabled(enabled);
    }

    /// The machine frame holding the shared hypervisor L3 table (the page
    /// the XSA-212-priv strategy links its forged PMD into).
    pub fn shared_l3_mfn(&self) -> Mfn {
        self.shared_l3
    }

    /// The hypervisor text frame.
    pub fn xen_text_mfn(&self) -> Mfn {
        self.xen_text
    }

    /// The crash record, if the hypervisor has panicked.
    pub fn crash_info(&self) -> Option<&CrashInfo> {
        self.crashed.as_ref()
    }

    /// `true` once the hypervisor has panicked.
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The console ring (every line ever printed).
    pub fn console(&self) -> &[String] {
        &self.console
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Clears the audit log (between campaign phases).
    pub fn clear_audit(&mut self) {
        self.audit.clear();
    }

    /// Total hypercalls executed, counting both [`Hypervisor::dispatch`]
    /// and direct calls to the `hc_*` entry points (exploit and injector
    /// code call them directly).
    pub fn hypercall_count(&self) -> u64 {
        self.hypercall_count
    }

    /// Counts one hypercall; every `hc_*` entry point calls this first.
    pub(crate) fn bump_hypercall_count(&mut self) {
        self.hypercall_count += 1;
    }

    /// Looks up a domain.
    ///
    /// # Errors
    ///
    /// [`HvError::NoDomain`] if the id is unknown.
    pub fn domain(&self, id: DomainId) -> Result<&Domain, HvError> {
        self.domains.get(&id).ok_or(HvError::NoDomain)
    }

    pub(crate) fn domain_mut(&mut self, id: DomainId) -> Result<&mut Domain, HvError> {
        self.domains.get_mut(&id).ok_or(HvError::NoDomain)
    }

    /// Iterates all domains in id order.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Ids of all domains, in order.
    pub fn domain_ids(&self) -> Vec<DomainId> {
        self.domains.keys().copied().collect()
    }

    pub(crate) fn console_line(&mut self, line: impl Into<String>) {
        self.console.push(line.into());
    }

    // ------------------------------------------------------------------
    // The machine-to-phys table
    // ------------------------------------------------------------------

    /// The guest virtual address of the machine-to-phys table: the very
    /// start of the guest-read-only hypervisor range (the
    /// `0xffff8000_00000000` range the paper quotes as "read-only for
    /// guest domains" — in real Xen that is the RO MPT).
    pub const M2P_VIRT_START: u64 = hvsim_paging::HYPERVISOR_VIRT_START;

    fn m2p_slot(&self, mfn: Mfn) -> Option<(Mfn, usize)> {
        let byte = (mfn.raw() as usize).checked_mul(8)?;
        let frame = self.m2p_frames.get(byte / PAGE_SIZE)?;
        Some((*frame, byte % PAGE_SIZE))
    }

    pub(crate) fn m2p_set(&mut self, mfn: Mfn, pfn: Option<Pfn>) {
        if let Some((frame, offset)) = self.m2p_slot(mfn) {
            let value = pfn.map(|p| p.raw()).unwrap_or(INVALID_M2P);
            let _ = self.mem.write_u64(frame.base().offset(offset as u64), value);
        }
    }

    /// The pseudo-physical frame recorded for `mfn` in the M2P table.
    pub fn machine_to_phys(&self, mfn: Mfn) -> Option<Pfn> {
        let (frame, offset) = self.m2p_slot(mfn)?;
        let raw = self.mem.read_u64(frame.base().offset(offset as u64)).ok()?;
        (raw != INVALID_M2P).then(|| Pfn::new(raw))
    }

    /// Resolves a virtual address inside the guest-read-only M2P window
    /// to its backing physical address.
    pub(crate) fn resolve_guest_ro(&self, va: VirtAddr) -> Option<PhysAddr> {
        let raw = va.raw();
        let size = (self.m2p_frames.len() * PAGE_SIZE) as u64;
        if !(Self::M2P_VIRT_START..Self::M2P_VIRT_START + size).contains(&raw) {
            return None;
        }
        let offset = raw - Self::M2P_VIRT_START;
        let frame = self.m2p_frames[(offset / PAGE_SIZE as u64) as usize];
        Some(frame.base().offset(offset % PAGE_SIZE as u64))
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    /// Creates a domain with `pages` frames of pseudo-physical memory
    /// (plus the start-info frame at pfn 0).
    ///
    /// # Errors
    ///
    /// [`HvError::NoMem`] if the heap cannot satisfy the allocation;
    /// [`HvError::Crashed`] after a panic.
    pub fn create_domain(
        &mut self,
        name: &str,
        privileged: bool,
        pages: u64,
    ) -> Result<DomainId, HvError> {
        if self.crashed.is_some() {
            return Err(HvError::Crashed);
        }
        let id = DomainId::new(self.next_domid);
        self.next_domid += 1;
        self.alloc.set_quota(id, pages * 2 + 16);

        let start_info_mfn = self
            .alloc
            .alloc(&mut self.mem, id, PageType::Writable)
            .map_err(|_| HvError::NoMem)?;
        let si = StartInfo {
            domid: id,
            flags: StartInfo::flags_for(privileged),
            name: name.to_owned(),
            nr_pages: pages,
        };
        self.mem.write(start_info_mfn.base(), &si.to_bytes())?;

        let shared_info_mfn = self
            .alloc
            .alloc(&mut self.mem, id, PageType::Writable)
            .map_err(|_| HvError::NoMem)?;
        let mut dom = Domain::new(id, name, privileged, start_info_mfn);
        dom.set_shared_info_mfn(shared_info_mfn);
        dom.p2m_insert(Pfn::new(0), start_info_mfn);
        self.m2p_set(start_info_mfn, Some(Pfn::new(0)));
        for i in 0..pages {
            let mfn = self
                .alloc
                .alloc(&mut self.mem, id, PageType::Writable)
                .map_err(|_| HvError::NoMem)?;
            dom.p2m_insert(Pfn::new(1 + i), mfn);
            self.m2p_set(mfn, Some(Pfn::new(1 + i)));
        }
        self.domains.insert(id, dom);
        self.console_line(format!("created {id} ('{name}', {pages} pages)"));
        Ok(id)
    }

    /// Allocates one additional frame to a domain (models
    /// `XENMEM_populate_physmap`). Returns the new `(pfn, mfn)` pair.
    ///
    /// # Errors
    ///
    /// [`HvError::NoMem`] on quota or heap exhaustion.
    pub fn alloc_domain_frame(
        &mut self,
        dom: DomainId,
        page_type: PageType,
    ) -> Result<(Pfn, Mfn), HvError> {
        self.check_alive(dom)?;
        let mfn = self
            .alloc
            .alloc(&mut self.mem, dom, page_type)
            .map_err(|_| HvError::NoMem)?;
        let d = self.domain_mut(dom)?;
        let pfn = d.next_free_pfn();
        d.p2m_insert(pfn, mfn);
        self.m2p_set(mfn, Some(pfn));
        Ok((pfn, mfn))
    }

    fn check_alive(&self, dom: DomainId) -> Result<(), HvError> {
        if self.crashed.is_some() {
            return Err(HvError::Crashed);
        }
        let d = self.domain(dom)?;
        if d.is_dead() {
            return Err(HvError::NoDomain);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Guest memory access (frame-addressed)
    // ------------------------------------------------------------------

    /// `true` if `dom` may access `mfn` directly: it owns the frame, or
    /// it has retained (possibly stale) access to it.
    pub fn frame_access_allowed(&self, dom: DomainId, mfn: Mfn) -> bool {
        let owner = self.mem.info(mfn).ok().and_then(|i| i.owner());
        owner == Some(dom)
            || self
                .domain(dom)
                .map(|d| d.retains_access(mfn))
                .unwrap_or(false)
    }

    /// Reads from a frame the domain owns (or retains access to).
    ///
    /// # Errors
    ///
    /// [`HvError::Perm`] if the domain has no access to the frame.
    pub fn guest_read_frame(
        &self,
        dom: DomainId,
        mfn: Mfn,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        if !self.frame_access_allowed(dom, mfn) {
            return Err(HvError::Perm);
        }
        self.mem.read(mfn.base().offset(offset as u64), buf)?;
        Ok(())
    }

    /// Writes to a frame the domain owns (or retains access to).
    ///
    /// Direct writes to the domain's *own* page-table-typed frames are
    /// refused — in PV direct paging all page-table updates must go
    /// through `mmu_update`. Writes through *retained* (stale) access are
    /// not filtered: they model still-live hardware mappings.
    ///
    /// # Errors
    ///
    /// [`HvError::Perm`] on access violations.
    pub fn guest_write_frame(
        &mut self,
        dom: DomainId,
        mfn: Mfn,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        self.check_alive(dom)?;
        let info = self.mem.info(mfn)?;
        let owns = info.owner() == Some(dom);
        let retained = self.domain(dom)?.retains_access(mfn);
        if !owns && !retained {
            return Err(HvError::Perm);
        }
        if owns && info.page_type().is_page_table() {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "direct_pt_write",
                detail: format!("direct write to {}-typed frame {mfn}", info.page_type()),
            });
            return Err(HvError::Perm);
        }
        self.mem.write(mfn.base().offset(offset as u64), bytes)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Guest memory access (virtually-addressed)
    // ------------------------------------------------------------------

    /// Translates `va` in `dom`'s context (layout veto + page walk).
    ///
    /// # Errors
    ///
    /// [`HvError::GuestFault`] carrying the structured page fault;
    /// [`HvError::Inval`] if the domain has no page tables installed.
    pub fn guest_translate(&self, dom: DomainId, va: VirtAddr) -> Result<Translation, HvError> {
        let d = self.domain(dom)?;
        let cr3 = d.cr3().ok_or(HvError::Inval)?;
        let policy = self.walk_policy();
        Ok(self.tlb.translate(&self.mem, cr3, va, &policy)?)
    }

    /// Reads from the guest-read-only hypervisor window (the M2P table).
    ///
    /// # Errors
    ///
    /// [`HvError::GuestFault`] outside the mapped window.
    pub fn guest_read_ro_window(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        self.check_alive(dom)?;
        if let Err(denial) = self.layout.guest_may(va, AccessKind::Read) {
            let pf: PageFault = denial.into();
            self.deliver_page_fault(&pf);
            return Err(HvError::GuestFault(pf));
        }
        let Some(phys) = self.resolve_guest_ro(va) else {
            let pf = PageFault::new(
                va,
                AccessKind::Read,
                hvsim_paging::PageFaultKind::NotPresent { level: 4 },
            );
            self.deliver_page_fault(&pf);
            return Err(HvError::GuestFault(pf));
        };
        self.mem.read(phys, buf)?;
        Ok(())
    }

    fn guest_access(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        access: AccessKind,
        user_mode: bool,
    ) -> Result<Translation, HvError> {
        self.check_alive(dom)?;
        if let Err(denial) = self.layout.guest_may(va, access) {
            let pf: PageFault = denial.into();
            self.deliver_page_fault(&pf);
            return Err(HvError::GuestFault(pf));
        }
        match self.guest_translate(dom, va) {
            Ok(t) => match t.check(access, user_mode) {
                Ok(()) => Ok(t),
                Err(pf) => {
                    self.deliver_page_fault(&pf);
                    Err(HvError::GuestFault(pf))
                }
            },
            Err(HvError::GuestFault(pf)) => {
                self.deliver_page_fault(&pf);
                Err(HvError::GuestFault(pf))
            }
            Err(e) => Err(e),
        }
    }

    /// Reads guest-virtual memory in kernel (ring ≤ 1) context.
    ///
    /// # Errors
    ///
    /// [`HvError::GuestFault`] on translation or permission failure; the
    /// fault is *delivered* (a corrupted IDT therefore escalates).
    pub fn guest_read_va(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let t = self.guest_access(dom, va, AccessKind::Read, false)?;
        self.mem.read(t.phys, buf)?;
        Ok(())
    }

    /// Writes guest-virtual memory in kernel context.
    ///
    /// # Errors
    ///
    /// See [`Hypervisor::guest_read_va`].
    pub fn guest_write_va(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        let t = self.guest_access(dom, va, AccessKind::Write, false)?;
        self.mem.write(t.phys, bytes)?;
        Ok(())
    }

    /// Reads guest-virtual memory in **user mode** (ring 3): every level
    /// of the translation must carry the USER bit.
    ///
    /// # Errors
    ///
    /// See [`Hypervisor::guest_read_va`]; additionally faults with
    /// `NotUser` through supervisor-only mappings.
    pub fn guest_read_va_user(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let t = self.guest_access(dom, va, AccessKind::Read, true)?;
        self.mem.read(t.phys, buf)?;
        Ok(())
    }

    /// Writes guest-virtual memory in **user mode** (ring 3).
    ///
    /// # Errors
    ///
    /// See [`Hypervisor::guest_read_va_user`].
    pub fn guest_write_va_user(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        let t = self.guest_access(dom, va, AccessKind::Write, true)?;
        self.mem.write(t.phys, bytes)?;
        Ok(())
    }

    /// Checks that `va` is executable in `dom`'s context and returns the
    /// translation (the caller fetches and interprets the "code").
    ///
    /// # Errors
    ///
    /// See [`Hypervisor::guest_read_va`].
    pub fn guest_exec_va(&mut self, dom: DomainId, va: VirtAddr) -> Result<Translation, HvError> {
        self.guest_access(dom, va, AccessKind::Execute, false)
    }

    // ------------------------------------------------------------------
    // Hypervisor-privileged copies (the XSA-212 surface)
    // ------------------------------------------------------------------

    /// Resolves a linear address the way hypervisor code would: direct
    /// map first, then (for guest-half addresses) the current domain's
    /// page tables.
    pub(crate) fn resolve_hv_va(&self, dom: DomainId, va: VirtAddr) -> Option<PhysAddr> {
        if let Some(phys) = self.layout.directmap_phys(va) {
            return Some(PhysAddr::new(phys));
        }
        match self.layout.region_of(va) {
            Region::GuestVirtual | Region::LinearPtWindow => self
                .domain(dom)
                .ok()
                .and_then(|d| d.cr3())
                .and_then(|cr3| {
                    self.tlb
                        .phys_of(&self.mem, cr3, va, &self.walk_policy())
                        .ok()
                }),
            _ => None,
        }
    }

    /// The *checked* guest copy (fixed-version behaviour): the handle
    /// must be an ordinary guest address, mapped writable.
    pub(crate) fn copy_to_guest_checked(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        if self.layout.region_of(va) != Region::GuestVirtual {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "guest_handle",
                detail: format!("handle {va} is not a guest address"),
            });
            return Err(HvError::Fault);
        }
        let t = self.guest_translate(dom, va)?;
        t.check(AccessKind::Write, false).map_err(HvError::GuestFault)?;
        self.mem.write(t.phys, bytes)?;
        Ok(())
    }

    /// The *unchecked* copy of vulnerable builds: whatever the address
    /// resolves to in hypervisor context gets written, with hypervisor
    /// privileges.
    pub(crate) fn copy_to_guest_unchecked(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        let phys = self.resolve_hv_va(dom, va).ok_or(HvError::Fault)?;
        self.mem.write(phys, bytes)?;
        self.audit.push(AuditEvent::HypervisorWrite {
            dom,
            phys,
            len: bytes.len(),
            origin: WriteOrigin::UncheckedCopy,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // IDT and exceptions
    // ------------------------------------------------------------------

    /// The linear IDT base for `cpu`, as the (unprivileged, untrapped)
    /// `sidt` instruction would reveal it to a PV guest.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn sidt(&self, cpu: usize) -> VirtAddr {
        self.layout.directmap_va(self.idt_frames[cpu].base().raw())
    }

    /// Number of simulated CPUs.
    pub fn cpu_count(&self) -> usize {
        self.idt_frames.len()
    }

    /// Reads an IDT gate.
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] for an out-of-range cpu.
    pub fn idt_entry(&self, cpu: usize, vector: u8) -> Result<IdtEntry, HvError> {
        let mfn = *self.idt_frames.get(cpu).ok_or(HvError::Inval)?;
        let mut buf = [0u8; 16];
        self.mem
            .read(mfn.base().offset(IdtEntry::slot_offset(vector) as u64), &mut buf)?;
        Ok(IdtEntry::unpack(&buf))
    }

    /// The architectural handler stub address for `vector` (inside the
    /// hypervisor text).
    pub fn handler_stub_va(&self, vector: u8) -> VirtAddr {
        self.layout
            .directmap_va(self.xen_text.base().raw() + vector as u64 * 16)
    }

    /// Whether `va` points into the hypervisor's exception-handler stubs.
    pub fn is_valid_handler(&self, va: VirtAddr) -> bool {
        let base = self.layout.directmap_va(self.xen_text.base().raw()).raw();
        (base..base + PAGE_SIZE as u64).contains(&va.raw())
    }

    /// Delivers a page fault through the (possibly corrupted) IDT.
    ///
    /// Returns `true` if the fault was delivered normally. If the #PF
    /// gate has been corrupted, delivery escalates to a double fault and
    /// the hypervisor panics — the XSA-212-crash violation.
    pub fn deliver_page_fault(&mut self, pf: &PageFault) -> bool {
        if self.crashed.is_some() {
            return false;
        }
        let gate = match self.idt_entry(0, PAGE_FAULT_VECTOR) {
            Ok(g) => g,
            Err(_) => {
                self.double_fault(pf);
                return false;
            }
        };
        if gate.present && self.is_valid_handler(gate.offset) {
            self.audit.push(AuditEvent::Exception {
                vector: PAGE_FAULT_VECTOR,
                addr: Some(pf.va),
                delivered: true,
            });
            true
        } else {
            self.audit.push(AuditEvent::Exception {
                vector: PAGE_FAULT_VECTOR,
                addr: Some(pf.va),
                delivered: false,
            });
            self.double_fault(pf);
            false
        }
    }

    fn double_fault(&mut self, pf: &PageFault) {
        self.audit.push(AuditEvent::Exception {
            vector: DOUBLE_FAULT_VECTOR,
            addr: Some(pf.va),
            delivered: false,
        });
        self.console_line("(XEN) *** DOUBLE FAULT ***");
        self.console_line(format!(
            "(XEN) Faulting linear address: {:#018x}",
            pf.va.raw()
        ));
        self.console_line("(XEN) Panic on CPU 0:");
        self.console_line("(XEN) DOUBLE FAULT -- system shutdown");
        self.crash("DOUBLE FAULT -- system shutdown");
    }

    /// Panics the hypervisor: all domains die, all further hypercalls
    /// return [`HvError::Crashed`].
    pub fn crash(&mut self, message: &str) {
        if self.crashed.is_some() {
            return;
        }
        self.crashed = Some(CrashInfo {
            message: message.to_owned(),
        });
        self.audit.push(AuditEvent::Crash {
            message: message.to_owned(),
        });
        for d in self.domains.values_mut() {
            d.kill();
        }
    }

    /// A guest issues `int <vector>`: reads the gate and reports what the
    /// CPU would dispatch to. Code execution semantics live above the
    /// hypervisor (the guest world interprets the handler address).
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] if the gate is not present.
    pub fn software_interrupt(
        &mut self,
        dom: DomainId,
        vector: u8,
    ) -> Result<InterruptDispatch, HvError> {
        self.check_alive(dom)?;
        let gate = self.idt_entry(0, vector)?;
        if !gate.present {
            return Err(HvError::Inval);
        }
        self.audit.push(AuditEvent::Exception {
            vector,
            addr: Some(gate.offset),
            delivered: true,
        });
        Ok(InterruptDispatch {
            vector,
            handler: gate.offset,
        })
    }

    // ------------------------------------------------------------------
    // Hypercalls (non-MMU; the MMU family lives in validate.rs)
    // ------------------------------------------------------------------

    /// Uniform dispatcher: routes a [`Hypercall`] to its implementation,
    /// audits the call, and returns the errno-style result.
    ///
    /// # Errors
    ///
    /// Propagates the callee's error.
    pub fn dispatch(&mut self, dom: DomainId, call: &mut Hypercall) -> Result<u64, HvError> {
        let name = call.name();
        let result = match call {
            Hypercall::MmuUpdate(updates) => {
                let updates = updates.clone();
                self.hc_mmu_update(dom, &updates)
            }
            Hypercall::MmuExtOp(ops) => {
                let ops = ops.clone();
                self.hc_mmuext_op(dom, &ops)
            }
            Hypercall::UpdateVaMapping { va, val } => {
                let (va, val) = (*va, *val);
                self.hc_update_va_mapping(dom, va, val)
            }
            Hypercall::MemoryExchange(args) => {
                let args = args.clone();
                self.hc_memory_exchange(dom, &args)
            }
            Hypercall::DecreaseReservation {
                pfns,
                after_cache_maintenance,
            } => {
                let (pfns, acm) = (pfns.clone(), *after_cache_maintenance);
                self.hc_decrease_reservation(dom, &pfns, acm)
            }
            Hypercall::GrantTableSetVersion(v) => {
                let v = *v;
                self.hc_grant_table_set_version(dom, v)
            }
            Hypercall::SetTrapTable(entries) => {
                let entries = entries.clone();
                self.hc_set_trap_table(dom, &entries)
            }
            Hypercall::ConsoleIo(line) => {
                let line = line.clone();
                self.hc_console_io(dom, &line)
            }
            Hypercall::ArbitraryAccess { addr, data, mode } => {
                let (addr, mode) = (*addr, *mode);
                let mut buf = std::mem::take(data);
                let r = self.hc_arbitrary_access(dom, addr, &mut buf, mode);
                *data = buf;
                r
            }
        };
        self.audit.push(AuditEvent::Hypercall {
            dom,
            name,
            result: result.as_ref().map(|&v| v as i64).unwrap_or_else(|e| e.errno()),
        });
        result
    }

    /// `HYPERVISOR_console_io`: appends a guest-tagged line to the
    /// hypervisor console.
    ///
    /// # Errors
    ///
    /// [`HvError::Crashed`] / [`HvError::NoDomain`] per the usual checks.
    pub fn hc_console_io(&mut self, dom: DomainId, line: &str) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        self.console_line(format!("[{dom}] {line}"));
        Ok(0)
    }

    /// `HYPERVISOR_set_trap_table`: registers guest exception handlers.
    ///
    /// # Errors
    ///
    /// Standard liveness checks.
    pub fn hc_set_trap_table(
        &mut self,
        dom: DomainId,
        entries: &[(u8, VirtAddr)],
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        let d = self.domain_mut(dom)?;
        for &(vector, va) in entries {
            d.set_trap_handler(vector, va);
        }
        Ok(0)
    }

    /// `XENMEM_exchange`. See [`ExchangeArgs`] for the XSA-212 mechanics.
    ///
    /// # Errors
    ///
    /// [`HvError::Fault`] for bad handles (fixed builds) or bad input
    /// gmfns (all builds — on vulnerable builds the error write-back has
    /// already happened by then, which *is* the vulnerability).
    pub fn hc_memory_exchange(
        &mut self,
        dom: DomainId,
        args: &ExchangeArgs,
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        let unchecked = self.vulns.xsa212_exchange_unchecked_handle;
        if !unchecked && self.layout.region_of(args.out_extent_start) != Region::GuestVirtual {
            self.audit.push(AuditEvent::ValidationRejected {
                dom,
                check: "exchange_handle",
                detail: format!("out.extent_start {} rejected", args.out_extent_start),
            });
            return Err(HvError::Fault);
        }
        let mut exchanged = 0u64;
        for (i, &gmfn) in args.in_gmfns.iter().enumerate() {
            let slot = args.out_slot(i);
            let backing = self.domain(dom)?.p2m(Pfn::new(gmfn));
            match backing {
                Some(old_mfn) => {
                    let new_mfn = self
                        .alloc
                        .alloc(&mut self.mem, dom, PageType::Writable)
                        .map_err(|_| HvError::NoMem)?;
                    let d = self.domain_mut(dom)?;
                    d.p2m_remove(Pfn::new(gmfn));
                    d.p2m_insert(Pfn::new(gmfn), new_mfn);
                    self.m2p_set(old_mfn, None);
                    self.m2p_set(new_mfn, Some(Pfn::new(gmfn)));
                    self.alloc.free(&mut self.mem, old_mfn)?;
                    self.exchange_copy(dom, slot, new_mfn.raw(), unchecked)?;
                    exchanged += 1;
                }
                None => {
                    // Error path: Xen writes the offending input extent
                    // back through the (possibly unchecked) handle before
                    // failing. On vulnerable builds this is the
                    // write-what-where.
                    self.exchange_copy(dom, slot, gmfn, unchecked)?;
                    return Err(HvError::Fault);
                }
            }
        }
        Ok(exchanged)
    }

    fn exchange_copy(
        &mut self,
        dom: DomainId,
        va: VirtAddr,
        value: u64,
        unchecked: bool,
    ) -> Result<(), HvError> {
        let bytes = value.to_le_bytes();
        if unchecked {
            self.copy_to_guest_unchecked(dom, va, &bytes)
        } else {
            self.copy_to_guest_checked(dom, va, &bytes)
        }
    }

    /// `XENMEM_decrease_reservation`: returns frames to the hypervisor.
    ///
    /// On XSA-393-vulnerable builds, a preceding cache-maintenance
    /// operation leaves the guest's mapping live: the frame is freed (and
    /// may be re-allocated to another domain) while the guest can still
    /// reach it — the *Keep Page Access* erroneous state.
    ///
    /// # Errors
    ///
    /// Standard liveness checks; unknown pfns are skipped (counted in the
    /// return value as in Xen).
    pub fn hc_decrease_reservation(
        &mut self,
        dom: DomainId,
        pfns: &[Pfn],
        after_cache_maintenance: bool,
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        let vulnerable = self.vulns.xsa393_decrease_reservation_keeps_mapping;
        let mut done = 0u64;
        for &pfn in pfns {
            let Some(mfn) = self.domain_mut(dom)?.p2m_remove(pfn) else {
                continue;
            };
            if vulnerable && after_cache_maintenance {
                self.domain_mut(dom)?.retain_access(mfn);
                self.audit.push(AuditEvent::DanglingReference {
                    dom,
                    mfn,
                    detail: "decrease_reservation left mapping live (XSA-393)".into(),
                });
            } else {
                self.domain_mut(dom)?.drop_retained_access(mfn);
            }
            self.m2p_set(mfn, None);
            self.alloc.free(&mut self.mem, mfn)?;
            done += 1;
        }
        Ok(done)
    }

    /// `GNTTABOP_set_version`.
    ///
    /// Switching v1 → v2 allocates Xen-owned status frames and maps them
    /// into the guest. Switching v2 → v1 must release them; XSA-387
    /// vulnerable builds leak the guest's access instead.
    ///
    /// # Errors
    ///
    /// [`HvError::NoMem`] if status frames cannot be allocated.
    pub fn hc_grant_table_set_version(
        &mut self,
        dom: DomainId,
        version: GrantTableVersion,
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        let current = self.domain(dom)?.grant_table().version();
        match (current, version) {
            (GrantTableVersion::V1, GrantTableVersion::V2) => {
                // Status frames are hypervisor pages mapped into the guest.
                let mfn = self
                    .alloc
                    .alloc(&mut self.mem, dom, PageType::GrantTable)
                    .map_err(|_| HvError::NoMem)?;
                self.mem.info_mut(mfn)?.set_owner_unchecked(None);
                self.mem.info_mut(mfn)?.set_type_unchecked(PageType::GrantTable);
                let d = self.domain_mut(dom)?;
                d.grant_table_mut().add_status_frame(mfn);
                d.grant_table_mut().set_version(GrantTableVersion::V2);
                d.retain_access(mfn);
                Ok(0)
            }
            (GrantTableVersion::V2, GrantTableVersion::V1) => {
                let vulnerable = self.vulns.xsa387_gnttab_v2_status_leak;
                let frames = self.domain_mut(dom)?.grant_table_mut().take_status_frames();
                for mfn in frames {
                    if vulnerable {
                        // The guest's mapping of the status page survives
                        // the switch: Keep Page Reference.
                        self.audit.push(AuditEvent::DanglingReference {
                            dom,
                            mfn,
                            detail: "gnttab v2->v1 left status page mapped (XSA-387)".into(),
                        });
                    } else {
                        self.domain_mut(dom)?.drop_retained_access(mfn);
                    }
                    self.mem.info_mut(mfn)?.release();
                    self.alloc.free(&mut self.mem, mfn)?;
                }
                self.domain_mut(dom)?
                    .grant_table_mut()
                    .set_version(GrantTableVersion::V1);
                Ok(0)
            }
            _ => Ok(0),
        }
    }

    /// Grants `grantee` (read or read/write) access to one of `dom`'s
    /// frames, returning the grant reference.
    ///
    /// # Errors
    ///
    /// [`HvError::Perm`] if `dom` does not own `mfn`.
    pub fn hc_grant_access(
        &mut self,
        dom: DomainId,
        grantee: DomainId,
        mfn: Mfn,
        writable: bool,
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        self.check_alive(dom)?;
        if self.mem.info(mfn)?.owner() != Some(dom) {
            return Err(HvError::Perm);
        }
        let gref = self.domain_mut(dom)?.grant_table_mut().add_entry(GrantEntry {
            domid: grantee,
            frame: mfn,
            writable,
            mapped: false,
        }) as u64;
        Ok(gref)
    }

    /// Maps a grant: `grantee` gains access to the granted frame.
    ///
    /// # Errors
    ///
    /// [`HvError::Inval`] for unknown grant references,
    /// [`HvError::Perm`] if the grant names a different grantee.
    pub fn hc_grant_map(
        &mut self,
        grantee: DomainId,
        granter: DomainId,
        gref: usize,
    ) -> Result<Mfn, HvError> {
        self.hypercall_count += 1;
        self.check_alive(grantee)?;
        let entry = *self
            .domain(granter)?
            .grant_table()
            .entry(gref)
            .ok_or(HvError::Inval)?;
        if entry.domid != grantee {
            return Err(HvError::Perm);
        }
        self.domain_mut(granter)?
            .grant_table_mut()
            .entry_mut(gref)
            .ok_or(HvError::Inval)?
            .mapped = true;
        self.domain_mut(grantee)?.retain_access(entry.frame);
        Ok(entry.frame)
    }

    /// The paper's injector hypercall:
    /// `arbitrary_access(addr, buff, n, action)`.
    ///
    /// Reads fill `data`; writes consume it. Linear addresses resolve via
    /// the direct map or (for guest-half addresses) the calling domain's
    /// page tables — with **no permission checks**, which is the point.
    /// Physical addresses are mapped and accessed directly, mirroring the
    /// prototype's `map into Xen linear address space and perform the
    /// operation` path (§V-B).
    ///
    /// # Errors
    ///
    /// [`HvError::NoSys`] when the build does not include the injector;
    /// [`HvError::Fault`] for unresolvable addresses.
    /// Host-debugger physical access (a gdbsx/JTAG-style stub): reads or
    /// writes machine memory from *outside* any domain context. Unlike
    /// [`Hypervisor::hc_arbitrary_access`] this requires **no patched
    /// hypercall** — it models the less-intrusive injector implementation
    /// the paper's §IX-D trades off against ("choosing adequate injection
    /// solutions"). Always available, audited separately.
    ///
    /// # Errors
    ///
    /// [`HvError::Mem`] for out-of-range accesses.
    pub fn debug_stub_access(
        &mut self,
        addr: PhysAddr,
        data: &mut [u8],
        write: bool,
    ) -> Result<(), HvError> {
        if write {
            self.mem.write(addr, data)?;
            self.audit.push(AuditEvent::HypervisorWrite {
                dom: DomainId::new(u16::MAX),
                phys: addr,
                len: data.len(),
                origin: WriteOrigin::Injector,
            });
        } else {
            self.mem.read(addr, data)?;
        }
        Ok(())
    }

    /// Resolves a linear address for the debug stub: direct map, or a
    /// walk through `dom`'s page tables for guest-half addresses.
    pub fn debug_stub_resolve(&self, dom: DomainId, va: VirtAddr) -> Option<PhysAddr> {
        self.resolve_hv_va(dom, va)
    }

    /// Injector-only: grants `dom` retained access to `mfn` without any
    /// ownership transfer — directly inducing the *Keep Page Reference*
    /// erroneous-state family (the states XSA-387/XSA-393 leak into
    /// existence) on builds where those bugs are fixed.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSys`] when the injector is not compiled in.
    pub fn inject_retain_access(&mut self, dom: DomainId, mfn: Mfn) -> Result<(), HvError> {
        if !self.injector_enabled {
            return Err(HvError::NoSys);
        }
        self.check_alive(dom)?;
        if !self.mem.contains(mfn) {
            return Err(HvError::Fault);
        }
        self.domain_mut(dom)?.retain_access(mfn);
        self.audit.push(AuditEvent::DanglingReference {
            dom,
            mfn,
            detail: "injected retained access (keep page reference)".into(),
        });
        Ok(())
    }

    pub fn hc_arbitrary_access(
        &mut self,
        dom: DomainId,
        addr: u64,
        data: &mut [u8],
        mode: AccessMode,
    ) -> Result<u64, HvError> {
        self.hypercall_count += 1;
        if !self.injector_enabled {
            return Err(HvError::NoSys);
        }
        self.check_alive(dom)?;
        let phys = if mode.is_linear() {
            self.resolve_hv_va(dom, VirtAddr::new(addr))
                .ok_or(HvError::Fault)?
        } else {
            PhysAddr::new(addr)
        };
        self.audit.push(AuditEvent::InjectorAccess {
            dom,
            addr,
            len: data.len(),
            mode: mode.label(),
        });
        if mode.is_write() {
            self.mem.write(phys, data)?;
            self.audit.push(AuditEvent::HypervisorWrite {
                dom,
                phys,
                len: data.len(),
                origin: WriteOrigin::Injector,
            });
        } else {
            self.mem.read(phys, data)?;
        }
        Ok(data.len() as u64)
    }
}

#[cfg(test)]
impl Hypervisor {
    /// Test-only raw frame write (stands in for an injector PhysWrite).
    pub(crate) fn mem_write_for_test(&mut self, mfn: Mfn, offset: usize, bytes: &[u8]) {
        self.mem
            .write(mfn.base().offset(offset as u64), bytes)
            .expect("test write");
    }
}
