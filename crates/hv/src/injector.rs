//! The intrusion-injection hypercall's access modes.
//!
//! The paper's prototype exposes (§V-B):
//!
//! ```c
//! long arbitrary_access(void* addr, void* buff, size_t n, action_t action);
//! ```
//!
//! where `action` selects read/write and linear/physical address mode. The
//! simulator mirrors the interface exactly; the implementation lives in
//! [`Hypervisor::hc_arbitrary_access`](crate::Hypervisor::hc_arbitrary_access).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation and address mode of an `arbitrary_access` call — the paper's
/// `action_t`.
///
/// A *linear* address is already mapped in the hypervisor (e.g. what
/// `sidt` returns, or a direct-map address); a *physical* address names
/// hardware memory and is mapped by the injector prior to the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// `ARBITRARY_READ_LINEAR`.
    LinearRead,
    /// `ARBITRARY_WRITE_LINEAR`.
    LinearWrite,
    /// `ARBITRARY_READ_PHYS`.
    PhysRead,
    /// `ARBITRARY_WRITE_PHYS`.
    PhysWrite,
}

impl AccessMode {
    /// `true` for the write modes.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessMode::LinearWrite | AccessMode::PhysWrite)
    }

    /// `true` for the linear-address modes.
    pub const fn is_linear(self) -> bool {
        matches!(self, AccessMode::LinearRead | AccessMode::LinearWrite)
    }

    /// Audit-log label.
    pub const fn label(self) -> &'static str {
        match self {
            AccessMode::LinearRead => "linear read",
            AccessMode::LinearWrite => "linear write",
            AccessMode::PhysRead => "physical read",
            AccessMode::PhysWrite => "physical write",
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::LinearWrite.is_write());
        assert!(AccessMode::LinearWrite.is_linear());
        assert!(!AccessMode::PhysRead.is_write());
        assert!(!AccessMode::PhysRead.is_linear());
    }

    #[test]
    fn labels() {
        assert_eq!(AccessMode::PhysWrite.to_string(), "physical write");
        assert_eq!(AccessMode::LinearRead.label(), "linear read");
    }
}
