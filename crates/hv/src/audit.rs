//! The hypervisor audit log.
//!
//! Every security-relevant event — validation rejections, page-table
//! writes, exception deliveries, injector activity — is recorded here.
//! The intrusion-injection monitor replays this log to decide whether an
//! injected erroneous state equals an exploit-induced one (the paper's
//! "page-table walk audit" plus console-output comparison, §VI-C).

use hvsim_mem::{DomainId, Mfn, PhysAddr, VirtAddr};
use serde::Serialize;
use std::fmt;

/// How a page-table entry came to be written.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum WriteOrigin {
    /// Through validated `mmu_update` / `update_va_mapping`.
    Validated,
    /// Through a vulnerable fast path that skipped validation.
    VulnerableFastPath,
    /// Through the unchecked hypervisor write primitive of XSA-212.
    UncheckedCopy,
    /// Through the injector hypercall.
    Injector,
}

/// One audited event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub enum AuditEvent {
    /// A hypercall was dispatched.
    Hypercall {
        /// Calling domain.
        dom: DomainId,
        /// Hypercall name.
        name: &'static str,
        /// errno-style result (0 on success).
        result: i64,
    },
    /// A validation check rejected a request.
    ValidationRejected {
        /// Calling domain.
        dom: DomainId,
        /// The check that fired (e.g. `"l2_pse"`, `"l4_fastpath"`).
        check: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A page-table entry was written.
    PteWritten {
        /// Domain whose tables changed.
        dom: DomainId,
        /// Physical slot that was written.
        slot: PhysAddr,
        /// Previous raw value.
        old: u64,
        /// New raw value.
        new: u64,
        /// How the write happened.
        origin: WriteOrigin,
    },
    /// Hypervisor memory was written outside page-table maintenance.
    HypervisorWrite {
        /// Domain that caused the write.
        dom: DomainId,
        /// Target physical address.
        phys: PhysAddr,
        /// Length in bytes.
        len: usize,
        /// How the write happened.
        origin: WriteOrigin,
    },
    /// An exception was delivered.
    Exception {
        /// Vector number (14 = #PF, 8 = #DF).
        vector: u8,
        /// Faulting/linear address if applicable.
        addr: Option<VirtAddr>,
        /// Whether delivery succeeded (a corrupted IDT makes it escalate).
        delivered: bool,
    },
    /// The hypervisor panicked.
    Crash {
        /// Panic message (mirrors the Xen console output).
        message: String,
    },
    /// The injector hypercall performed an access.
    InjectorAccess {
        /// Calling domain.
        dom: DomainId,
        /// Raw target address (linear or physical per `mode`).
        addr: u64,
        /// Access length.
        len: usize,
        /// Mode name (`"linear"`/`"physical"`, `"read"`/`"write"`).
        mode: &'static str,
    },
    /// A frame changed owner or was freed while references remained —
    /// the "keep page reference" family of erroneous states.
    DanglingReference {
        /// Domain holding the stale reference.
        dom: DomainId,
        /// The frame concerned.
        mfn: Mfn,
        /// Detail (which operation leaked it).
        detail: String,
    },
}

impl AuditEvent {
    /// Stable kebab-case kind label, used as the span-path suffix when
    /// audit events are bridged into a trace stream (one adapter in
    /// `intrusion-core` — downstream code matches on this instead of
    /// re-implementing the variant bookkeeping).
    pub fn kind(&self) -> &'static str {
        match self {
            AuditEvent::Hypercall { .. } => "hypercall",
            AuditEvent::ValidationRejected { .. } => "validation-rejected",
            AuditEvent::PteWritten { .. } => "pte-written",
            AuditEvent::HypervisorWrite { .. } => "hypervisor-write",
            AuditEvent::Exception { .. } => "exception",
            AuditEvent::Crash { .. } => "crash",
            AuditEvent::InjectorAccess { .. } => "injector-access",
            AuditEvent::DanglingReference { .. } => "dangling-reference",
        }
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::Hypercall { dom, name, result } => {
                write!(f, "[{dom}] hypercall {name} -> {result}")
            }
            AuditEvent::ValidationRejected { dom, check, detail } => {
                write!(f, "[{dom}] validation '{check}' rejected: {detail}")
            }
            AuditEvent::PteWritten { dom, slot, old, new, origin } => {
                write!(f, "[{dom}] pte @{slot} {old:#x} -> {new:#x} ({origin:?})")
            }
            AuditEvent::HypervisorWrite { dom, phys, len, origin } => {
                write!(f, "[{dom}] hv write {len}B @{phys} ({origin:?})")
            }
            AuditEvent::Exception { vector, addr, delivered } => {
                write!(f, "exception vec={vector} addr={addr:?} delivered={delivered}")
            }
            AuditEvent::Crash { message } => write!(f, "CRASH: {message}"),
            AuditEvent::InjectorAccess { dom, addr, len, mode } => {
                write!(f, "[{dom}] injector {mode} {len}B @{addr:#x}")
            }
            AuditEvent::DanglingReference { dom, mfn, detail } => {
                write!(f, "[{dom}] dangling reference to {mfn}: {detail}")
            }
        }
    }
}

/// A bounded in-order log of [`AuditEvent`]s.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
    capacity: usize,
    dropped: u64,
}

impl AuditLog {
    /// Default maximum retained events.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates an empty log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty log retaining at most `capacity` events; further
    /// events are counted but dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event.
    pub fn push(&mut self, event: AuditEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events matching a predicate.
    pub fn filter<'a, P>(&'a self, pred: P) -> impl Iterator<Item = &'a AuditEvent>
    where
        P: FnMut(&&'a AuditEvent) -> bool + 'a,
    {
        self.events.iter().filter(pred)
    }

    /// Clears the log (used between campaign runs on a reused instance).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_filter() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Hypercall {
            dom: DomainId::DOM0,
            name: "mmu_update",
            result: 0,
        });
        log.push(AuditEvent::Crash {
            message: "DOUBLE FAULT".into(),
        });
        assert_eq!(log.events().len(), 2);
        let crashes: Vec<_> = log
            .filter(|e| matches!(e, AuditEvent::Crash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1);
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let mut log = AuditLog::with_capacity(2);
        for i in 0..5 {
            log.push(AuditEvent::Hypercall {
                dom: DomainId::DOM0,
                name: "noop",
                result: i,
            });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        log.clear();
        assert!(log.events().is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn display_is_greppable() {
        let e = AuditEvent::InjectorAccess {
            dom: DomainId::new(3),
            addr: 0xffff_8300_0000_0000,
            len: 8,
            mode: "linear write",
        };
        let s = e.to_string();
        assert!(s.contains("injector"));
        assert!(s.contains("dom3"));
    }

    #[test]
    fn kinds_are_stable_labels() {
        let e = AuditEvent::Hypercall { dom: DomainId::DOM0, name: "mmu_update", result: 0 };
        assert_eq!(e.kind(), "hypercall");
        let e = AuditEvent::Crash { message: "DOUBLE FAULT".into() };
        assert_eq!(e.kind(), "crash");
        let e = AuditEvent::DanglingReference {
            dom: DomainId::DOM0,
            mfn: Mfn::new(7),
            detail: "x".into(),
        };
        assert_eq!(e.kind(), "dangling-reference");
    }
}
