//! `XENMEM_exchange` argument structure.

use hvsim_mem::VirtAddr;
use serde::{Deserialize, Serialize};

/// Arguments to the `memory_exchange` hypercall.
///
/// The guest asks to trade the frames behind `in_gmfns` for fresh frames;
/// the hypervisor reports results by **copying data to the guest-supplied
/// handle** `out_extent_start`, offset by `nr_exchanged` entries:
///
/// ```text
/// target = out_extent_start + 8 * (nr_exchanged + i)
/// ```
///
/// XSA-212 is an insufficient check on that handle: a malicious guest
/// encodes an arbitrary *hypervisor* linear address in
/// `out_extent_start`/`nr_exchanged` and supplies an invalid `in_gmfn`
/// whose raw value is the 8 bytes it wants written, turning the error
/// write-back path into a hypervisor-privileged write-what-where.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeArgs {
    /// Guest pseudo-physical frame numbers to exchange. On the error
    /// path the raw value is written back verbatim — attacker-controlled
    /// data in the XSA-212 abuse.
    pub in_gmfns: Vec<u64>,
    /// Guest handle the result extents are copied to.
    pub out_extent_start: VirtAddr,
    /// Number of extents already exchanged (offsets the output writes).
    pub nr_exchanged: u64,
}

impl ExchangeArgs {
    /// A well-formed exchange of `gmfns` reporting to `out`.
    pub fn new(in_gmfns: Vec<u64>, out_extent_start: VirtAddr) -> Self {
        Self {
            in_gmfns,
            out_extent_start,
            nr_exchanged: 0,
        }
    }

    /// The guest handle slot the `i`-th result is written to.
    pub fn out_slot(&self, i: usize) -> VirtAddr {
        self.out_extent_start
            .offset(8 * (self.nr_exchanged + i as u64))
    }

    /// Builds the argument encoding used by the XSA-212 exploits: choose
    /// `out_extent_start` and `nr_exchanged` such that slot 0 lands on
    /// `target` (the paper's
    /// `exch.out.extent_start + 8 * exch.nr_exchanged` expression), and
    /// pass `value` as the single invalid input gmfn so the error path
    /// writes it there.
    pub fn write_what_where(target: VirtAddr, value: u64, nr_exchanged: u64) -> Self {
        Self {
            in_gmfns: vec![value],
            out_extent_start: target.offset((8 * nr_exchanged).wrapping_neg()),
            nr_exchanged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_slot_offsets_by_nr_exchanged() {
        let args = ExchangeArgs {
            in_gmfns: vec![1, 2],
            out_extent_start: VirtAddr::new(0x1000),
            nr_exchanged: 3,
        };
        assert_eq!(args.out_slot(0), VirtAddr::new(0x1000 + 24));
        assert_eq!(args.out_slot(1), VirtAddr::new(0x1000 + 32));
    }

    #[test]
    fn write_what_where_encoding_lands_on_target() {
        let target = VirtAddr::new(0xffff_8300_0000_0e00);
        let args = ExchangeArgs::write_what_where(target, 0xdead_beef, 7);
        assert_eq!(args.out_slot(0), target);
        assert_eq!(args.in_gmfns, vec![0xdead_beef]);
    }
}
