//! Security benchmarking on top of intrusion injection.
//!
//! The paper's conclusion sets the goal: "we expect to apply it in
//! assessing the security attributes of hypervisors and establish a
//! **security benchmark** for virtualized infrastructures". This module
//! turns a [`CampaignReport`] into exactly that: a per-version score
//! derived from how each system *handles* injected erroneous states,
//! with per-security-attribute breakdowns.
//!
//! Scoring model (documented, deliberately simple):
//!
//! * every injection cell contributes 1 point of weight;
//! * a **handled** state scores 1.0 (the system processed the intrusion
//!   effect), a **violated** state scores 0.0, a state that could not be
//!   injected is excluded (nothing was assessed);
//! * violations are attributed to security attributes (availability for
//!   crashes/hangs, integrity+confidentiality for privilege escalation
//!   and memory exposure) so the report can say *which* attribute a
//!   version is weak on.

use crate::campaign::CampaignReport;
use crate::monitor::SecurityViolation;
use crate::report::TextTable;
use crate::scenario::Mode;
use hvsim::XenVersion;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The classic security attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SecurityAttribute {
    /// Confidentiality: unauthorized information disclosure.
    Confidentiality,
    /// Integrity: unauthorized state modification.
    Integrity,
    /// Availability: loss of service.
    Availability,
}

impl SecurityAttribute {
    /// All attributes.
    pub const ALL: [SecurityAttribute; 3] = [
        SecurityAttribute::Confidentiality,
        SecurityAttribute::Integrity,
        SecurityAttribute::Availability,
    ];

    /// Attributes a violation impacts.
    pub fn of_violation(v: &SecurityViolation) -> &'static [SecurityAttribute] {
        match v {
            SecurityViolation::HypervisorCrash { .. } => &[SecurityAttribute::Availability],
            SecurityViolation::PrivilegeEscalationAllDomains { .. } => &[
                SecurityAttribute::Confidentiality,
                SecurityAttribute::Integrity,
            ],
            SecurityViolation::RemoteRootShell { .. } => &[
                SecurityAttribute::Confidentiality,
                SecurityAttribute::Integrity,
            ],
            SecurityViolation::GuestWritablePageTable { .. } => &[
                SecurityAttribute::Confidentiality,
                SecurityAttribute::Integrity,
            ],
            SecurityViolation::CrossDomainAccess { .. } => &[
                SecurityAttribute::Confidentiality,
                SecurityAttribute::Integrity,
            ],
            SecurityViolation::IntegrityLoss { .. } => &[SecurityAttribute::Integrity],
            SecurityViolation::UncontrolledInterrupts { .. } => {
                &[SecurityAttribute::Availability]
            }
            SecurityViolation::AvailabilityLoss { .. } => &[SecurityAttribute::Availability],
            // The enum is non_exhaustive; default future variants to
            // integrity until they are classified.
            #[allow(unreachable_patterns)]
            _ => &[SecurityAttribute::Integrity],
        }
    }
}

impl fmt::Display for SecurityAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SecurityAttribute::Confidentiality => "confidentiality",
            SecurityAttribute::Integrity => "integrity",
            SecurityAttribute::Availability => "availability",
        })
    }
}

/// One version's benchmark result.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VersionScore {
    /// Injection cells where the state landed (the assessed set).
    pub assessed: usize,
    /// States the version handled.
    pub handled: usize,
    /// States that became violations.
    pub violated: usize,
    /// Violation counts per security attribute.
    pub attribute_hits: BTreeMap<SecurityAttribute, usize>,
}

impl VersionScore {
    /// The handling ratio in `[0, 1]`; `None` when nothing was assessed.
    pub fn score(&self) -> Option<f64> {
        if self.assessed == 0 {
            None
        } else {
            Some(self.handled as f64 / self.assessed as f64)
        }
    }
}

/// The benchmark over a campaign report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SecurityBenchmark {
    scores: BTreeMap<XenVersion, VersionScore>,
}

impl SecurityBenchmark {
    /// Scores every version present in the report's injection cells.
    pub fn from_report(report: &CampaignReport) -> Self {
        let mut scores: BTreeMap<XenVersion, VersionScore> = BTreeMap::new();
        for cell in report.cells() {
            if cell.mode != Mode::Injection || !cell.erroneous_state {
                continue;
            }
            let entry = scores.entry(cell.version).or_default();
            entry.assessed += 1;
            if cell.violations.is_empty() {
                entry.handled += 1;
            } else {
                entry.violated += 1;
                for v in &cell.violations {
                    for &attr in SecurityAttribute::of_violation(v) {
                        *entry.attribute_hits.entry(attr).or_default() += 1;
                    }
                }
            }
        }
        Self { scores }
    }

    /// One version's score.
    pub fn version(&self, version: XenVersion) -> Option<&VersionScore> {
        self.scores.get(&version)
    }

    /// Versions ranked best (highest handling ratio) first.
    pub fn ranking(&self) -> Vec<(XenVersion, f64)> {
        let mut ranked: Vec<(XenVersion, f64)> = self
            .scores
            .iter()
            .filter_map(|(&v, s)| s.score().map(|sc| (v, sc)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked
    }

    /// Renders the benchmark table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "Version",
            "assessed",
            "handled",
            "violated",
            "score",
            "conf hits",
            "integ hits",
            "avail hits",
        ])
        .title("security benchmark: erroneous-state handling per version");
        for (&version, s) in &self.scores {
            let hit = |a| s.attribute_hits.get(&a).copied().unwrap_or(0).to_string();
            table.row([
                format!("Xen {version}"),
                s.assessed.to_string(),
                s.handled.to_string(),
                s.violated.to_string(),
                s.score().map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
                hit(SecurityAttribute::Confidentiality),
                hit(SecurityAttribute::Integrity),
                hit(SecurityAttribute::Availability),
            ]);
        }
        table.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CellResult;
    use crate::scenario::Mode;

    fn cell(version: XenVersion, state: bool, violations: Vec<SecurityViolation>) -> CellResult {
        let handled = state && violations.is_empty();
        CellResult {
            use_case: "t".into(),
            abusive_functionality: "f".into(),
            version,
            mode: Mode::Injection,
            erroneous_state: state,
            violations,
            handled,
            notes: vec![],
            error: None,
            outcome: crate::error::CellOutcome::Completed,
            attempts: 1,
            wall_time_us: 0,
            hypercalls: 0,
            phase_us: crate::campaign::PhaseTimings::default(),
            snapshot: hvsim::SnapshotStats::default(),
            tlb: hvsim::TlbStats::default(),
            flight: Vec::new(),
        }
    }

    fn report(cells: Vec<CellResult>) -> CampaignReport {
        // Round-trip through JSON to construct the report without a
        // public constructor.
        let json = serde_json::to_string(&cells).unwrap();
        serde_json::from_str::<Vec<CellResult>>(&json)
            .map(CampaignReport::from_cells)
            .unwrap()
    }

    #[test]
    fn scores_and_ranking() {
        let r = report(vec![
            cell(XenVersion::V4_6, true, vec![SecurityViolation::HypervisorCrash { message: "x".into() }]),
            cell(XenVersion::V4_6, true, vec![SecurityViolation::PrivilegeEscalationAllDomains { path: "p".into() }]),
            cell(XenVersion::V4_13, true, vec![]),
            cell(XenVersion::V4_13, true, vec![SecurityViolation::HypervisorCrash { message: "x".into() }]),
        ]);
        let b = SecurityBenchmark::from_report(&r);
        assert_eq!(b.version(XenVersion::V4_6).unwrap().score(), Some(0.0));
        assert_eq!(b.version(XenVersion::V4_13).unwrap().score(), Some(0.5));
        let ranking = b.ranking();
        assert_eq!(ranking[0].0, XenVersion::V4_13);
        // Attribute attribution.
        let s46 = b.version(XenVersion::V4_6).unwrap();
        assert_eq!(s46.attribute_hits[&SecurityAttribute::Availability], 1);
        assert_eq!(s46.attribute_hits[&SecurityAttribute::Integrity], 1);
        assert_eq!(s46.attribute_hits[&SecurityAttribute::Confidentiality], 1);
    }

    #[test]
    fn uninjected_cells_are_excluded() {
        let r = report(vec![cell(XenVersion::V4_8, false, vec![])]);
        let b = SecurityBenchmark::from_report(&r);
        assert!(b.version(XenVersion::V4_8).is_none());
        assert!(b.ranking().is_empty());
    }

    #[test]
    fn render_contains_scores() {
        let r = report(vec![cell(XenVersion::V4_13, true, vec![])]);
        let b = SecurityBenchmark::from_report(&r);
        let t = b.render();
        assert!(t.contains("Xen 4.13"));
        assert!(t.contains("1.00"));
    }

    #[test]
    fn attribute_display() {
        assert_eq!(SecurityAttribute::Availability.to_string(), "availability");
    }
}
