//! Randomized injection inputs within an intrusion model's constraints.
//!
//! "One possibility is to randomize inputs to an injector, creating an
//! approach that resembles fuzzing testing but in another level of
//! interaction, in a post-attack phase." (§IV-C). A [`RandomizedCampaign`]
//! samples erroneous states from a [`TargetRegion`] (the IM's target
//! component made concrete), injects each into a fresh world, exercises
//! the system, and classifies the outcome.

use crate::erroneous_state::ErroneousStateSpec;
use crate::injector::{ArbitraryAccessInjector, Injector};
use crate::monitor::Monitor;
use crate::report::TextTable;
use guestos::World;
use hvsim::IDT_ENTRIES;
use hvsim_mem::{DomainId, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where randomized injections land — the concrete footprint of an
/// intrusion model's target component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetRegion {
    /// The IDT gates of one CPU (interrupt-handling component).
    IdtGates {
        /// The CPU whose IDT is sampled.
        cpu: usize,
    },
    /// The shared hypervisor L3 page (memory-management component).
    SharedL3,
    /// The attacker domain's own page-table frames.
    DomainPageTables,
    /// The attacker domain's data frames (application-level corruption).
    DomainFrames,
}

impl TargetRegion {
    /// Samples one erroneous-state specification from this region.
    pub fn sample(self, world: &World, attacker: DomainId, rng: &mut StdRng) -> ErroneousStateSpec {
        let value: u64 = rng.gen();
        match self {
            TargetRegion::IdtGates { cpu } => {
                let vector = rng.gen_range(0..IDT_ENTRIES as u16) as u8;
                ErroneousStateSpec::OverwriteIdtGate { cpu, vector, value }
            }
            TargetRegion::SharedL3 => {
                let index = rng.gen_range(0..512usize);
                ErroneousStateSpec::LinkPmdIntoSharedL3 { index, entry: value }
            }
            TargetRegion::DomainPageTables => {
                let cr3 = world
                    .hv()
                    .domain(attacker)
                    .ok()
                    .and_then(|d| d.cr3())
                    .unwrap_or(hvsim_mem::Mfn::new(0));
                let offset = rng.gen_range(0..512usize) * 8;
                ErroneousStateSpec::WriteFrame {
                    mfn: cr3,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
            TargetRegion::DomainFrames => {
                let frames: Vec<_> = world
                    .hv()
                    .domain(attacker)
                    .map(|d| d.p2m_iter().map(|(_, m)| m).collect())
                    .unwrap_or_default();
                let mfn = frames[rng.gen_range(0..frames.len())];
                let offset = rng.gen_range(0..4096 - 8);
                ErroneousStateSpec::WriteFrame {
                    mfn,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
        }
    }

    /// Region label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            TargetRegion::IdtGates { .. } => "IDT gates",
            TargetRegion::SharedL3 => "shared hypervisor L3",
            TargetRegion::DomainPageTables => "domain page tables",
            TargetRegion::DomainFrames => "domain data frames",
        }
    }
}

/// Classification of one randomized trial.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedOutcome {
    /// What was injected (label + evidence).
    pub spec: String,
    /// Whether the injector verified the state.
    pub injected: bool,
    /// Whether the hypervisor crashed during activation.
    pub crashed: bool,
    /// Number of security violations observed.
    pub violations: usize,
}

/// Aggregated trial counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedSummary {
    /// Trials run.
    pub total: usize,
    /// States successfully injected and verified.
    pub injected: usize,
    /// Trials ending in a hypervisor crash.
    pub crashes: usize,
    /// Trials with at least one non-crash violation.
    pub violated: usize,
    /// States injected but fully handled.
    pub handled: usize,
}

impl fmt::Display for RandomizedSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(["total", "injected", "crashes", "violated", "handled"]);
        t.row([
            self.total.to_string(),
            self.injected.to_string(),
            self.crashes.to_string(),
            self.violated.to_string(),
            self.handled.to_string(),
        ]);
        write!(f, "{t}")
    }
}

/// A randomized injection campaign over one target region.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedCampaign {
    /// The sampled region.
    pub region: TargetRegion,
    /// Number of trials.
    pub trials: usize,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
}

impl RandomizedCampaign {
    /// A campaign of `trials` reproducible trials.
    pub fn new(region: TargetRegion, trials: usize, seed: u64) -> Self {
        Self {
            region,
            trials,
            seed,
        }
    }

    /// Runs the campaign: each trial gets a fresh world from `factory`,
    /// one sampled injection, an activation shake, and a monitoring
    /// pass.
    pub fn run(
        &self,
        factory: impl Fn() -> (World, DomainId),
    ) -> (RandomizedSummary, Vec<RandomizedOutcome>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut outcomes = Vec::with_capacity(self.trials);
        let mut summary = RandomizedSummary {
            total: self.trials,
            ..Default::default()
        };
        for _ in 0..self.trials {
            let (mut world, attacker) = factory();
            let spec = self.region.sample(&world, attacker, &mut rng);
            let injected = ArbitraryAccessInjector
                .inject(&mut world, attacker, &spec)
                .is_ok();
            if injected {
                summary.injected += 1;
            }
            shake(&mut world, attacker);
            let crashed = world.hv().is_crashed();
            let observation = Monitor::standard().observe(&world);
            let non_crash_violations = observation
                .violations
                .iter()
                .filter(|v| !matches!(v, crate::monitor::SecurityViolation::HypervisorCrash { .. }))
                .count();
            if crashed {
                summary.crashes += 1;
            } else if non_crash_violations > 0 {
                summary.violated += 1;
            } else if injected {
                summary.handled += 1;
            }
            outcomes.push(RandomizedOutcome {
                spec: format!("{} ({})", spec.label(), self.region.label()),
                injected,
                crashed,
                violations: observation.violations.len(),
            });
        }
        (summary, outcomes)
    }
}

/// Post-injection activation: exercise the system so latent erroneous
/// states can propagate — ordinary guest memory activity, a page fault
/// (exercising the IDT), and a vDSO tick.
fn shake(world: &mut World, attacker: DomainId) {
    let probe = world
        .kernel(attacker)
        .map(|k| k.va_of_pfn(hvsim_mem::Pfn::new(8)))
        .unwrap_or(VirtAddr::new(0x6000_0000_8000));
    let mut buf = [0u8; 8];
    let _ = world.hv_mut().guest_read_va(attacker, probe, &mut buf);
    let _ = world.hv_mut().guest_write_va(attacker, probe, &buf);
    // A deliberate fault to exercise exception delivery.
    let _ = world
        .hv_mut()
        .guest_read_va(attacker, VirtAddr::new(0x7f00_dead_0000), &mut buf);
    let _ = world.tick_vdso();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::standard_world;
    use hvsim::XenVersion;

    fn factory(version: XenVersion) -> impl Fn() -> (World, DomainId) {
        move || {
            let w = standard_world(version, true);
            let attacker = w.domain_by_name("guest03").unwrap();
            (w, attacker)
        }
    }

    #[test]
    fn idt_campaign_finds_crashes() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 12, 7);
        let (summary, outcomes) = campaign.run(factory(XenVersion::V4_8));
        assert_eq!(summary.total, 12);
        assert_eq!(outcomes.len(), 12);
        assert!(summary.injected > 0);
        // Randomly corrupting IDT gates crashes the box whenever the #PF
        // gate (or an exercised vector) is hit; with 12 trials over 256
        // vectors at least the bookkeeping must be consistent.
        assert_eq!(
            summary.crashes + summary.violated + summary.handled
                + (summary.total - summary.injected)
                - outcomes.iter().filter(|o| !o.injected && (o.crashed || o.violations > 0)).count(),
            summary.total
        );
    }

    #[test]
    fn campaign_is_reproducible() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainFrames, 6, 42);
        let (s1, o1) = campaign.run(factory(XenVersion::V4_13));
        let (s2, o2) = campaign.run(factory(XenVersion::V4_13));
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn page_table_region_injections_verify() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainPageTables, 4, 3);
        let (summary, _) = campaign.run(factory(XenVersion::V4_8));
        assert_eq!(summary.injected, 4, "physical PT writes always land");
    }

    #[test]
    fn summary_display_is_a_table() {
        let s = RandomizedSummary {
            total: 10,
            injected: 9,
            crashes: 2,
            violated: 1,
            handled: 6,
        };
        let rendered = s.to_string();
        assert!(rendered.contains("crashes"));
        assert!(rendered.contains("10"));
    }
}
