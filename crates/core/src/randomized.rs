//! Randomized injection inputs within an intrusion model's constraints.
//!
//! "One possibility is to randomize inputs to an injector, creating an
//! approach that resembles fuzzing testing but in another level of
//! interaction, in a post-attack phase." (§IV-C). A [`RandomizedCampaign`]
//! samples erroneous states from a [`TargetRegion`] (the IM's target
//! component made concrete), injects each into a fresh world, exercises
//! the system, and classifies the outcome.

use crate::campaign::{default_jobs, lock_recover};
use crate::erroneous_state::ErroneousStateSpec;
use crate::stream::BoundedQueue;
use crate::error::{panic_payload, CampaignError};
use crate::injector::{ArbitraryAccessInjector, Injector};
use crate::monitor::Monitor;
use crate::report::TextTable;
use guestos::{BootError, World};
use hvsim::IDT_ENTRIES;
use hvsim_mem::{DomainId, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Where randomized injections land — the concrete footprint of an
/// intrusion model's target component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetRegion {
    /// The IDT gates of one CPU (interrupt-handling component).
    IdtGates {
        /// The CPU whose IDT is sampled.
        cpu: usize,
    },
    /// The shared hypervisor L3 page (memory-management component).
    SharedL3,
    /// The attacker domain's own page-table frames.
    DomainPageTables,
    /// The attacker domain's data frames (application-level corruption).
    DomainFrames,
}

impl TargetRegion {
    /// Samples one erroneous-state specification from this region.
    pub fn sample(self, world: &World, attacker: DomainId, rng: &mut StdRng) -> ErroneousStateSpec {
        let value: u64 = rng.gen();
        match self {
            TargetRegion::IdtGates { cpu } => {
                let vector = rng.gen_range(0..IDT_ENTRIES as u16) as u8;
                ErroneousStateSpec::OverwriteIdtGate { cpu, vector, value }
            }
            TargetRegion::SharedL3 => {
                let index = rng.gen_range(0..512usize);
                ErroneousStateSpec::LinkPmdIntoSharedL3 { index, entry: value }
            }
            TargetRegion::DomainPageTables => {
                let cr3 = world
                    .hv()
                    .domain(attacker)
                    .ok()
                    .and_then(|d| d.cr3())
                    .unwrap_or(hvsim_mem::Mfn::new(0));
                let offset = rng.gen_range(0..512usize) * 8;
                ErroneousStateSpec::WriteFrame {
                    mfn: cr3,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
            TargetRegion::DomainFrames => {
                let frames: Vec<_> = world
                    .hv()
                    .domain(attacker)
                    .map(|d| d.p2m_iter().map(|(_, m)| m).collect())
                    .unwrap_or_default();
                // A domain with an empty P2M degrades to frame 0 (the
                // injector will then report the failure) instead of
                // panicking the trial.
                let mfn = frames
                    .get(rng.gen_range(0..frames.len().max(1)))
                    .copied()
                    .unwrap_or(hvsim_mem::Mfn::new(0));
                let offset = rng.gen_range(0..4096 - 8);
                ErroneousStateSpec::WriteFrame {
                    mfn,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
        }
    }

    /// Region label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            TargetRegion::IdtGates { .. } => "IDT gates",
            TargetRegion::SharedL3 => "shared hypervisor L3",
            TargetRegion::DomainPageTables => "domain page tables",
            TargetRegion::DomainFrames => "domain data frames",
        }
    }
}

/// Classification of one randomized trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomizedOutcome {
    /// What was injected (label + evidence).
    pub spec: String,
    /// Whether the injector verified the state.
    pub injected: bool,
    /// Whether the hypervisor crashed during activation.
    pub crashed: bool,
    /// Number of security violations observed.
    pub violations: usize,
    /// Wall-clock time for this trial (world clone + injection +
    /// activation + monitoring), in microseconds.
    pub wall_time_us: u64,
    /// Hypercalls executed during this trial (deterministic for a given
    /// seed).
    pub hypercalls: u64,
    /// Set when the harness degraded on this trial (the trial body kept
    /// panicking past the retry budget); the other fields then carry no
    /// assessment data.
    pub error: Option<CampaignError>,
}

/// Equality ignores `wall_time_us`: timing is the only
/// non-deterministic field, and reproducibility checks compare
/// outcomes across runs and worker counts.
impl PartialEq for RandomizedOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.injected == other.injected
            && self.crashed == other.crashed
            && self.violations == other.violations
            && self.hypercalls == other.hypercalls
            && self.error == other.error
    }
}

impl Eq for RandomizedOutcome {}

/// Aggregated trial counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedSummary {
    /// Trials run.
    pub total: usize,
    /// States successfully injected and verified.
    pub injected: usize,
    /// Trials ending in a hypervisor crash.
    pub crashes: usize,
    /// Trials with at least one non-crash violation.
    pub violated: usize,
    /// States injected but fully handled.
    pub handled: usize,
    /// Trials on which the harness degraded (contained panics past the
    /// retry budget). Hypervisor crashes are assessment data, never
    /// degradation.
    pub degraded: usize,
}

impl RandomizedSummary {
    /// Sums two summaries. Every field is a count of per-trial
    /// indicators, so merging per-worker (or per-shard) summaries is
    /// exact, associative, and commutative.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            total: self.total + other.total,
            injected: self.injected + other.injected,
            crashes: self.crashes + other.crashes,
            violated: self.violated + other.violated,
            handled: self.handled + other.handled,
            degraded: self.degraded + other.degraded,
        }
    }
}

impl fmt::Display for RandomizedSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new([
            "total", "injected", "crashes", "violated", "handled", "degraded",
        ]);
        t.row([
            self.total.to_string(),
            self.injected.to_string(),
            self.crashes.to_string(),
            self.violated.to_string(),
            self.handled.to_string(),
            self.degraded.to_string(),
        ]);
        write!(f, "{t}")
    }
}

/// A randomized injection campaign over one target region.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedCampaign {
    /// The sampled region.
    pub region: TargetRegion,
    /// Number of trials.
    pub trials: usize,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    jobs: Option<usize>,
    retries: u32,
}

impl RandomizedCampaign {
    /// A campaign of `trials` reproducible trials, run on one worker per
    /// hardware thread with no retries.
    pub fn new(region: TargetRegion, trials: usize, seed: u64) -> Self {
        Self {
            region,
            trials,
            seed,
            jobs: None,
            retries: 0,
        }
    }

    /// Sets the worker count used by [`RandomizedCampaign::run`]. `0` or
    /// unset means one worker per hardware thread.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Allows up to `retries` extra attempts per trial (after a
    /// contained panic) and per base-world boot (after a transient
    /// failure). Retried trial attempt `a` reseeds deterministically as
    /// `seed ^ t ^ (a << 32)`, so retried campaigns stay reproducible.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Runs the campaign with the configured worker count.
    ///
    /// The factory is called once; every trial starts from a clone of
    /// that base world (booting is deterministic, so a clone is
    /// indistinguishable from a fresh boot). Trial `t` draws from its
    /// own generator seeded `seed ^ t` (attempt `a` of a retried trial
    /// reseeds as `seed ^ t ^ (a << 32)`), so the sampled inputs — and
    /// therefore the outcomes and summary — are identical for every
    /// worker count and every scheduling order.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Boot`] / [`CampaignError::HarnessCrash`] when no
    /// base world could be produced at all (transient boot failures are
    /// retried up to the retry budget). Per-trial failures are contained
    /// and reported in the outcomes/summary instead.
    pub fn run(
        &self,
        factory: impl Fn() -> Result<(World, DomainId), BootError> + Send + Sync,
    ) -> Result<(RandomizedSummary, Vec<RandomizedOutcome>), CampaignError> {
        self.run_with_jobs(factory, self.jobs.unwrap_or_else(default_jobs))
    }

    /// Runs the campaign on exactly `jobs` worker threads.
    ///
    /// # Errors
    ///
    /// See [`RandomizedCampaign::run`].
    pub fn run_with_jobs(
        &self,
        factory: impl Fn() -> Result<(World, DomainId), BootError> + Send + Sync,
        jobs: usize,
    ) -> Result<(RandomizedSummary, Vec<RandomizedOutcome>), CampaignError> {
        if self.trials == 0 {
            return Ok((RandomizedSummary::default(), Vec::new()));
        }
        let (base_world, attacker) = self.boot_base(&factory)?;

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<TrialResult>>> =
            (0..self.trials).map(|_| Mutex::new(None)).collect();
        let workers = jobs.max(1).min(self.trials);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= self.trials {
                        break;
                    }
                    let trial = self.run_trial_contained(&base_world, attacker, t as u64);
                    *lock_recover(&slots[t]) = Some(trial);
                });
            }
        });

        // Fold the summary serially over the slot-ordered results, so
        // counting never depends on completion order.
        let mut summary = RandomizedSummary {
            total: self.trials,
            ..Default::default()
        };
        let mut outcomes = Vec::with_capacity(self.trials);
        for slot in slots {
            let trial = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| TrialResult {
                    // Unreachable — trial bodies are contained — but a
                    // lost slot degrades one trial, never the campaign.
                    outcome: degraded_outcome(
                        self.region,
                        CampaignError::HarnessCrash {
                            payload: "worker abandoned the trial".to_owned(),
                        },
                    ),
                    non_crash_violations: 0,
                });
            fold_trial(&mut summary, &trial);
            outcomes.push(trial.outcome);
        }
        Ok((summary, outcomes))
    }

    /// Streams the trial indices through a bounded queue on exactly
    /// `jobs` workers, folding each classified trial into a per-worker
    /// summary that is dropped into the merge at the end — O(workers)
    /// resident memory, no retained outcomes. Each trial's
    /// classification depends only on its deterministic seed, and every
    /// summary field is a sum, so the merged summary is identical to
    /// [`RandomizedCampaign::run_with_jobs`]'s for every worker count.
    ///
    /// # Errors
    ///
    /// See [`RandomizedCampaign::run`].
    pub fn run_streaming_summary(
        &self,
        factory: impl Fn() -> Result<(World, DomainId), BootError> + Send + Sync,
        jobs: usize,
    ) -> Result<RandomizedSummary, CampaignError> {
        if self.trials == 0 {
            return Ok(RandomizedSummary::default());
        }
        let (base_world, attacker) = self.boot_base(&factory)?;
        let workers = jobs.max(1).min(self.trials);
        let queue: BoundedQueue<u64> = BoundedQueue::new((workers * 2).max(8));
        let partials: Mutex<Vec<RandomizedSummary>> = Mutex::new(Vec::with_capacity(workers));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for t in 0..self.trials as u64 {
                    queue.push(t);
                }
                queue.close();
            });
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut summary = RandomizedSummary::default();
                    while let Some(t) = queue.pop() {
                        let trial = self.run_trial_contained(&base_world, attacker, t);
                        summary.total += 1;
                        fold_trial(&mut summary, &trial);
                    }
                    lock_recover(&partials).push(summary);
                });
            }
        });
        let mut merged = RandomizedSummary::default();
        for summary in partials.into_inner().unwrap_or_else(PoisonError::into_inner) {
            merged = merged.merge(&summary);
        }
        Ok(merged)
    }

    /// Boots the shared base world with panic containment and the
    /// transient-failure retry budget, sleeping the same deterministic
    /// exponential backoff the grid campaign uses between attempts
    /// (jitter keyed on the campaign seed).
    fn boot_base(
        &self,
        factory: &(impl Fn() -> Result<(World, DomainId), BootError> + Send + Sync),
    ) -> Result<(World, DomainId), CampaignError> {
        let mut attempts = 0u32;
        let mut backoff_us = 0u64;
        loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(factory)) {
                Ok(Ok(base)) => return Ok(base),
                Ok(Err(boot)) if boot.is_transient() && attempts <= self.retries => {
                    let sleep =
                        crate::campaign::retry_backoff_us(&format!("randomized/{}", self.seed), attempts)
                            .min(20_000u64.saturating_sub(backoff_us));
                    if sleep > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(sleep));
                        backoff_us += sleep;
                    }
                }
                Ok(Err(boot)) => {
                    return Err(CampaignError::Boot { message: boot.to_string(), attempts })
                }
                Err(p) => {
                    return Err(CampaignError::HarnessCrash {
                        payload: panic_payload(p.as_ref()),
                    })
                }
            }
        }
    }

    /// Runs trial `t` under a panic boundary, retrying contained panics
    /// with a deterministic reseed up to the retry budget; a trial that
    /// keeps panicking becomes a degraded outcome instead of taking the
    /// worker down. `AssertUnwindSafe` is sound: each attempt works on
    /// its own clone of the base world, dropped inside the boundary.
    fn run_trial_contained(&self, base_world: &World, attacker: DomainId, t: u64) -> TrialResult {
        let mut attempt = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| {
                self.run_trial(base_world, attacker, t, attempt)
            })) {
                Ok(trial) => return trial,
                Err(_) if attempt < self.retries => attempt += 1,
                Err(p) => {
                    return TrialResult {
                        outcome: degraded_outcome(
                            self.region,
                            CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) },
                        ),
                        non_crash_violations: 0,
                    }
                }
            }
        }
    }

    /// Runs attempt `attempt` of trial `t`: clone the base world, sample
    /// from the attempt's own generator, inject, shake, monitor.
    fn run_trial(
        &self,
        base_world: &World,
        attacker: DomainId,
        t: u64,
        attempt: u32,
    ) -> TrialResult {
        let start = Instant::now();
        // Attempt 0 reproduces the historical `seed ^ t` stream exactly;
        // retries draw fresh-but-deterministic inputs.
        let mut rng = StdRng::seed_from_u64(self.seed ^ t ^ (u64::from(attempt) << 32));
        let mut world = base_world.clone();
        let base_hypercalls = world.hv().hypercall_count();
        let spec = self.region.sample(&world, attacker, &mut rng);
        let injected = ArbitraryAccessInjector
            .inject(&mut world, attacker, &spec)
            .is_ok();
        shake(&mut world, attacker);
        let crashed = world.hv().is_crashed();
        let observation = Monitor::standard().observe(&world);
        let non_crash_violations = observation
            .violations
            .iter()
            .filter(|v| !matches!(v, crate::monitor::SecurityViolation::HypervisorCrash { .. }))
            .count();
        TrialResult {
            outcome: RandomizedOutcome {
                spec: format!("{} ({})", spec.label(), self.region.label()),
                injected,
                crashed,
                violations: observation.violations.len(),
                wall_time_us: start.elapsed().as_micros() as u64,
                hypercalls: world.hv().hypercall_count().saturating_sub(base_hypercalls),
                error: None,
            },
            non_crash_violations,
        }
    }
}

/// One trial's outcome plus the non-crash violation count the summary
/// fold needs.
struct TrialResult {
    outcome: RandomizedOutcome,
    non_crash_violations: usize,
}

/// Classifies one trial into the summary counts (everything except
/// `total`, which the callers own). Shared by the slot-ordered classic
/// fold and the per-worker streaming fold — one definition of
/// degraded/crashed/violated/handled for both paths.
fn fold_trial(summary: &mut RandomizedSummary, trial: &TrialResult) {
    if trial.outcome.error.is_some() {
        summary.degraded += 1;
        return;
    }
    if trial.outcome.injected {
        summary.injected += 1;
    }
    if trial.outcome.crashed {
        summary.crashes += 1;
    } else if trial.non_crash_violations > 0 {
        summary.violated += 1;
    } else if trial.outcome.injected {
        summary.handled += 1;
    }
}

/// A placeholder outcome for a trial the harness could not complete.
fn degraded_outcome(region: TargetRegion, error: CampaignError) -> RandomizedOutcome {
    RandomizedOutcome {
        spec: format!("(degraded) ({})", region.label()),
        injected: false,
        crashed: false,
        violations: 0,
        wall_time_us: 0,
        hypercalls: 0,
        error: Some(error),
    }
}

/// Post-injection activation: exercise the system so latent erroneous
/// states can propagate — ordinary guest memory activity, a page fault
/// (exercising the IDT), and a vDSO tick.
fn shake(world: &mut World, attacker: DomainId) {
    let probe = world
        .kernel(attacker)
        .map(|k| k.va_of_pfn(hvsim_mem::Pfn::new(8)))
        .unwrap_or(VirtAddr::new(0x6000_0000_8000));
    let mut buf = [0u8; 8];
    let _ = world.hv_mut().guest_read_va(attacker, probe, &mut buf);
    let _ = world.hv_mut().guest_write_va(attacker, probe, &buf);
    // A deliberate fault to exercise exception delivery.
    let _ = world
        .hv_mut()
        .guest_read_va(attacker, VirtAddr::new(0x7f00_dead_0000), &mut buf);
    let _ = world.tick_vdso();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::standard_world;
    use hvsim::XenVersion;

    fn factory(version: XenVersion) -> impl Fn() -> Result<(World, DomainId), BootError> {
        move || {
            let w = standard_world(version, true)?;
            let attacker = w.domain_by_name("guest03").unwrap();
            Ok((w, attacker))
        }
    }

    #[test]
    fn idt_campaign_finds_crashes() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 12, 7);
        let (summary, outcomes) = campaign.run(factory(XenVersion::V4_8)).unwrap();
        assert_eq!(summary.total, 12);
        assert_eq!(outcomes.len(), 12);
        assert!(summary.injected > 0);
        // Randomly corrupting IDT gates crashes the box whenever the #PF
        // gate (or an exercised vector) is hit; with 12 trials over 256
        // vectors at least the bookkeeping must be consistent.
        assert_eq!(
            summary.crashes + summary.violated + summary.handled
                + (summary.total - summary.injected)
                - outcomes.iter().filter(|o| !o.injected && (o.crashed || o.violations > 0)).count(),
            summary.total
        );
    }

    #[test]
    fn campaign_is_reproducible() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainFrames, 6, 42);
        let (s1, o1) = campaign.run(factory(XenVersion::V4_13)).unwrap();
        let (s2, o2) = campaign.run(factory(XenVersion::V4_13)).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn worker_count_does_not_change_summary_or_outcomes() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 10, 99);
        let (s1, o1) = campaign.run_with_jobs(factory(XenVersion::V4_8), 1).unwrap();
        let (s4, o4) = campaign.run_with_jobs(factory(XenVersion::V4_8), 4).unwrap();
        assert_eq!(s1, s4, "jobs=1 and jobs=4 summaries must match");
        assert_eq!(o1, o4, "jobs=1 and jobs=4 outcomes must match, in order");
        let (s, o) = campaign.with_jobs(4).run(factory(XenVersion::V4_8)).unwrap();
        assert_eq!(s, s1);
        assert_eq!(o, o1);
    }

    #[test]
    fn streaming_summary_matches_classic_at_any_worker_count() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 10, 99);
        let (classic, _) = campaign.run_with_jobs(factory(XenVersion::V4_8), 2).unwrap();
        for jobs in [1, 4] {
            let streamed =
                campaign.run_streaming_summary(factory(XenVersion::V4_8), jobs).unwrap();
            assert_eq!(streamed, classic, "streamed summary at jobs={jobs}");
        }
    }

    #[test]
    fn page_table_region_injections_verify() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainPageTables, 4, 3);
        let (summary, _) = campaign.run(factory(XenVersion::V4_8)).unwrap();
        assert_eq!(summary.injected, 4, "physical PT writes always land");
    }

    #[test]
    fn summary_display_is_a_table() {
        let s = RandomizedSummary {
            total: 10,
            injected: 9,
            crashes: 2,
            violated: 1,
            handled: 6,
            degraded: 0,
        };
        let rendered = s.to_string();
        assert!(rendered.contains("crashes"));
        assert!(rendered.contains("degraded"));
        assert!(rendered.contains("10"));
    }

    #[test]
    fn panicking_factory_degrades_to_a_typed_error() {
        let campaign = RandomizedCampaign::new(TargetRegion::SharedL3, 3, 1);
        let err = campaign
            .run(|| -> Result<(World, DomainId), BootError> { panic!("factory exploded") })
            .unwrap_err();
        assert_eq!(err, CampaignError::HarnessCrash { payload: "factory exploded".into() });
    }

    #[test]
    fn transient_boot_failures_are_retried_then_succeed() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let failures = AtomicU32::new(2);
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 4, 5).retries(2);
        let (summary, outcomes) = campaign
            .run(|| {
                if failures.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(BootError::transient("create dom0", "no frames left"));
                }
                factory(XenVersion::V4_8)()
            })
            .unwrap();
        assert_eq!(summary.total, 4);
        assert_eq!(summary.degraded, 0);
        // The retried boot must not perturb the trial streams.
        let (clean, clean_outcomes) =
            RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 4, 5)
                .run(factory(XenVersion::V4_8))
                .unwrap();
        assert_eq!(summary, clean);
        assert_eq!(outcomes, clean_outcomes);
    }

    #[test]
    fn non_transient_boot_failure_is_not_retried() {
        let campaign = RandomizedCampaign::new(TargetRegion::SharedL3, 2, 1).retries(5);
        let err = campaign
            .run(|| -> Result<(World, DomainId), BootError> {
                Err(BootError::new("create dom0", "deterministic failure"))
            })
            .unwrap_err();
        match err {
            CampaignError::Boot { attempts, message } => {
                assert_eq!(attempts, 1, "non-transient failures fail fast");
                assert!(message.contains("deterministic failure"));
            }
            other => panic!("expected a boot error, got {other:?}"),
        }
    }
}
