//! Randomized injection inputs within an intrusion model's constraints.
//!
//! "One possibility is to randomize inputs to an injector, creating an
//! approach that resembles fuzzing testing but in another level of
//! interaction, in a post-attack phase." (§IV-C). A [`RandomizedCampaign`]
//! samples erroneous states from a [`TargetRegion`] (the IM's target
//! component made concrete), injects each into a fresh world, exercises
//! the system, and classifies the outcome.

use crate::campaign::default_jobs;
use crate::erroneous_state::ErroneousStateSpec;
use crate::injector::{ArbitraryAccessInjector, Injector};
use crate::monitor::Monitor;
use crate::report::TextTable;
use guestos::World;
use hvsim::IDT_ENTRIES;
use hvsim_mem::{DomainId, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where randomized injections land — the concrete footprint of an
/// intrusion model's target component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetRegion {
    /// The IDT gates of one CPU (interrupt-handling component).
    IdtGates {
        /// The CPU whose IDT is sampled.
        cpu: usize,
    },
    /// The shared hypervisor L3 page (memory-management component).
    SharedL3,
    /// The attacker domain's own page-table frames.
    DomainPageTables,
    /// The attacker domain's data frames (application-level corruption).
    DomainFrames,
}

impl TargetRegion {
    /// Samples one erroneous-state specification from this region.
    pub fn sample(self, world: &World, attacker: DomainId, rng: &mut StdRng) -> ErroneousStateSpec {
        let value: u64 = rng.gen();
        match self {
            TargetRegion::IdtGates { cpu } => {
                let vector = rng.gen_range(0..IDT_ENTRIES as u16) as u8;
                ErroneousStateSpec::OverwriteIdtGate { cpu, vector, value }
            }
            TargetRegion::SharedL3 => {
                let index = rng.gen_range(0..512usize);
                ErroneousStateSpec::LinkPmdIntoSharedL3 { index, entry: value }
            }
            TargetRegion::DomainPageTables => {
                let cr3 = world
                    .hv()
                    .domain(attacker)
                    .ok()
                    .and_then(|d| d.cr3())
                    .unwrap_or(hvsim_mem::Mfn::new(0));
                let offset = rng.gen_range(0..512usize) * 8;
                ErroneousStateSpec::WriteFrame {
                    mfn: cr3,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
            TargetRegion::DomainFrames => {
                let frames: Vec<_> = world
                    .hv()
                    .domain(attacker)
                    .map(|d| d.p2m_iter().map(|(_, m)| m).collect())
                    .unwrap_or_default();
                let mfn = frames[rng.gen_range(0..frames.len())];
                let offset = rng.gen_range(0..4096 - 8);
                ErroneousStateSpec::WriteFrame {
                    mfn,
                    offset,
                    bytes: value.to_le_bytes().to_vec(),
                }
            }
        }
    }

    /// Region label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            TargetRegion::IdtGates { .. } => "IDT gates",
            TargetRegion::SharedL3 => "shared hypervisor L3",
            TargetRegion::DomainPageTables => "domain page tables",
            TargetRegion::DomainFrames => "domain data frames",
        }
    }
}

/// Classification of one randomized trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomizedOutcome {
    /// What was injected (label + evidence).
    pub spec: String,
    /// Whether the injector verified the state.
    pub injected: bool,
    /// Whether the hypervisor crashed during activation.
    pub crashed: bool,
    /// Number of security violations observed.
    pub violations: usize,
    /// Wall-clock time for this trial (world clone + injection +
    /// activation + monitoring), in microseconds.
    pub wall_time_us: u64,
    /// Hypercalls executed during this trial (deterministic for a given
    /// seed).
    pub hypercalls: u64,
}

/// Equality ignores `wall_time_us`: timing is the only
/// non-deterministic field, and reproducibility checks compare
/// outcomes across runs and worker counts.
impl PartialEq for RandomizedOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.injected == other.injected
            && self.crashed == other.crashed
            && self.violations == other.violations
            && self.hypercalls == other.hypercalls
    }
}

impl Eq for RandomizedOutcome {}

/// Aggregated trial counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedSummary {
    /// Trials run.
    pub total: usize,
    /// States successfully injected and verified.
    pub injected: usize,
    /// Trials ending in a hypervisor crash.
    pub crashes: usize,
    /// Trials with at least one non-crash violation.
    pub violated: usize,
    /// States injected but fully handled.
    pub handled: usize,
}

impl fmt::Display for RandomizedSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(["total", "injected", "crashes", "violated", "handled"]);
        t.row([
            self.total.to_string(),
            self.injected.to_string(),
            self.crashes.to_string(),
            self.violated.to_string(),
            self.handled.to_string(),
        ]);
        write!(f, "{t}")
    }
}

/// A randomized injection campaign over one target region.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedCampaign {
    /// The sampled region.
    pub region: TargetRegion,
    /// Number of trials.
    pub trials: usize,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    jobs: Option<usize>,
}

impl RandomizedCampaign {
    /// A campaign of `trials` reproducible trials, run on one worker per
    /// hardware thread.
    pub fn new(region: TargetRegion, trials: usize, seed: u64) -> Self {
        Self {
            region,
            trials,
            seed,
            jobs: None,
        }
    }

    /// Sets the worker count used by [`RandomizedCampaign::run`]. `0` or
    /// unset means one worker per hardware thread.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Runs the campaign with the configured worker count.
    ///
    /// The factory is called once; every trial starts from a clone of
    /// that base world (booting is deterministic, so a clone is
    /// indistinguishable from a fresh boot). Trial `t` draws from its
    /// own generator seeded `seed ^ t`, so the sampled inputs — and
    /// therefore the outcomes and summary — are identical for every
    /// worker count and every scheduling order.
    pub fn run(
        &self,
        factory: impl Fn() -> (World, DomainId) + Send + Sync,
    ) -> (RandomizedSummary, Vec<RandomizedOutcome>) {
        self.run_with_jobs(factory, self.jobs.unwrap_or_else(default_jobs))
    }

    /// Runs the campaign on exactly `jobs` worker threads.
    pub fn run_with_jobs(
        &self,
        factory: impl Fn() -> (World, DomainId) + Send + Sync,
        jobs: usize,
    ) -> (RandomizedSummary, Vec<RandomizedOutcome>) {
        if self.trials == 0 {
            return (RandomizedSummary::default(), Vec::new());
        }
        let (base_world, attacker) = factory();

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<TrialResult>>> =
            (0..self.trials).map(|_| Mutex::new(None)).collect();
        let workers = jobs.max(1).min(self.trials);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= self.trials {
                        break;
                    }
                    let trial = self.run_trial(&base_world, attacker, t as u64);
                    *slots[t].lock().expect("trial slot poisoned") = Some(trial);
                });
            }
        });

        // Fold the summary serially over the slot-ordered results, so
        // counting never depends on completion order.
        let mut summary = RandomizedSummary {
            total: self.trials,
            ..Default::default()
        };
        let mut outcomes = Vec::with_capacity(self.trials);
        for slot in slots {
            let trial = slot
                .into_inner()
                .expect("trial slot poisoned")
                .expect("every trial produces a result");
            if trial.outcome.injected {
                summary.injected += 1;
            }
            if trial.outcome.crashed {
                summary.crashes += 1;
            } else if trial.non_crash_violations > 0 {
                summary.violated += 1;
            } else if trial.outcome.injected {
                summary.handled += 1;
            }
            outcomes.push(trial.outcome);
        }
        (summary, outcomes)
    }

    /// Runs trial `t`: clone the base world, sample from the trial's own
    /// generator, inject, shake, monitor.
    fn run_trial(&self, base_world: &World, attacker: DomainId, t: u64) -> TrialResult {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed ^ t);
        let mut world = base_world.clone();
        let base_hypercalls = world.hv().hypercall_count();
        let spec = self.region.sample(&world, attacker, &mut rng);
        let injected = ArbitraryAccessInjector
            .inject(&mut world, attacker, &spec)
            .is_ok();
        shake(&mut world, attacker);
        let crashed = world.hv().is_crashed();
        let observation = Monitor::standard().observe(&world);
        let non_crash_violations = observation
            .violations
            .iter()
            .filter(|v| !matches!(v, crate::monitor::SecurityViolation::HypervisorCrash { .. }))
            .count();
        TrialResult {
            outcome: RandomizedOutcome {
                spec: format!("{} ({})", spec.label(), self.region.label()),
                injected,
                crashed,
                violations: observation.violations.len(),
                wall_time_us: start.elapsed().as_micros() as u64,
                hypercalls: world.hv().hypercall_count().saturating_sub(base_hypercalls),
            },
            non_crash_violations,
        }
    }
}

/// One trial's outcome plus the non-crash violation count the summary
/// fold needs.
struct TrialResult {
    outcome: RandomizedOutcome,
    non_crash_violations: usize,
}

/// Post-injection activation: exercise the system so latent erroneous
/// states can propagate — ordinary guest memory activity, a page fault
/// (exercising the IDT), and a vDSO tick.
fn shake(world: &mut World, attacker: DomainId) {
    let probe = world
        .kernel(attacker)
        .map(|k| k.va_of_pfn(hvsim_mem::Pfn::new(8)))
        .unwrap_or(VirtAddr::new(0x6000_0000_8000));
    let mut buf = [0u8; 8];
    let _ = world.hv_mut().guest_read_va(attacker, probe, &mut buf);
    let _ = world.hv_mut().guest_write_va(attacker, probe, &buf);
    // A deliberate fault to exercise exception delivery.
    let _ = world
        .hv_mut()
        .guest_read_va(attacker, VirtAddr::new(0x7f00_dead_0000), &mut buf);
    let _ = world.tick_vdso();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::standard_world;
    use hvsim::XenVersion;

    fn factory(version: XenVersion) -> impl Fn() -> (World, DomainId) {
        move || {
            let w = standard_world(version, true);
            let attacker = w.domain_by_name("guest03").unwrap();
            (w, attacker)
        }
    }

    #[test]
    fn idt_campaign_finds_crashes() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 12, 7);
        let (summary, outcomes) = campaign.run(factory(XenVersion::V4_8));
        assert_eq!(summary.total, 12);
        assert_eq!(outcomes.len(), 12);
        assert!(summary.injected > 0);
        // Randomly corrupting IDT gates crashes the box whenever the #PF
        // gate (or an exercised vector) is hit; with 12 trials over 256
        // vectors at least the bookkeeping must be consistent.
        assert_eq!(
            summary.crashes + summary.violated + summary.handled
                + (summary.total - summary.injected)
                - outcomes.iter().filter(|o| !o.injected && (o.crashed || o.violations > 0)).count(),
            summary.total
        );
    }

    #[test]
    fn campaign_is_reproducible() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainFrames, 6, 42);
        let (s1, o1) = campaign.run(factory(XenVersion::V4_13));
        let (s2, o2) = campaign.run(factory(XenVersion::V4_13));
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn worker_count_does_not_change_summary_or_outcomes() {
        let campaign = RandomizedCampaign::new(TargetRegion::IdtGates { cpu: 0 }, 10, 99);
        let (s1, o1) = campaign.run_with_jobs(factory(XenVersion::V4_8), 1);
        let (s4, o4) = campaign.run_with_jobs(factory(XenVersion::V4_8), 4);
        assert_eq!(s1, s4, "jobs=1 and jobs=4 summaries must match");
        assert_eq!(o1, o4, "jobs=1 and jobs=4 outcomes must match, in order");
        let (s, o) = campaign.with_jobs(4).run(factory(XenVersion::V4_8));
        assert_eq!(s, s1);
        assert_eq!(o, o1);
    }

    #[test]
    fn page_table_region_injections_verify() {
        let campaign = RandomizedCampaign::new(TargetRegion::DomainPageTables, 4, 3);
        let (summary, _) = campaign.run(factory(XenVersion::V4_8));
        assert_eq!(summary.injected, 4, "physical PT writes always land");
    }

    #[test]
    fn summary_display_is_a_table() {
        let s = RandomizedSummary {
            total: 10,
            injected: 9,
            crashes: 2,
            violated: 1,
            handled: 6,
        };
        let rendered = s.to_string();
        assert!(rendered.contains("crashes"));
        assert!(rendered.contains("10"));
    }
}
