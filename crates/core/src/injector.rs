//! Intrusion injectors.
//!
//! "The intrusion injector is the component that injects the erroneous
//! state into the hypervisor (based on the IM), thus reproducing the
//! effects of a hypothetical intrusion. Several alternatives may exist to
//! implement such an injector." (§IV-A). The trait keeps the campaign
//! machinery independent of the mechanism; [`ArbitraryAccessInjector`]
//! is the paper's prototype — the patched-in `arbitrary_access()`
//! hypercall of §V.

use crate::erroneous_state::{ErroneousStateSpec, StateAudit};
use guestos::World;
use hvsim::HvError;
use hvsim_mem::DomainId;
use std::error::Error;
use std::fmt;

/// Why an injection failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectError {
    /// The target build has no injector hypercall compiled in.
    NotCompiledIn,
    /// The hypervisor rejected an injector operation.
    Hv(HvError),
    /// All operations succeeded but the audit could not find the state.
    Unverified(StateAudit),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NotCompiledIn => {
                f.write_str("injector hypercall not compiled into this build")
            }
            InjectError::Hv(e) => write!(f, "injector hypercall failed: {e}"),
            InjectError::Unverified(a) => {
                write!(f, "erroneous state not verified after injection: {}", a.evidence)
            }
        }
    }
}

impl Error for InjectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InjectError::Hv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HvError> for InjectError {
    fn from(e: HvError) -> Self {
        match e {
            HvError::NoSys => InjectError::NotCompiledIn,
            other => InjectError::Hv(other),
        }
    }
}

/// Evidence returned by a successful injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionEvidence {
    /// Number of injector operations performed.
    pub ops: usize,
    /// The post-injection audit of the target state.
    pub audit: StateAudit,
}

/// An intrusion injector: takes a state specification and makes it true.
pub trait Injector {
    /// Human-readable injector name for reports.
    fn name(&self) -> &'static str;

    /// Injects the erroneous state as `dom` (the triggering source), and
    /// audits it.
    ///
    /// # Errors
    ///
    /// [`InjectError`] on hypercall failure or failed verification.
    fn inject(
        &self,
        world: &mut World,
        dom: DomainId,
        spec: &ErroneousStateSpec,
    ) -> Result<InjectionEvidence, InjectError>;
}

/// The paper's prototype injector: drives the `arbitrary_access()`
/// hypercall (plus the accounting interface for keep-page-reference
/// states).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbitraryAccessInjector;

impl Injector for ArbitraryAccessInjector {
    fn name(&self) -> &'static str {
        "arbitrary_access"
    }

    fn inject(
        &self,
        world: &mut World,
        dom: DomainId,
        spec: &ErroneousStateSpec,
    ) -> Result<InjectionEvidence, InjectError> {
        let ops = spec.lower(world);
        let mut performed = 0usize;
        for (mode, addr, mut bytes) in ops {
            world
                .hv_mut()
                .hc_arbitrary_access(dom, addr, &mut bytes, mode)?;
            performed += 1;
        }
        if let ErroneousStateSpec::RetainFrameAccess { dom: target, mfn } = spec {
            world.hv_mut().inject_retain_access(*target, *mfn)?;
            performed += 1;
        }
        if let ErroneousStateSpec::ForcePause { dom: target } = spec {
            world.hv_mut().inject_pause_state(*target, true)?;
            performed += 1;
        }
        let audit = spec.audit(world);
        if audit.present {
            Ok(InjectionEvidence {
                ops: performed,
                audit,
            })
        } else {
            Err(InjectError::Unverified(audit))
        }
    }
}

/// A debugger-stub injector: applies the same erroneous-state
/// specifications through a host-side debug interface (gdbsx/JTAG style)
/// instead of a patched-in hypercall.
///
/// The paper's §IX-D names intrusiveness as a drawback of injector
/// implementations that modify the system; this injector is the
/// non-intrusive alternative: it works on **stock builds** (no
/// `arbitrary_access` hypercall compiled in), at the cost of requiring
/// host-level debug access and of not being able to exercise the
/// guest-visible hypercall path. Accounting-level states
/// (keep-page-reference, forced pause) still need the injector build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DebugStubInjector;

impl Injector for DebugStubInjector {
    fn name(&self) -> &'static str {
        "debug_stub"
    }

    fn inject(
        &self,
        world: &mut World,
        dom: DomainId,
        spec: &ErroneousStateSpec,
    ) -> Result<InjectionEvidence, InjectError> {
        let ops = spec.lower(world);
        let mut performed = 0usize;
        for (mode, addr, mut bytes) in ops {
            let phys = if mode.is_linear() {
                world
                    .hv()
                    .debug_stub_resolve(dom, hvsim_mem::VirtAddr::new(addr))
                    .ok_or(InjectError::Hv(HvError::Fault))?
            } else {
                hvsim_mem::PhysAddr::new(addr)
            };
            world
                .hv_mut()
                .debug_stub_access(phys, &mut bytes, mode.is_write())
                .map_err(InjectError::Hv)?;
            performed += 1;
        }
        // Accounting-level states still require the injector interface.
        if let ErroneousStateSpec::RetainFrameAccess { dom: target, mfn } = spec {
            world.hv_mut().inject_retain_access(*target, *mfn)?;
            performed += 1;
        }
        if let ErroneousStateSpec::ForcePause { dom: target } = spec {
            world.hv_mut().inject_pause_state(*target, true)?;
            performed += 1;
        }
        let audit = spec.audit(world);
        if audit.present {
            Ok(InjectionEvidence {
                ops: performed,
                audit,
            })
        } else {
            Err(InjectError::Unverified(audit))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::WorldBuilder;
    use hvsim::XenVersion;
    use hvsim_mem::Mfn;

    fn world(injector: bool) -> (World, DomainId) {
        let w = WorldBuilder::new(XenVersion::V4_13)
            .injector(injector)
            .guest("g", 32)
            .build()
            .unwrap();
        let dom = w.domain_by_name("g").unwrap();
        (w, dom)
    }

    #[test]
    fn injects_and_verifies_idt_corruption() {
        let (mut w, dom) = world(true);
        let spec = ErroneousStateSpec::OverwriteIdtGate {
            cpu: 0,
            vector: 14,
            value: 0x4141_4141_4141_4141,
        };
        let evidence = ArbitraryAccessInjector.inject(&mut w, dom, &spec).unwrap();
        assert_eq!(evidence.ops, 1);
        assert!(evidence.audit.present);
    }

    #[test]
    fn stock_build_reports_not_compiled_in() {
        let (mut w, dom) = world(false);
        let spec = ErroneousStateSpec::OverwriteIdtGate {
            cpu: 0,
            vector: 14,
            value: 0x41,
        };
        assert_eq!(
            ArbitraryAccessInjector.inject(&mut w, dom, &spec).unwrap_err(),
            InjectError::NotCompiledIn
        );
    }

    #[test]
    fn retain_access_goes_through_accounting_interface() {
        let (mut w, dom) = world(true);
        let victim_frame = Mfn::new(100);
        let spec = ErroneousStateSpec::RetainFrameAccess {
            dom,
            mfn: victim_frame,
        };
        let evidence = ArbitraryAccessInjector.inject(&mut w, dom, &spec).unwrap();
        assert_eq!(evidence.ops, 1);
        assert!(w.hv().domain(dom).unwrap().retains_access(victim_frame));
    }

    #[test]
    fn debug_stub_works_on_stock_builds() {
        // The non-intrusive injector needs no patched hypercall.
        let (mut w, dom) = world(false);
        assert!(!w.hv().injector_enabled());
        let spec = ErroneousStateSpec::OverwriteIdtGate {
            cpu: 0,
            vector: 14,
            value: 0x4242_4242_4242_4242,
        };
        let ev = DebugStubInjector.inject(&mut w, dom, &spec).unwrap();
        assert!(ev.audit.present);
    }

    #[test]
    fn debug_stub_and_hypercall_injector_induce_identical_states() {
        let spec = |w: &World| {
            let dom = w.domain_by_name("g").unwrap();
            let l4 = w.hv().domain(dom).unwrap().cr3().unwrap();
            ErroneousStateSpec::SetL4EntryRw { l4, index: 256 }
        };
        let (mut w1, d1) = world(true);
        let s1 = spec(&w1);
        ArbitraryAccessInjector.inject(&mut w1, d1, &s1).unwrap();
        let (mut w2, d2) = world(true);
        let s2 = spec(&w2);
        DebugStubInjector.inject(&mut w2, d2, &s2).unwrap();
        assert_eq!(s1.audit(&w1).evidence, s2.audit(&w2).evidence);
    }

    #[test]
    fn debug_stub_accounting_states_still_need_injector_build() {
        let (mut w, dom) = world(false);
        let spec = ErroneousStateSpec::RetainFrameAccess {
            dom,
            mfn: Mfn::new(50),
        };
        assert_eq!(
            DebugStubInjector.inject(&mut w, dom, &spec).unwrap_err(),
            InjectError::NotCompiledIn
        );
    }

    #[test]
    fn error_messages_are_useful() {
        assert!(InjectError::NotCompiledIn.to_string().contains("not compiled"));
        let e: InjectError = HvError::Fault.into();
        assert!(matches!(e, InjectError::Hv(HvError::Fault)));
        let e: InjectError = HvError::NoSys.into();
        assert_eq!(e, InjectError::NotCompiledIn);
    }
}
