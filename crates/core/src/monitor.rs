//! System monitoring: security-violation detectors.
//!
//! "As a security violation may happen or not, depending on the capacity
//! of the system to deal with intrusions, system monitoring is needed to
//! evaluate how the system behaves in the presence of the erroneous
//! state." (§IV-A). Each [`Detector`] checks one observable violation
//! class; a [`Monitor`] runs a set of them and merges the findings.

use guestos::{Uid, World};
use hvsim_mem::{DomainId, Mfn, VirtAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An observed security violation (a failure affecting a security
/// attribute).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SecurityViolation {
    /// The hypervisor panicked (availability).
    HypervisorCrash {
        /// The panic message.
        message: String,
    },
    /// A root-owned artifact appeared in every domain (integrity +
    /// confidentiality: arbitrary code ran as root everywhere).
    PrivilegeEscalationAllDomains {
        /// The artifact path.
        path: String,
    },
    /// A root reverse shell was established from a domain.
    RemoteRootShell {
        /// The compromised domain.
        domain: DomainId,
    },
    /// A guest holds a writable mapping of its own page tables.
    GuestWritablePageTable {
        /// The virtual address of the writable self-map.
        va: VirtAddr,
    },
    /// A domain accessed a frame owned by another domain.
    CrossDomainAccess {
        /// The accessing domain.
        dom: DomainId,
        /// The foreign frame.
        mfn: Mfn,
    },
    /// Application-level integrity was lost (e.g. the ACID checker found
    /// corrupted transactions).
    IntegrityLoss {
        /// What was corrupted.
        what: String,
    },
    /// A domain received virtual interrupts on ports it never bound.
    UncontrolledInterrupts {
        /// The victim domain.
        dom: DomainId,
        /// The spurious ports.
        ports: Vec<u16>,
    },
    /// A domain was paused/stopped without a legitimate request.
    AvailabilityLoss {
        /// The affected domain.
        dom: DomainId,
    },
}

impl fmt::Display for SecurityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityViolation::HypervisorCrash { message } => {
                write!(f, "hypervisor crash: {message}")
            }
            SecurityViolation::PrivilegeEscalationAllDomains { path } => {
                write!(f, "privilege escalation in all domains ({path})")
            }
            SecurityViolation::RemoteRootShell { domain } => {
                write!(f, "remote root shell into {domain}")
            }
            SecurityViolation::GuestWritablePageTable { va } => {
                write!(f, "guest-writable page table at {va}")
            }
            SecurityViolation::CrossDomainAccess { dom, mfn } => {
                write!(f, "{dom} accessed foreign frame {mfn}")
            }
            SecurityViolation::IntegrityLoss { what } => write!(f, "integrity loss: {what}"),
            SecurityViolation::UncontrolledInterrupts { dom, ports } => {
                write!(f, "{dom} received uncontrolled interrupts on ports {ports:?}")
            }
            SecurityViolation::AvailabilityLoss { dom } => {
                write!(f, "availability loss: {dom} paused without request")
            }
        }
    }
}

/// One violation detector.
///
/// `Send + Sync` so monitors can be built and consulted on campaign
/// worker threads.
pub trait Detector: Send + Sync {
    /// Detector name for reports.
    fn name(&self) -> &'static str;
    /// Inspects the world and reports violations.
    fn observe(&self, world: &World) -> Vec<SecurityViolation>;
}

/// Detects a hypervisor panic.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashDetector;

impl Detector for CrashDetector {
    fn name(&self) -> &'static str {
        "crash"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        world
            .hv()
            .crash_info()
            .map(|c| {
                vec![SecurityViolation::HypervisorCrash {
                    message: c.message.clone(),
                }]
            })
            .unwrap_or_default()
    }
}

/// Detects the XSA-212-priv outcome: a root-owned file present in every
/// domain.
#[derive(Clone, Debug)]
pub struct PrivEscFileDetector {
    /// The artifact path to look for.
    pub path: String,
}

impl PrivEscFileDetector {
    /// Watches for `path` in every domain.
    pub fn new(path: &str) -> Self {
        Self {
            path: path.to_owned(),
        }
    }
}

impl Detector for PrivEscFileDetector {
    fn name(&self) -> &'static str {
        "privilege-escalation-file"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        let all = world.file_in_all_domains(&self.path);
        let root_owned = world.domains().iter().all(|&d| {
            world
                .kernel(d)
                .ok()
                .and_then(|k| k.vfs().owner(&self.path))
                .map(|o| o == Uid::ROOT)
                .unwrap_or(false)
        });
        if all && root_owned {
            vec![SecurityViolation::PrivilegeEscalationAllDomains {
                path: self.path.clone(),
            }]
        } else {
            Vec::new()
        }
    }
}

/// Detects established root reverse shells.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseShellDetector;

impl Detector for ReverseShellDetector {
    fn name(&self) -> &'static str {
        "reverse-shell"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        world
            .remote()
            .sessions()
            .iter()
            .filter(|s| s.uid.is_root())
            .map(|s| SecurityViolation::RemoteRootShell { domain: s.domain })
            .collect()
    }
}

/// Detects a *usable* writable page-table self-map: the erroneous state
/// of XSA-182, counted as a violation only if the guest can actually
/// write through it (the hardened layout shields the injected state).
#[derive(Clone, Copy, Debug)]
pub struct WritablePageTableDetector {
    /// The domain under test.
    pub dom: DomainId,
    /// The self-map virtual address to probe.
    pub va: VirtAddr,
}

impl Detector for WritablePageTableDetector {
    fn name(&self) -> &'static str {
        "writable-page-table"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        // Probe without side effects: translate and check writability.
        match world.hv().guest_translate(self.dom, self.va) {
            Ok(t) if t.writable() => {
                // The mapping must actually reach a page-table frame.
                let is_pt = world
                    .hv()
                    .mem()
                    .info(t.mfn)
                    .map(|i| i.page_type().is_page_table())
                    .unwrap_or(false);
                if is_pt {
                    vec![SecurityViolation::GuestWritablePageTable { va: self.va }]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }
}

/// Detects retained access to frames now owned by someone else.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossDomainAccessDetector;

impl Detector for CrossDomainAccessDetector {
    fn name(&self) -> &'static str {
        "cross-domain-access"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        let mut found = Vec::new();
        for dom in world.domains() {
            let Ok(d) = world.hv().domain(dom) else { continue };
            for mfn in d.retained_frames() {
                let owner = world.hv().mem().info(mfn).ok().and_then(|i| i.owner());
                match owner {
                    Some(o) if o != dom => {
                        found.push(SecurityViolation::CrossDomainAccess { dom, mfn })
                    }
                    _ => {}
                }
            }
        }
        found
    }
}

/// Detects spurious pending events (interrupts on never-bound ports)
/// across all domains.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpuriousInterruptDetector;

impl Detector for SpuriousInterruptDetector {
    fn name(&self) -> &'static str {
        "spurious-interrupts"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        world
            .domains()
            .into_iter()
            .filter_map(|dom| {
                let ports = world.hv().spurious_pending_ports(dom);
                if ports.is_empty() {
                    None
                } else {
                    Some(SecurityViolation::UncontrolledInterrupts { dom, ports })
                }
            })
            .collect()
    }
}

/// Detects domains that are paused although the test harness issued no
/// pause — the availability erroneous state of the management-interface
/// intrusion models.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnexpectedPauseDetector;

impl Detector for UnexpectedPauseDetector {
    fn name(&self) -> &'static str {
        "unexpected-pause"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        world
            .domains()
            .into_iter()
            .filter(|&d| {
                world
                    .hv()
                    .domain(d)
                    .map(|dom| dom.is_paused())
                    .unwrap_or(false)
            })
            .map(|dom| SecurityViolation::AvailabilityLoss { dom })
            .collect()
    }
}

/// Runs the hypervisor's exhaustive PV-invariant audit and reports any
/// violated invariant as an erroneous state observation. This detector
/// surfaces *latent* erroneous states — injected or leaked states that
/// have not yet produced an externally visible violation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PvInvariantDetector;

impl Detector for PvInvariantDetector {
    fn name(&self) -> &'static str {
        "pv-invariants"
    }

    fn observe(&self, world: &World) -> Vec<SecurityViolation> {
        world
            .hv()
            .audit_pv_invariants()
            .into_iter()
            .map(|v| SecurityViolation::IntegrityLoss { what: v.to_string() })
            .collect()
    }
}

/// A set of detectors run together.
#[derive(Default)]
pub struct Monitor {
    detectors: Vec<Box<dyn Detector>>,
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field(
                "detectors",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The merged result of a monitoring pass.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// All violations found, in detector order.
    pub violations: Vec<SecurityViolation>,
}

impl Observation {
    /// `true` if no violation was observed (the state was handled).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a detector.
    #[must_use]
    pub fn with(mut self, detector: Box<dyn Detector>) -> Self {
        self.detectors.push(detector);
        self
    }

    /// Adds a detector in place.
    pub fn add(&mut self, detector: Box<dyn Detector>) {
        self.detectors.push(detector);
    }

    /// The standard detector set every campaign runs (crash, priv-esc
    /// file, reverse shell, cross-domain access).
    pub fn standard() -> Self {
        Monitor::new()
            .with(Box::new(CrashDetector))
            .with(Box::new(PrivEscFileDetector::new("/tmp/injector_log")))
            .with(Box::new(ReverseShellDetector))
            .with(Box::new(CrossDomainAccessDetector))
    }

    /// Runs every detector.
    pub fn observe(&self, world: &World) -> Observation {
        let mut violations = Vec::new();
        for d in &self.detectors {
            violations.extend(d.observe(world));
        }
        Observation { violations }
    }

    /// Runs every detector with per-detector panic containment: a
    /// panicking detector loses its own observations but not the rest
    /// of the monitor's. Returns the observation plus one
    /// `"name: payload"` record per failed detector — the campaign
    /// surfaces those as [`crate::error::CampaignError::Monitor`].
    ///
    /// `AssertUnwindSafe` is sound: detectors only read `&World`, and a
    /// world is plain owned data that cannot be left half-mutated by a
    /// `&`-borrow.
    pub fn observe_contained(&self, world: &World) -> (Observation, Vec<String>) {
        let mut violations = Vec::new();
        let mut failures = Vec::new();
        for d in &self.detectors {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.observe(world))) {
                Ok(observed) => violations.extend(observed),
                Err(p) => failures.push(format!(
                    "{}: {}",
                    d.name(),
                    crate::error::panic_payload(p.as_ref())
                )),
            }
        }
        (Observation { violations }, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::{FileMode, WorldBuilder};
    use hvsim::XenVersion;

    fn world() -> World {
        WorldBuilder::new(XenVersion::V4_6)
            .injector(true)
            .guest("a", 32)
            .guest("b", 32)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_world_observes_nothing() {
        let w = world();
        let obs = Monitor::standard().observe(&w);
        assert!(obs.is_clean());
    }

    #[test]
    fn crash_detector_fires_after_panic() {
        let mut w = world();
        w.hv_mut().crash("DOUBLE FAULT -- system shutdown");
        let obs = Monitor::new().with(Box::new(CrashDetector)).observe(&w);
        assert_eq!(obs.violations.len(), 1);
        assert!(matches!(
            &obs.violations[0],
            SecurityViolation::HypervisorCrash { message } if message.contains("DOUBLE FAULT")
        ));
    }

    #[test]
    fn privesc_detector_requires_every_domain_and_root_owner() {
        let mut w = world();
        let det = PrivEscFileDetector::new("/tmp/injector_log");
        // Present in one domain only: no violation.
        let d0 = w.dom0();
        w.kernel_mut(d0)
            .unwrap()
            .vfs_mut()
            .write("/tmp/injector_log", Uid::ROOT, FileMode::PublicRead, b"x")
            .unwrap();
        assert!(det.observe(&w).is_empty());
        // Present everywhere as root: violation.
        for d in w.domains() {
            w.kernel_mut(d)
                .unwrap()
                .vfs_mut()
                .write("/tmp/injector_log", Uid::ROOT, FileMode::PublicRead, b"x")
                .unwrap();
        }
        assert_eq!(det.observe(&w).len(), 1);
    }

    #[test]
    fn privesc_detector_ignores_non_root_files() {
        let mut w = world();
        for d in w.domains() {
            w.kernel_mut(d)
                .unwrap()
                .vfs_mut()
                .write("/tmp/x", Uid::new(1000), FileMode::Public, b"x")
                .unwrap();
        }
        assert!(PrivEscFileDetector::new("/tmp/x").observe(&w).is_empty());
    }

    #[test]
    fn reverse_shell_detector_only_counts_root() {
        let mut w = world();
        w.remote_mut().listen();
        let a = w.domain_by_name("a").unwrap();
        w.remote_mut().accept(a, Uid::new(1000), "p");
        assert!(ReverseShellDetector.observe(&w).is_empty());
        w.remote_mut().accept(a, Uid::ROOT, "p");
        let v = ReverseShellDetector.observe(&w);
        assert_eq!(v, vec![SecurityViolation::RemoteRootShell { domain: a }]);
    }

    #[test]
    fn cross_domain_detector_fires_on_foreign_retained_frames() {
        let mut w = world();
        let a = w.domain_by_name("a").unwrap();
        let b = w.domain_by_name("b").unwrap();
        let bs_frame = w.hv().domain(b).unwrap().p2m(hvsim_mem::Pfn::new(8)).unwrap();
        w.hv_mut().inject_retain_access(a, bs_frame).unwrap();
        let v = CrossDomainAccessDetector.observe(&w);
        assert_eq!(v, vec![SecurityViolation::CrossDomainAccess { dom: a, mfn: bs_frame }]);
    }

    #[test]
    fn monitor_debug_lists_detectors() {
        let m = Monitor::standard();
        let dbg = format!("{m:?}");
        assert!(dbg.contains("crash"));
        assert!(dbg.contains("reverse-shell"));
    }

    #[test]
    fn violation_display() {
        let v = SecurityViolation::GuestWritablePageTable {
            va: VirtAddr::new(0x1000),
        };
        assert!(v.to_string().contains("guest-writable page table"));
    }
}
