//! The chain of dependability threats with the extended-AVI model
//! (paper Fig. 1).
//!
//! The classic chain is *fault → error → failure*. The AVI (Attack,
//! Vulnerability, Intrusion) composite fault model specializes the fault
//! end for malicious faults: an **attack** (intentional external fault)
//! activates a **vulnerability** (internal fault), causing an
//! **intrusion**, whose first effect is an **erroneous state**; if the
//! system does not handle that state, a **security violation** (a failure
//! affecting a security attribute) follows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One stage of the extended-AVI threat chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreatStage {
    /// The intentional act against the system (malicious external fault).
    Attack,
    /// The internal fault the attack activates.
    Vulnerability,
    /// Attack meets vulnerability: the adversary is "inside".
    Intrusion,
    /// The intrusion's first effect on system state.
    ErroneousState,
    /// The failure: a security attribute is violated.
    SecurityViolation,
    /// Alternative terminal: the system processed the erroneous state.
    Handled,
}

impl ThreatStage {
    /// The stage intrusion injection enters the chain at: it skips
    /// attack/vulnerability/intrusion and produces the erroneous state
    /// directly (the red dotted arrow of Fig. 2).
    pub const INJECTION_ENTRY: ThreatStage = ThreatStage::ErroneousState;
}

impl fmt::Display for ThreatStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreatStage::Attack => "attack",
            ThreatStage::Vulnerability => "vulnerability",
            ThreatStage::Intrusion => "intrusion",
            ThreatStage::ErroneousState => "erroneous state",
            ThreatStage::SecurityViolation => "security violation",
            ThreatStage::Handled => "handled",
        })
    }
}

/// One concrete link in a threat chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatLink {
    /// The stage this link instantiates.
    pub stage: ThreatStage,
    /// What concretely happened (e.g. "`memory_exchange` hypercall with
    /// crafted out handle").
    pub what: String,
}

/// A concrete instantiation of the threat chain, buildable from a real
/// run of an exploit or an injection.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatChain {
    links: Vec<ThreatLink>,
}

impl ThreatChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a link. Stages must be non-decreasing (the chain flows
    /// left to right in Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if `stage` precedes the last link's stage.
    pub fn push(&mut self, stage: ThreatStage, what: impl Into<String>) -> &mut Self {
        if let Some(last) = self.links.last() {
            assert!(
                stage >= last.stage,
                "threat chain must be ordered: {stage} after {}",
                last.stage
            );
        }
        self.links.push(ThreatLink {
            stage,
            what: what.into(),
        });
        self
    }

    /// The links, in order.
    pub fn links(&self) -> &[ThreatLink] {
        &self.links
    }

    /// `true` if the chain ends in a security violation.
    pub fn violated(&self) -> bool {
        self.links
            .last()
            .is_some_and(|l| l.stage == ThreatStage::SecurityViolation)
    }

    /// `true` if the chain was handled (the paper's shield).
    pub fn handled(&self) -> bool {
        self.links.last().is_some_and(|l| l.stage == ThreatStage::Handled)
    }

    /// The stage the chain begins at — [`ThreatStage::Attack`] for a
    /// traditional run, [`ThreatStage::ErroneousState`] for an injection.
    pub fn entry_stage(&self) -> Option<ThreatStage> {
        self.links.first().map(|l| l.stage)
    }

    /// The generic chain of Fig. 1, instantiated with the paper's running
    /// VENOM (XSA-133) example.
    pub fn fig1_example() -> ThreatChain {
        let mut c = ThreatChain::new();
        c.push(
            ThreatStage::Attack,
            "malicious guest sends oversized buffer to the QEMU floppy disk controller",
        )
        .push(
            ThreatStage::Vulnerability,
            "XSA-133 (VENOM): FDC does not restrict operations on its input",
        )
        .push(ThreatStage::Intrusion, "FDC internal buffer overflows")
        .push(
            ThreatStage::ErroneousState,
            "memory that should be inaccessible is corrupted",
        )
        .push(
            ThreatStage::SecurityViolation,
            "privilege escalation on the host",
        );
        c
    }
}

impl fmt::Display for ThreatChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "[{}] {}", link.stage, link.what)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_example_is_complete_and_ordered() {
        let c = ThreatChain::fig1_example();
        assert_eq!(c.links().len(), 5);
        assert!(c.violated());
        assert!(!c.handled());
        assert_eq!(c.entry_stage(), Some(ThreatStage::Attack));
        let stages: Vec<_> = c.links().iter().map(|l| l.stage).collect();
        let mut sorted = stages.clone();
        sorted.sort();
        assert_eq!(stages, sorted);
    }

    #[test]
    fn injection_chain_enters_at_erroneous_state() {
        let mut c = ThreatChain::new();
        c.push(ThreatStage::INJECTION_ENTRY, "IDT #PF gate overwritten via injector")
            .push(ThreatStage::SecurityViolation, "double fault -> hypervisor crash");
        assert_eq!(c.entry_stage(), Some(ThreatStage::ErroneousState));
        assert!(c.violated());
    }

    #[test]
    fn handled_chain() {
        let mut c = ThreatChain::new();
        c.push(ThreatStage::ErroneousState, "RW self-map injected")
            .push(ThreatStage::Handled, "hardened walk rejects the self-map");
        assert!(c.handled());
        assert!(!c.violated());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_chain_panics() {
        let mut c = ThreatChain::new();
        c.push(ThreatStage::ErroneousState, "x")
            .push(ThreatStage::Attack, "y");
    }

    #[test]
    fn display_renders_arrows() {
        let c = ThreatChain::fig1_example();
        let s = c.to_string();
        assert!(s.contains("[attack]"));
        assert!(s.contains(" -> [security violation]"));
    }
}
