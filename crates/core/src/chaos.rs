//! Deterministic chaos injection for the harness itself: seeded faults
//! that exercise every degradation path the campaign engine claims to
//! contain — worker panics, transient boot failures, cells that blow
//! their deadline, generator stalls, and torn journal writes.
//!
//! The paper's argument depends on the harness surviving its own
//! faults (a fault injector that dies on a fault proves nothing), and
//! PR 2's containment story was so far only exercised by hand-written
//! failing scenarios. Chaos mode turns it into a continuously tested
//! property.
//!
//! # Determinism contract
//!
//! Every report-affecting decision is a pure function of
//! `(seed, fault kind, slot)` — **never** of worker id, queue position,
//! or wall clock — so a chaos campaign produces byte-identical
//! normalized reports at any `--jobs` count, and CI diffs them exactly
//! like regular runs. Queue stalls and torn journal writes only shape
//! wall-clock time and journal durability, which `normalized()`
//! excludes by construction.

use crate::checkpoint::{fnv64, JournalSink};
use crate::injector::Injector;
use crate::model::IntrusionModel;
use crate::monitor::Monitor;
use crate::scenario::{ScenarioOutcome, UseCase};
use guestos::World;
use hvsim_mem::DomainId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 — the same generator the synthetic workload uses, kept
/// private per module so chaos decisions cannot couple to workload
/// randomness.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-fault salts: decisions for different fault kinds on the same
/// slot are independent.
const SALT_PANIC: u64 = 0x70_61_6e_69_63; // "panic"
const SALT_BOOT: u64 = 0x62_6f_6f_74; // "boot"
const SALT_SLOW: u64 = 0x73_6c_6f_77; // "slow"
const SALT_STALL: u64 = 0x73_74_61_6c_6c; // "stall"
const SALT_TORN: u64 = 0x74_6f_72_6e; // "torn"

/// Chaos fault rates, in permille per slot, plus the seed that makes
/// the whole fault schedule reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Permille of slots whose inject phase panics (→ `Crashed`).
    pub worker_panic_permille: u32,
    /// Permille of slots whose boot suffers forced transient failures
    /// (some recover within the retry budget, some exhaust it →
    /// `BootFailed`).
    pub transient_boot_permille: u32,
    /// Permille of slots slowed past the cell deadline (→ `TimedOut`;
    /// inert when no deadline is configured).
    pub slowdown_permille: u32,
    /// Permille of slots whose enqueue stalls the generator briefly
    /// (wall-clock only — never visible in a normalized report).
    pub queue_stall_permille: u32,
    /// Permille of journal records written torn (a prefix of the
    /// bytes), exercising torn-tail recovery. Header records are
    /// exempt so the journal stays identifiable.
    pub torn_write_permille: u32,
}

impl ChaosConfig {
    /// The CI fault matrix: every fault kind enabled at rates that
    /// degrade a few-thousand-cell grid visibly but leave most cells
    /// clean.
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            worker_panic_permille: 10,
            transient_boot_permille: 20,
            slowdown_permille: 5,
            queue_stall_permille: 10,
            torn_write_permille: 100,
        }
    }

    /// `true` when every rate is zero (chaos configured off).
    pub fn is_noop(&self) -> bool {
        self.worker_panic_permille == 0
            && self.transient_boot_permille == 0
            && self.slowdown_permille == 0
            && self.queue_stall_permille == 0
            && self.torn_write_permille == 0
    }
}

/// The seeded decision engine plus fired-fault counters. Decisions are
/// slot-keyed (see the module docs); counters are recorded into the
/// metrics registry as `campaign.chaos.*` at the end of the run.
#[derive(Debug)]
pub struct ChaosPolicy {
    config: ChaosConfig,
    worker_panics: AtomicU64,
    transient_boots: AtomicU64,
    slowdowns: AtomicU64,
    queue_stalls: AtomicU64,
    torn_writes: AtomicU64,
}

impl ChaosPolicy {
    /// Builds the policy for one campaign run.
    pub fn new(config: ChaosConfig) -> Self {
        Self {
            config,
            worker_panics: AtomicU64::new(0),
            transient_boots: AtomicU64::new(0),
            slowdowns: AtomicU64::new(0),
            queue_stalls: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
        }
    }

    /// The configuration this policy runs.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// The raw seeded roll for one (fault, key) pair, in `0..`.
    fn roll(&self, salt: u64, key: u64) -> u64 {
        splitmix64(self.config.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ splitmix64(key))
    }

    fn fires(&self, salt: u64, key: u64, permille: u32) -> bool {
        permille > 0 && self.roll(salt, key) % 1000 < u64::from(permille)
    }

    /// Should this slot's inject phase panic? Counted when it fires.
    pub fn worker_panic(&self, slot: u64) -> bool {
        let fires = self.fires(SALT_PANIC, slot, self.config.worker_panic_permille);
        if fires {
            self.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// How many forced transient boot failures this slot suffers
    /// (0 = none). The count is drawn from `1..=retries + 2`, so some
    /// slots recover inside the retry budget (visible as retries) and
    /// some exhaust it (visible as `BootFailed`) — both containment
    /// paths get exercised by one knob.
    pub fn transient_boot_faults(&self, slot: u64, retries: u32) -> u32 {
        if !self.fires(SALT_BOOT, slot, self.config.transient_boot_permille) {
            return 0;
        }
        self.transient_boots.fetch_add(1, Ordering::Relaxed);
        let spread = u64::from(retries) + 2;
        1 + (self.roll(SALT_BOOT ^ 0xff, slot) % spread) as u32
    }

    /// How long to slow this slot down, if at all: 2× the deadline, so
    /// the watchdog relabel is unambiguous. Panic takes precedence —
    /// a cell that panics never reaches its slowdown.
    pub fn slowdown(&self, slot: u64, deadline: Option<Duration>) -> Option<Duration> {
        let deadline = deadline?;
        if self.worker_panic_preview(slot)
            || !self.fires(SALT_SLOW, slot, self.config.slowdown_permille)
        {
            return None;
        }
        self.slowdowns.fetch_add(1, Ordering::Relaxed);
        Some(deadline * 2)
    }

    /// The panic decision without counting it (for precedence checks).
    fn worker_panic_preview(&self, slot: u64) -> bool {
        self.config.worker_panic_permille > 0
            && self.roll(SALT_PANIC, slot) % 1000 < u64::from(self.config.worker_panic_permille)
    }

    /// Should the generator stall before enqueueing this slot?
    pub fn queue_stall(&self, slot: u64) -> Option<Duration> {
        if !self.fires(SALT_STALL, slot, self.config.queue_stall_permille) {
            return None;
        }
        self.queue_stalls.fetch_add(1, Ordering::Relaxed);
        Some(Duration::from_micros(200))
    }

    /// Should this journal record be torn? Keyed by the payload hash
    /// (journal writes have no slot identity at the sink layer); the
    /// header record is never torn.
    pub fn torn_write(&self, payload_hash: u64) -> bool {
        let fires = self.fires(SALT_TORN, payload_hash, self.config.torn_write_permille);
        if fires {
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// Fired-fault counts so far:
    /// `(worker_panics, transient_boots, slowdowns, queue_stalls,
    /// torn_writes)`.
    pub fn fired(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.worker_panics.load(Ordering::Relaxed),
            self.transient_boots.load(Ordering::Relaxed),
            self.slowdowns.load(Ordering::Relaxed),
            self.queue_stalls.load(Ordering::Relaxed),
            self.torn_writes.load(Ordering::Relaxed),
        )
    }
}

/// A [`JournalSink`] wrapper that tears a seeded fraction of records —
/// writes only a prefix of the bytes — exercising the journal's
/// torn-tail recovery exactly where a crash would.
pub(crate) struct ChaosSink {
    inner: Box<dyn JournalSink>,
    policy: Arc<ChaosPolicy>,
}

impl ChaosSink {
    pub(crate) fn new(inner: Box<dyn JournalSink>, policy: Arc<ChaosPolicy>) -> Self {
        Self { inner, policy }
    }
}

impl JournalSink for ChaosSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        // The header must survive or the journal loses its identity —
        // chaos targets steady-state records only.
        let is_header = bytes.windows(b"journal/header".len()).any(|w| w == b"journal/header");
        if !is_header && self.policy.torn_write(fnv64(bytes)) {
            return self.inner.append(&bytes[..bytes.len() / 2]);
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.inner.sync()
    }
}

/// A delegating [`UseCase`] wrapper that injects this cell's chaos
/// faults into the inject phase: a panic (caught at the containment
/// boundary → `Crashed`) or a sleep past the deadline (relabelled by
/// the watchdog → `TimedOut`). Built per cell by the streaming worker,
/// which is the only place that knows the slot.
pub(crate) struct ChaosUseCase<'a> {
    inner: &'a dyn UseCase,
    panic_in_inject: bool,
    sleep_in_inject: Option<Duration>,
}

impl<'a> ChaosUseCase<'a> {
    pub(crate) fn new(
        inner: &'a dyn UseCase,
        panic_in_inject: bool,
        sleep_in_inject: Option<Duration>,
    ) -> Self {
        Self { inner, panic_in_inject, sleep_in_inject }
    }

    fn inject_fault(&self) {
        if self.panic_in_inject {
            panic!("chaos: injected worker panic");
        }
        if let Some(sleep) = self.sleep_in_inject {
            std::thread::sleep(sleep);
        }
    }
}

impl UseCase for ChaosUseCase<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn intrusion_model(&self) -> IntrusionModel {
        self.inner.intrusion_model()
    }

    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
        self.inject_fault();
        self.inner.run_exploit(world, attacker)
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        self.inject_fault();
        self.inner.run_injection(world, attacker, injector)
    }

    fn run_exploit_trial(
        &self,
        world: &mut World,
        attacker: DomainId,
        trial: u64,
    ) -> ScenarioOutcome {
        self.inject_fault();
        self.inner.run_exploit_trial(world, attacker, trial)
    }

    fn run_injection_trial(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
        trial: u64,
    ) -> ScenarioOutcome {
        self.inject_fault();
        self.inner.run_injection_trial(world, attacker, injector, trial)
    }

    fn monitor(&self, world: &World, attacker: DomainId) -> Monitor {
        self.inner.monitor(world, attacker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_slot_keyed_and_reproducible() {
        let a = ChaosPolicy::new(ChaosConfig::standard(7));
        let b = ChaosPolicy::new(ChaosConfig::standard(7));
        for slot in 0..5_000 {
            assert_eq!(a.worker_panic(slot), b.worker_panic(slot));
            assert_eq!(a.transient_boot_faults(slot, 2), b.transient_boot_faults(slot, 2));
            assert_eq!(
                a.slowdown(slot, Some(Duration::from_millis(50))),
                b.slowdown(slot, Some(Duration::from_millis(50)))
            );
            assert_eq!(a.queue_stall(slot).is_some(), b.queue_stall(slot).is_some());
        }
        assert_eq!(a.fired(), b.fired());
        let (panics, boots, slows, stalls, _) = a.fired();
        assert!(panics > 0 && boots > 0 && slows > 0 && stalls > 0, "rates actually fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosPolicy::new(ChaosConfig::standard(1));
        let b = ChaosPolicy::new(ChaosConfig::standard(2));
        let plan = |p: &ChaosPolicy| (0..2_000).map(|s| p.worker_panic(s)).collect::<Vec<_>>();
        assert_ne!(plan(&a), plan(&b));
    }

    #[test]
    fn slowdown_is_inert_without_a_deadline_and_yields_to_panics() {
        let policy = ChaosPolicy::new(ChaosConfig {
            seed: 3,
            worker_panic_permille: 1000,
            transient_boot_permille: 0,
            slowdown_permille: 1000,
            queue_stall_permille: 0,
            torn_write_permille: 0,
        });
        assert_eq!(policy.slowdown(0, None), None);
        // Panic fires on every slot here, so slowdown never does.
        assert_eq!(policy.slowdown(0, Some(Duration::from_millis(10))), None);
        assert!(policy.worker_panic(0));
    }

    #[test]
    fn boot_faults_spread_across_and_beyond_the_retry_budget() {
        let policy = ChaosPolicy::new(ChaosConfig {
            seed: 11,
            worker_panic_permille: 0,
            transient_boot_permille: 1000,
            slowdown_permille: 0,
            queue_stall_permille: 0,
            torn_write_permille: 0,
        });
        let retries = 2u32;
        let mut recovered = 0;
        let mut exhausted = 0;
        for slot in 0..1_000 {
            let faults = policy.transient_boot_faults(slot, retries);
            assert!((1..=retries + 2).contains(&faults));
            if faults <= retries {
                recovered += 1;
            } else {
                exhausted += 1;
            }
        }
        assert!(recovered > 0 && exhausted > 0);
    }

    #[test]
    fn chaos_sink_tears_records_but_never_the_header() {
        struct CaptureSink(Vec<Vec<u8>>);
        impl JournalSink for CaptureSink {
            fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
                self.0.push(bytes.to_vec());
                Ok(())
            }
            fn sync(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let policy = Arc::new(ChaosPolicy::new(ChaosConfig {
            seed: 5,
            worker_panic_permille: 0,
            transient_boot_permille: 0,
            slowdown_permille: 0,
            queue_stall_permille: 0,
            torn_write_permille: 1000,
        }));
        let mut sink = ChaosSink::new(Box::new(CaptureSink(Vec::new())), Arc::clone(&policy));
        let header = b"xx journal/header yy\n";
        let record = b"123 deadbeef {\"payload\":\"journal/slot\"}\n";
        sink.append(header).unwrap();
        sink.append(record).unwrap();
        let (_, _, _, _, torn) = policy.fired();
        assert_eq!(torn, 1, "only the non-header record is torn");
    }

    #[test]
    fn noop_config_detection() {
        assert!(!ChaosConfig::standard(0).is_noop());
        let off = ChaosConfig {
            seed: 9,
            worker_panic_permille: 0,
            transient_boot_permille: 0,
            slowdown_permille: 0,
            queue_stall_permille: 0,
            torn_write_permille: 0,
        };
        assert!(off.is_noop());
    }
}
