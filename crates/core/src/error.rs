//! The campaign-level error taxonomy: what went wrong with a cell, as
//! structured data instead of a dead worker thread.
//!
//! The paper's campaigns deliberately drive the hypervisor into crashing
//! states — a hypervisor crash is an *assessment result* (a security
//! violation the monitors record), never a harness failure. The taxonomy
//! here covers the harness side: worlds that failed to boot, injections
//! that could not establish the erroneous state, monitors that died while
//! observing, panics that escaped a cell body, and cells that overran
//! their deadline. Every variant serializes into reports, so a degraded
//! campaign still produces a complete, machine-readable record.

use crate::scenario::Mode;
use hvsim::XenVersion;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why a campaign cell (or randomized trial) did not produce a clean
/// assessment result.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignError {
    /// The world factory failed to produce a bootable world, after
    /// `attempts` tries (transient failures are retried up to the
    /// campaign's retry budget).
    Boot {
        /// Final failure message.
        message: String,
        /// Boot attempts made, including the failing one.
        attempts: u32,
    },
    /// The scenario could not establish the erroneous state — the
    /// paper's "exploit fails with `-EFAULT` on a fixed version" class.
    /// This is assessment data, not harness degradation.
    Injection {
        /// The scenario's failure message (typically an errno string).
        message: String,
    },
    /// A security-violation detector failed while observing the
    /// post-injection world; the cell's observation is incomplete.
    Monitor {
        /// Which detector(s) failed and how.
        message: String,
    },
    /// A panic escaped the cell body (world clone, scenario, or
    /// factory) and was captured at the containment boundary.
    HarnessCrash {
        /// The downcast panic payload.
        payload: String,
    },
    /// The cell exceeded the campaign's per-cell deadline and was
    /// abandoned by the watchdog.
    Deadline {
        /// The configured deadline, in microseconds.
        deadline_us: u64,
    },
}

impl CampaignError {
    /// `true` for errors that degrade the *harness* (boot, monitor,
    /// crash, deadline) as opposed to recording an assessment outcome
    /// (a failed injection attempt is paper data).
    pub fn is_harness_failure(&self) -> bool {
        !matches!(self, CampaignError::Injection { .. })
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Boot { message, attempts } => {
                write!(f, "boot failed after {attempts} attempt(s): {message}")
            }
            // Printed verbatim: this is the exploit/injection failure
            // signature the paper reports (e.g. "-EFAULT (bad address)").
            CampaignError::Injection { message } => f.write_str(message),
            CampaignError::Monitor { message } => write!(f, "monitor failed: {message}"),
            CampaignError::HarnessCrash { payload } => write!(f, "harness crashed: {payload}"),
            CampaignError::Deadline { deadline_us } => {
                write!(f, "cell exceeded its {deadline_us} us deadline")
            }
        }
    }
}

impl Error for CampaignError {}

/// Why a checkpoint journal could not be written, read, or applied.
///
/// Torn *tails* are not errors — recovery truncates to the last valid
/// record by design (that is the crash model). This taxonomy covers the
/// cases where the journal as a whole cannot be trusted or used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The journal file could not be created, read, written, or synced.
    Io {
        /// Journal path.
        path: String,
        /// Underlying I/O failure.
        message: String,
    },
    /// The journal's leading header record is missing or unreadable —
    /// this file was never a checkpoint journal (or lost its first
    /// record, which fsync ordering makes impossible short of media
    /// corruption).
    Header {
        /// Journal path.
        path: String,
        /// What was wrong with the header.
        message: String,
    },
    /// The journal was written by a campaign with a different grid
    /// (use cases, versions, modes, trials, or shard): resuming would
    /// silently mis-attribute slots, so it fails loudly instead.
    GridMismatch {
        /// Fingerprint recorded in the journal.
        journal: String,
        /// Fingerprint of the campaign attempting to resume.
        campaign: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint journal {path}: {message}")
            }
            CheckpointError::Header { path, message } => {
                write!(f, "{path} is not a checkpoint journal: {message}")
            }
            CheckpointError::GridMismatch { journal, campaign } => write!(
                f,
                "checkpoint journal was written by a different campaign grid \
                 (journal {journal}, campaign {campaign})"
            ),
        }
    }
}

impl Error for CheckpointError {}

/// Identity of one campaign cell, carried inside [`CellOutcome`] so a
/// crash record is self-describing even outside its report row.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellId {
    /// Use-case name.
    pub use_case: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / Xen {} / {}", self.use_case, self.version, self.mode)
    }
}

/// How far a campaign cell got.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell ran its scenario and was monitored.
    Completed,
    /// The world never booted; the cell has no assessment data.
    BootFailed,
    /// A panic escaped the cell body and was captured at the
    /// containment boundary.
    Crashed {
        /// The downcast panic payload.
        payload: String,
        /// Which cell crashed.
        cell: CellId,
    },
    /// The watchdog abandoned the cell at the per-cell deadline.
    TimedOut {
        /// The configured deadline, in microseconds.
        deadline_us: u64,
    },
}

impl CellOutcome {
    /// `true` unless the cell completed.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, CellOutcome::Completed)
    }
}

/// Renders a panic payload captured by `std::panic::catch_unwind` as a
/// string: `&str` and `String` payloads (everything `panic!` produces)
/// verbatim, anything else as an opaque marker.
pub fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_separates_harness_failures_from_assessment_data() {
        assert!(CampaignError::Boot { message: "x".into(), attempts: 3 }.is_harness_failure());
        assert!(CampaignError::Monitor { message: "x".into() }.is_harness_failure());
        assert!(CampaignError::HarnessCrash { payload: "x".into() }.is_harness_failure());
        assert!(CampaignError::Deadline { deadline_us: 1 }.is_harness_failure());
        assert!(!CampaignError::Injection { message: "-EFAULT".into() }.is_harness_failure());
    }

    #[test]
    fn injection_errors_display_verbatim() {
        let e = CampaignError::Injection { message: "-EFAULT (bad address)".into() };
        assert_eq!(e.to_string(), "-EFAULT (bad address)");
        let b = CampaignError::Boot { message: "no frames".into(), attempts: 2 };
        assert!(b.to_string().contains("after 2 attempt(s)"));
    }

    #[test]
    fn outcomes_round_trip_through_serde() {
        let out = CellOutcome::Crashed {
            payload: "boom".into(),
            cell: CellId {
                use_case: "XSA-212-crash".into(),
                version: XenVersion::V4_8,
                mode: Mode::Injection,
            },
        };
        let json = serde_json::to_string(&out).unwrap();
        let back: CellOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(out, back);
        assert!(out.is_degraded());
        assert!(!CellOutcome::Completed.is_degraded());
    }

    #[test]
    fn panic_payloads_downcast() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_payload(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_payload(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_payload(p.as_ref()), "non-string panic payload");
    }
}
