//! The streaming campaign pipeline: lazy cell-spec generation, a
//! bounded work queue with backpressure, and merge-associative partial
//! reports.
//!
//! The classic runner ([`Campaign::run`](crate::Campaign::run))
//! materializes one [`CellResult`](crate::CellResult) per cell — O(cells)
//! memory, fine for the paper's 24-cell Table III, hopeless for the
//! million-cell grids the taxonomy implies. The streaming runner keeps
//! resident state at O(workers + queue depth):
//!
//! ```text
//! SpecGrid (lazy slots)      BoundedQueue (depth D)          N workers
//!  generator ── CellSpec ──▶ [ ▒▒▒ backpressure ▒▒▒ ] ──▶ run cell ─┐
//!                                                                   ▼
//!                                                    PartialFold (per worker)
//!                                                                   │
//!                              ordered merge (by first slot) ◀──────┘
//!                                         │
//!                                         ▼
//!                                   StreamReport
//! ```
//!
//! Determinism: a cell's result depends only on its [`CellSpec`] (every
//! cell starts from a pristine world), and every aggregate in a
//! [`StreamReport`] is a commutative monoid — sums, exact histogram
//! bucket merges, and unions of maps keyed by slot or by grid key whose
//! key sets are disjoint across shards. So the merged report is
//! independent of worker count and of how slots were partitioned into
//! shards; after [`StreamReport::normalized`] zeroes wall-clock values
//! it is byte-identical across schedules.

use crate::campaign::{CellResult, LatencyBreakdown, PhaseLatency};
use crate::error::{CampaignError, CellOutcome};
use crate::report::TextTable;
use crate::scenario::Mode;
use hvsim::XenVersion;
use hvsim_obs::{FlightEvent, Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// One cell of a campaign grid, identified by its global slot index.
///
/// `slot` encodes the cell's grid coordinates positionally
/// (use-case-major, trial fastest-varying), so any subset of slots can
/// be regenerated independently — the basis for deterministic sharding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Global slot index in `0..grid.len()`.
    pub slot: u64,
    /// Index into the campaign's use-case list.
    pub use_case: usize,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Trial index in `0..trials` — the parameter-grid axis. Classic
    /// single-shot campaigns use trial 0.
    pub trial: u64,
}

/// The cartesian campaign grid: use cases × versions × modes × trials,
/// enumerated lazily by slot index.
///
/// `slot = ((uc · V + v) · M + m) · T + t` — identical to the classic
/// runner's work order when `trials == 1`, so streamed and classic runs
/// visit cells in the same logical order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecGrid {
    use_cases: usize,
    versions: Vec<XenVersion>,
    modes: Vec<Mode>,
    trials: u64,
}

impl SpecGrid {
    /// Builds a grid; `trials` is clamped to at least 1.
    pub fn new(use_cases: usize, versions: &[XenVersion], modes: &[Mode], trials: u64) -> Self {
        Self {
            use_cases,
            versions: versions.to_vec(),
            modes: modes.to_vec(),
            trials: trials.max(1),
        }
    }

    /// Total number of cells in the grid.
    pub fn len(&self) -> u64 {
        self.use_cases as u64
            * self.versions.len() as u64
            * self.modes.len() as u64
            * self.trials
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The versions axis, in grid order.
    pub fn versions(&self) -> &[XenVersion] {
        &self.versions
    }

    /// The modes axis, in grid order.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The trials axis (always ≥ 1).
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Decodes a slot index back into its grid coordinates.
    pub fn decode(&self, slot: u64) -> Option<CellSpec> {
        if slot >= self.len() {
            return None;
        }
        let trial = slot % self.trials;
        let rest = slot / self.trials;
        let m = (rest % self.modes.len() as u64) as usize;
        let rest = rest / self.modes.len() as u64;
        let v = (rest % self.versions.len() as u64) as usize;
        let use_case = (rest / self.versions.len() as u64) as usize;
        Some(CellSpec {
            slot,
            use_case,
            version: self.versions[v],
            mode: self.modes[m],
            trial,
        })
    }

    /// Lazily iterates the whole grid in slot order.
    pub fn iter(&self) -> SpecIter<'_> {
        SpecIter { grid: self, next: 0, step: 1 }
    }

    /// Lazily iterates one shard: slots `index, index + count,
    /// index + 2·count, …`. `None` iterates the whole grid. The `n`
    /// shards of any grid partition it exactly, which is what makes
    /// merged shard reports reproduce the unsharded report.
    pub fn shard_iter(&self, shard: Option<Shard>) -> SpecIter<'_> {
        match shard {
            None => self.iter(),
            Some(s) => SpecIter { grid: self, next: s.index, step: s.count },
        }
    }

    /// Number of slots a shard of this grid contains.
    pub fn shard_len(&self, shard: Option<Shard>) -> u64 {
        match shard {
            None => self.len(),
            Some(s) if s.index >= self.len() => 0,
            Some(s) => 1 + (self.len() - 1 - s.index) / s.count,
        }
    }
}

/// Lazy slot-order iterator over a [`SpecGrid`] (whole grid or one
/// shard). Never materializes the grid.
#[derive(Clone, Debug)]
pub struct SpecIter<'g> {
    grid: &'g SpecGrid,
    next: u64,
    step: u64,
}

impl Iterator for SpecIter<'_> {
    type Item = CellSpec;

    fn next(&mut self) -> Option<CellSpec> {
        let spec = self.grid.decode(self.next)?;
        self.next = self.next.saturating_add(self.step);
        Some(spec)
    }
}

/// One shard of a campaign grid: this process runs slots congruent to
/// `index` modulo `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Shard index in `0..count`.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

/// Why a shard assignment could not be built or parsed. A CLI usage
/// error (exit code 2), never a campaign failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// `count == 0`: zero shards cannot partition anything.
    ZeroCount,
    /// `index >= count`.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The shard count it must stay below.
        count: u64,
    },
    /// The CLI text is not of the `i/n` form.
    Malformed {
        /// The text as given.
        text: String,
    },
    /// The index half of `i/n` is not a number.
    BadIndex {
        /// The index text as given.
        text: String,
    },
    /// The count half of `i/n` is not a number.
    BadCount {
        /// The count text as given.
        text: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroCount => f.write_str("shard count must be at least 1"),
            ShardError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shards")
            }
            ShardError::Malformed { text } => {
                write!(f, "'{text}' is not of the form i/n (e.g. 0/2)")
            }
            ShardError::BadIndex { text } => write!(f, "bad shard index '{text}'"),
            ShardError::BadCount { text } => write!(f, "bad shard count '{text}'"),
        }
    }
}

impl std::error::Error for ShardError {}

impl Shard {
    /// Validates and builds a shard assignment.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when `count == 0` or `index >= count`.
    pub fn new(index: u64, count: u64) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError::ZeroCount);
        }
        if index >= count {
            return Err(ShardError::IndexOutOfRange { index, count });
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `i/n` (e.g. `0/2`).
    ///
    /// # Errors
    ///
    /// [`ShardError`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| ShardError::Malformed { text: text.to_owned() })?;
        let index: u64 = index
            .trim()
            .parse()
            .map_err(|_| ShardError::BadIndex { text: index.to_owned() })?;
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| ShardError::BadCount { text: count.to_owned() })?;
        Self::new(index, count)
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A bounded MPMC queue: producers block when full (backpressure),
/// consumers block when empty, `close()` wakes everyone for shutdown.
/// Stall time on both sides is accounted so the throughput summary can
/// show whether the generator or the workers were the bottleneck.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    push_stall_us: AtomicU64,
    pop_stall_us: AtomicU64,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(QueueState { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            push_stall_us: AtomicU64::new(0),
            pop_stall_us: AtomicU64::new(0),
        }
    }

    /// Blocks until there is room, then enqueues. Items pushed after
    /// `close()` are dropped (the campaign never does this; it closes
    /// only after the generator is exhausted).
    pub(crate) fn push(&self, item: T) {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        let stalled = started.elapsed().as_micros() as u64;
        if stalled > 0 {
            self.push_stall_us.fetch_add(stalled, Ordering::Relaxed);
        }
        if !state.closed {
            state.items.push_back(item);
            drop(state);
            self.not_empty.notify_one();
        }
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                let stalled = started.elapsed().as_micros() as u64;
                if stalled > 0 {
                    self.pop_stall_us.fetch_add(stalled, Ordering::Relaxed);
                }
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks the stream complete and wakes all waiters.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued — a telemetry gauge, racy by nature.
    pub(crate) fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Total time producers spent blocked on a full queue, µs.
    pub(crate) fn push_stall_us(&self) -> u64 {
        self.push_stall_us.load(Ordering::Relaxed)
    }

    /// Total time consumers spent blocked on an empty queue, µs.
    pub(crate) fn pop_stall_us(&self) -> u64 {
        self.pop_stall_us.load(Ordering::Relaxed)
    }
}

/// Tracks how many cells are resident (queued or being folded) and the
/// peak — the evidence that streaming memory is O(workers + queue
/// depth), not O(cells).
#[derive(Default)]
pub(crate) struct ResidentGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl ResidentGauge {
    pub(crate) fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn exit(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Cells resident right now — a telemetry gauge, racy by nature.
    pub(crate) fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    pub(crate) fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Per-key aggregate in a [`StreamReport`], keyed by
/// `use_case/version/mode` — enough to render Table III-style summaries
/// without retaining per-cell results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySummary {
    /// Cells run under this key (= trials that reached a worker).
    pub cells: u64,
    /// Cells that completed cleanly.
    pub completed: u64,
    /// Cells on which the harness degraded.
    pub degraded: u64,
    /// Cells that induced the erroneous state.
    pub erroneous_states: u64,
    /// Cells with at least one security violation.
    pub violated: u64,
    /// Cells where the state was induced but handled (the shield).
    pub handled: u64,
    /// Hypercalls executed under this key.
    pub hypercalls: u64,
}

impl KeySummary {
    fn absorb(&mut self, other: &KeySummary) {
        self.cells += other.cells;
        self.completed += other.completed;
        self.degraded += other.degraded;
        self.erroneous_states += other.erroneous_states;
        self.violated += other.violated;
        self.handled += other.handled;
        self.hypercalls += other.hypercalls;
    }
}

/// The retained record of one degraded cell, keyed by slot. Streaming
/// drops completed cells after folding them, but a degraded cell is an
/// actionable harness failure — the report keeps every one, exactly
/// attributable via its slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradedSlot {
    /// Use-case name.
    pub use_case: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Trial index within the key.
    pub trial: u64,
    /// How far the cell got.
    pub outcome: CellOutcome,
    /// The typed failure.
    pub error: Option<CampaignError>,
    /// The cell's forensic tail: the flight-recorder events its worker
    /// retained for this slot (empty when the recorder is off). Raw
    /// `wall_us` values are wall-clock; [`StreamReport::normalized`]
    /// clears the whole tail so normalized reports are byte-identical
    /// with the recorder on or off.
    pub flight: Vec<FlightEvent>,
}

/// Identity of the campaign grid a [`StreamReport`] was produced from:
/// enough to refuse merging reports of *different* campaigns (a silent
/// double-count is worse than a loud error) and to refuse resuming a
/// checkpoint journal against the wrong campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridFingerprint {
    /// Use-case names, in grid order.
    pub use_cases: Vec<String>,
    /// Versions axis, in grid order.
    pub versions: Vec<XenVersion>,
    /// Modes axis, in grid order.
    pub modes: Vec<Mode>,
    /// Trials axis (≥ 1 for any real grid).
    pub trials: u64,
}

impl GridFingerprint {
    /// `true` for the fingerprint of a never-run (default) report.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Total number of cells in the fingerprinted grid.
    pub fn len(&self) -> u64 {
        self.use_cases.len() as u64
            * self.versions.len() as u64
            * self.modes.len() as u64
            * self.trials.max(1)
    }
}

impl std::fmt::Display for GridFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] x {} version(s) x {} mode(s) x {} trial(s)",
            self.use_cases.join(", "),
            self.versions.len(),
            self.modes.len(),
            self.trials.max(1),
        )
    }
}

/// Why two [`StreamReport`]s refused to merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The reports were produced from different campaign grids; their
    /// aggregates are not comparable, let alone summable.
    GridMismatch {
        /// Left fingerprint, rendered.
        left: String,
        /// Right fingerprint, rendered.
        right: String,
    },
    /// Two shards cover at least one common slot — merging would
    /// double-count every shared cell.
    Overlap {
        /// A covered shard of the left report.
        left: Shard,
        /// An overlapping covered shard of the right report.
        right: Shard,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::GridMismatch { left, right } => {
                write!(f, "reports come from different campaign grids: {left} vs {right}")
            }
            MergeError::Overlap { left, right } => write!(
                f,
                "shards {left} and {right} overlap; merging would double-count shared slots"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// `true` when the two congruence classes `index mod count` share a
/// slot: by CRT, exactly when the indices agree modulo the gcd of the
/// counts. (Grid length is ignored — for tiny grids this is stricter
/// than necessary, which errs on the loud side.)
fn shards_overlap(a: Shard, b: Shard) -> bool {
    let g = gcd(a.count, b.count);
    a.index % g == b.index % g
}

/// Canonicalizes a disjoint shard union: if the classes cover every
/// residue modulo the lcm of their counts, the union *is* the whole
/// grid and collapses to `[0/1]`; otherwise the list is sorted and
/// deduplicated. Canonical form is what keeps a full run and the merge
/// of its shards byte-identical.
fn canonical_coverage(mut shards: Vec<Shard>) -> Vec<Shard> {
    shards.sort_by_key(|s| (s.count, s.index));
    shards.dedup();
    if shards.is_empty() {
        return shards;
    }
    let mut lcm = 1u64;
    for s in &shards {
        match (lcm / gcd(lcm, s.count)).checked_mul(s.count) {
            Some(l) if l <= 1 << 20 => lcm = l,
            // Pathological counts: skip the collapse, keep the list.
            _ => return shards,
        }
    }
    let covered = (0..lcm).all(|r| shards.iter().any(|s| r % s.count == s.index));
    if covered {
        vec![Shard { index: 0, count: 1 }]
    } else {
        shards
    }
}

/// A complete, merge-associative streaming campaign report.
///
/// Every field is a sum, an exact histogram merge, or a union of maps
/// whose key sets are disjoint across shards — so
/// [`StreamReport::merge`] is associative and commutative, and merging
/// the reports of `n` shards reproduces the unsharded report.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Cells run.
    pub cells: u64,
    /// Cells that completed cleanly (failed injection attempts
    /// included — they are assessment data).
    pub completed: u64,
    /// Cells on which the harness degraded.
    pub degraded: u64,
    /// Cells that induced their erroneous state.
    pub erroneous_states: u64,
    /// Cells with at least one security violation.
    pub violated_cells: u64,
    /// Individual violations observed (a cell can have several).
    pub violations: u64,
    /// Cells whose induced state was handled cleanly.
    pub handled: u64,
    /// Cells whose world never booted.
    pub boot_failed: u64,
    /// Cells where a panic escaped the cell body.
    pub crashed: u64,
    /// Cells abandoned at the deadline.
    pub timed_out: u64,
    /// Extra boot attempts consumed by transient-failure retries.
    pub retries: u64,
    /// Hypercalls executed across all cells.
    pub hypercalls: u64,
    /// Sum of per-cell wall-clock time, µs (zeroed by `normalized`).
    pub wall_time_us: u64,
    /// Frames privatized by copy-on-write across all cell worlds
    /// (schedule-dependent; zeroed by `normalized`).
    pub frames_copied: u64,
    /// Software-TLB hits (config-dependent; zeroed by `normalized`).
    pub tlb_hits: u64,
    /// Software-TLB misses (config-dependent; zeroed by `normalized`).
    pub tlb_misses: u64,
    /// COW chunk privatizations across all cell worlds
    /// (schedule-dependent; zeroed by `normalized`).
    pub chunks_privatized: u64,
    /// Software-TLB fills that evicted a live entry (config-dependent;
    /// zeroed by `normalized`).
    pub tlb_fill_conflicts: u64,
    /// Per-phase latency summaries, completed vs degraded.
    pub latency: LatencyBreakdown,
    /// Aggregates per `use_case/version/mode` key.
    pub by_key: BTreeMap<String, KeySummary>,
    /// Every degraded cell, keyed by global slot index.
    pub degraded_slots: BTreeMap<u64, DegradedSlot>,
    /// Which campaign grid produced this report (empty for a
    /// never-run default report).
    pub grid: GridFingerprint,
    /// Which shards of the grid this report covers, in canonical form:
    /// a full run (or a merge that reassembled one) is `[0/1]`.
    pub coverage: Vec<Shard>,
}

impl StreamReport {
    /// The report with every wall-clock and schedule-dependent value
    /// zeroed; counts survive. Normalized reports are byte-identical
    /// across worker counts, queue depths, and shardings.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let norm_phase = |p: &PhaseLatency| PhaseLatency {
            completed: p.completed.normalized(),
            degraded: p.degraded.normalized(),
        };
        // Forensic tails are diagnostics: their wall_us fields are
        // wall-clock and their presence depends on the recorder
        // setting, so normalization drops them entirely — a normalized
        // report is byte-identical with the recorder on or off.
        let mut degraded_slots = self.degraded_slots.clone();
        for slot in degraded_slots.values_mut() {
            slot.flight = Vec::new();
        }
        Self {
            wall_time_us: 0,
            frames_copied: 0,
            tlb_hits: 0,
            tlb_misses: 0,
            chunks_privatized: 0,
            tlb_fill_conflicts: 0,
            latency: LatencyBreakdown {
                boot: norm_phase(&self.latency.boot),
                inject: norm_phase(&self.latency.inject),
                monitor: norm_phase(&self.latency.monitor),
            },
            degraded_slots,
            ..self.clone()
        }
    }

    /// Merges two reports (e.g. of two shards). Associative and
    /// commutative; quantiles are summarized per input, so merged
    /// quantiles take the max (exact after `normalized`, which zeroes
    /// them anyway).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let merge_summary = |a: HistogramSummary, b: HistogramSummary| HistogramSummary {
            count: a.count + b.count,
            p50_us: a.p50_us.max(b.p50_us),
            p95_us: a.p95_us.max(b.p95_us),
            max_us: a.max_us.max(b.max_us),
        };
        let merge_phase = |a: &PhaseLatency, b: &PhaseLatency| PhaseLatency {
            completed: merge_summary(a.completed, b.completed),
            degraded: merge_summary(a.degraded, b.degraded),
        };
        let mut by_key = self.by_key.clone();
        for (key, summary) in &other.by_key {
            by_key.entry(key.clone()).or_default().absorb(summary);
        }
        let mut degraded_slots = self.degraded_slots.clone();
        degraded_slots.extend(other.degraded_slots.iter().map(|(k, v)| (*k, v.clone())));
        Self {
            cells: self.cells + other.cells,
            completed: self.completed + other.completed,
            degraded: self.degraded + other.degraded,
            erroneous_states: self.erroneous_states + other.erroneous_states,
            violated_cells: self.violated_cells + other.violated_cells,
            violations: self.violations + other.violations,
            handled: self.handled + other.handled,
            boot_failed: self.boot_failed + other.boot_failed,
            crashed: self.crashed + other.crashed,
            timed_out: self.timed_out + other.timed_out,
            retries: self.retries + other.retries,
            hypercalls: self.hypercalls + other.hypercalls,
            wall_time_us: self.wall_time_us + other.wall_time_us,
            frames_copied: self.frames_copied + other.frames_copied,
            tlb_hits: self.tlb_hits + other.tlb_hits,
            tlb_misses: self.tlb_misses + other.tlb_misses,
            chunks_privatized: self.chunks_privatized + other.chunks_privatized,
            tlb_fill_conflicts: self.tlb_fill_conflicts + other.tlb_fill_conflicts,
            latency: LatencyBreakdown {
                boot: merge_phase(&self.latency.boot, &other.latency.boot),
                inject: merge_phase(&self.latency.inject, &other.latency.inject),
                monitor: merge_phase(&self.latency.monitor, &other.latency.monitor),
            },
            by_key,
            degraded_slots,
            grid: if self.grid.is_empty() { other.grid.clone() } else { self.grid.clone() },
            coverage: canonical_coverage(
                self.coverage.iter().chain(&other.coverage).copied().collect(),
            ),
        }
    }

    /// [`StreamReport::merge`], but refusing to merge reports that
    /// cannot legitimately be summed: different campaign grids, or
    /// shards that cover a common slot (which would silently
    /// double-count every shared cell). A default (never-run) report is
    /// the merge identity and is always accepted, so folds can start
    /// from `StreamReport::default()`.
    ///
    /// # Errors
    ///
    /// [`MergeError`] on a grid mismatch or shard overlap.
    pub fn try_merge(&self, other: &Self) -> Result<Self, MergeError> {
        if self.cells == 0 && self.grid.is_empty() && self.coverage.is_empty() {
            return Ok(other.clone());
        }
        if other.cells == 0 && other.grid.is_empty() && other.coverage.is_empty() {
            return Ok(self.clone());
        }
        if self.grid != other.grid {
            return Err(MergeError::GridMismatch {
                left: self.grid.to_string(),
                right: other.grid.to_string(),
            });
        }
        for &a in &self.coverage {
            for &b in &other.coverage {
                if shards_overlap(a, b) {
                    return Err(MergeError::Overlap { left: a, right: b });
                }
            }
        }
        Ok(self.merge(other))
    }

    /// `true` when any cell degraded — CLI exit code 2.
    pub fn is_degraded(&self) -> bool {
        self.degraded > 0
    }

    /// `true` when any cell observed a violation — CLI exit code 1.
    pub fn has_violations(&self) -> bool {
        self.violated_cells > 0
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report serialized by [`StreamReport::to_json`].
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the per-key summary table (the streaming analogue of the
    /// Table III view — per-cell detail is not retained).
    pub fn render_keys(&self) -> String {
        let mut table = TextTable::new([
            "use case / version / mode",
            "cells",
            "err. state",
            "violated",
            "handled",
            "degraded",
        ])
        .title("streamed campaign summary (aggregates per grid key)");
        for (key, s) in &self.by_key {
            table.row([
                key.clone(),
                s.cells.to_string(),
                s.erroneous_states.to_string(),
                s.violated.to_string(),
                s.handled.to_string(),
                s.degraded.to_string(),
            ]);
        }
        table.to_string()
    }
}

/// Run-shape measurements of one streaming execution. Deliberately kept
/// outside [`StreamReport`]: all of this is schedule- and wall-clock
/// dependent, and determinism diffs compare reports only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamRunStats {
    /// Worker threads used.
    pub workers: u64,
    /// Bounded queue capacity.
    pub queue_depth: u64,
    /// End-to-end elapsed time, µs.
    pub elapsed_us: u64,
    /// Completed cells per second of elapsed time.
    pub cells_per_sec: f64,
    /// Peak number of cells resident (queued or being folded) at once —
    /// bounded by queue depth + workers + 1, never O(cells).
    pub peak_resident_cells: u64,
    /// Time the generator spent blocked on a full queue, µs.
    pub queue_stall_us: u64,
    /// Time workers spent blocked on an empty queue, µs.
    pub worker_stall_us: u64,
    /// Time spent merging per-worker partial reports, µs.
    pub merge_us: u64,
    /// Time spent waiting on the shared base-world map (cold misses
    /// only; per-worker caches make steady state lock-free), µs.
    pub base_world_wait_us: u64,
}

/// What a streaming run returns: the mergeable report plus the
/// run-shape stats.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamOutcome {
    /// The deterministic, mergeable assessment report.
    pub report: StreamReport,
    /// Schedule-dependent measurements of this particular run.
    pub stats: StreamRunStats,
}

/// One machine-readable benchmark record of a streamed run, as written
/// to the `stream` array of `BENCH_campaign.json`: which grid was
/// streamed, how big it was, and the run-shape stats.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamBench {
    /// What was streamed (e.g. `table3` or `synthetic_100k`).
    pub grid: String,
    /// Cells in this run's (shard of the) grid.
    pub cells: u64,
    /// Cells that completed cleanly.
    pub completed: u64,
    /// Cells on which the harness degraded.
    pub degraded: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Bounded queue capacity.
    pub queue_depth: u64,
    /// End-to-end elapsed time, µs.
    pub elapsed_us: u64,
    /// Completed cells per second of elapsed time.
    pub cells_per_sec: f64,
    /// Peak cells resident in the pipeline at once.
    pub peak_resident_cells: u64,
    /// Generator stall on a full queue, µs.
    pub queue_stall_us: u64,
    /// Worker stall on an empty queue, µs.
    pub worker_stall_us: u64,
    /// Partial-report merge time, µs.
    pub merge_us: u64,
    /// Cold-miss wait on the shared base-world map, µs.
    pub base_world_wait_us: u64,
}

impl StreamOutcome {
    /// The benchmark record for this run, labelled `grid`.
    pub fn bench_entry(&self, grid: impl Into<String>) -> StreamBench {
        let s = self.stats;
        StreamBench {
            grid: grid.into(),
            cells: self.report.cells,
            completed: self.report.completed,
            degraded: self.report.degraded,
            workers: s.workers,
            queue_depth: s.queue_depth,
            elapsed_us: s.elapsed_us,
            cells_per_sec: s.cells_per_sec,
            peak_resident_cells: s.peak_resident_cells,
            queue_stall_us: s.queue_stall_us,
            worker_stall_us: s.worker_stall_us,
            merge_us: s.merge_us,
            base_world_wait_us: s.base_world_wait_us,
        }
    }
}

/// Per-worker raw fold state: full histograms (not summaries) so the
/// final merge is exact, plus the worker's first slot so partial folds
/// merge in a deterministic order.
///
/// Serializable because checkpointing persists each worker's cumulative
/// fold — the round trip is lossless, so a resumed campaign folds the
/// recovered state exactly as if the cells had just run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct PartialFold {
    first_slot: Option<u64>,
    report: StreamReport,
    phases: PhaseHistograms,
}

/// The six per-phase histograms (completed/degraded × boot/inject/
/// monitor) accumulated in full resolution during a streaming run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct PhaseHistograms {
    pub(crate) boot_completed: Histogram,
    pub(crate) boot_degraded: Histogram,
    pub(crate) inject_completed: Histogram,
    pub(crate) inject_degraded: Histogram,
    pub(crate) monitor_completed: Histogram,
    pub(crate) monitor_degraded: Histogram,
}

impl PhaseHistograms {
    fn merge(&mut self, other: &PhaseHistograms) {
        self.boot_completed.merge(&other.boot_completed);
        self.boot_degraded.merge(&other.boot_degraded);
        self.inject_completed.merge(&other.inject_completed);
        self.inject_degraded.merge(&other.inject_degraded);
        self.monitor_completed.merge(&other.monitor_completed);
        self.monitor_degraded.merge(&other.monitor_degraded);
    }

    fn breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            boot: PhaseLatency {
                completed: self.boot_completed.summary(),
                degraded: self.boot_degraded.summary(),
            },
            inject: PhaseLatency {
                completed: self.inject_completed.summary(),
                degraded: self.inject_degraded.summary(),
            },
            monitor: PhaseLatency {
                completed: self.monitor_completed.summary(),
                degraded: self.monitor_degraded.summary(),
            },
        }
    }

    /// Named histograms in registry naming, for the metrics fold.
    pub(crate) fn named(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("campaign.boot_us.completed", &self.boot_completed),
            ("campaign.boot_us.degraded", &self.boot_degraded),
            ("campaign.inject_us.completed", &self.inject_completed),
            ("campaign.inject_us.degraded", &self.inject_degraded),
            ("campaign.monitor_us.completed", &self.monitor_completed),
            ("campaign.monitor_us.degraded", &self.monitor_degraded),
        ]
    }
}

impl PartialFold {
    /// Folds one finished cell into this worker's partial report; the
    /// cell is dropped afterwards.
    pub(crate) fn fold(&mut self, spec: &CellSpec, cell: &CellResult) {
        if self.first_slot.is_none() {
            self.first_slot = Some(spec.slot);
        }
        let r = &mut self.report;
        let degraded = cell.degraded();
        r.cells += 1;
        if degraded {
            r.degraded += 1;
            r.degraded_slots.insert(
                spec.slot,
                DegradedSlot {
                    use_case: cell.use_case.clone(),
                    version: cell.version,
                    mode: cell.mode,
                    trial: spec.trial,
                    outcome: cell.outcome.clone(),
                    error: cell.error.clone(),
                    flight: cell.flight.clone(),
                },
            );
        } else {
            r.completed += 1;
        }
        if cell.erroneous_state {
            r.erroneous_states += 1;
        }
        if cell.violated() {
            r.violated_cells += 1;
        }
        r.violations += cell.violations.len() as u64;
        if cell.handled {
            r.handled += 1;
        }
        match &cell.outcome {
            CellOutcome::BootFailed => r.boot_failed += 1,
            CellOutcome::Crashed { .. } => r.crashed += 1,
            CellOutcome::TimedOut { .. } => r.timed_out += 1,
            CellOutcome::Completed => {}
        }
        r.retries += u64::from(cell.attempts.saturating_sub(1));
        r.hypercalls += cell.hypercalls;
        r.wall_time_us += cell.wall_time_us;
        r.frames_copied += cell.snapshot.frames_copied;
        r.tlb_hits += cell.tlb.hits;
        r.tlb_misses += cell.tlb.misses;
        r.chunks_privatized += cell.snapshot.chunks_privatized;
        r.tlb_fill_conflicts += cell.tlb.fill_conflicts;
        let key = format!("{}/{}/{}", cell.use_case, cell.version, cell.mode);
        let summary = r.by_key.entry(key).or_default();
        summary.cells += 1;
        if degraded {
            summary.degraded += 1;
        } else {
            summary.completed += 1;
        }
        if cell.erroneous_state {
            summary.erroneous_states += 1;
        }
        if cell.violated() {
            summary.violated += 1;
        }
        if cell.handled {
            summary.handled += 1;
        }
        summary.hypercalls += cell.hypercalls;
        let (boot, inject, monitor) = if degraded {
            (&mut self.phases.boot_degraded, &mut self.phases.inject_degraded, &mut self.phases.monitor_degraded)
        } else {
            (&mut self.phases.boot_completed, &mut self.phases.inject_completed, &mut self.phases.monitor_completed)
        };
        if let Some(v) = cell.phase_us.boot_us {
            boot.record(v);
        }
        if let Some(v) = cell.phase_us.inject_us {
            inject.record(v);
        }
        if let Some(v) = cell.phase_us.monitor_us {
            monitor.record(v);
        }
    }

    /// The first slot this fold saw (for deterministic merge ordering).
    pub(crate) fn first_slot(&self) -> Option<u64> {
        self.first_slot
    }

    /// Absorbs another fold (all aggregates commute; ordering is only
    /// for reproducibility of intermediate states).
    pub(crate) fn absorb(&mut self, other: &PartialFold) {
        if self.first_slot.is_none() {
            self.first_slot = other.first_slot;
        }
        self.report = self.report.merge(&other.report);
        self.phases.merge(&other.phases);
    }

    /// Finalizes into the report (with exact latency summaries) and the
    /// raw histograms for the metrics fold.
    pub(crate) fn finish(mut self) -> (StreamReport, PhaseHistograms) {
        self.report.latency = self.phases.breakdown();
        (self.report, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn grid() -> SpecGrid {
        SpecGrid::new(
            2,
            &[XenVersion::V4_6, XenVersion::V4_13],
            &[Mode::Exploit, Mode::Injection],
            3,
        )
    }

    #[test]
    fn grid_len_and_decode_round_trip() {
        let g = grid();
        assert_eq!(g.len(), 2 * 2 * 2 * 3);
        for (i, spec) in g.iter().enumerate() {
            assert_eq!(spec.slot, i as u64);
            assert_eq!(g.decode(spec.slot), Some(spec));
        }
        assert_eq!(g.decode(g.len()), None);
        // Slot order is use-case-major, trial fastest-varying.
        let first = g.decode(0).unwrap();
        assert_eq!((first.use_case, first.trial), (0, 0));
        let second = g.decode(1).unwrap();
        assert_eq!((second.use_case, second.trial), (0, 1));
        assert_eq!(second.version, first.version);
        let last = g.decode(g.len() - 1).unwrap();
        assert_eq!((last.use_case, last.trial), (1, 2));
    }

    #[test]
    fn trials_one_matches_classic_work_order() {
        let g = SpecGrid::new(2, &[XenVersion::V4_6, XenVersion::V4_8], &[Mode::Exploit, Mode::Injection], 1);
        let streamed: Vec<(usize, XenVersion, Mode)> =
            g.iter().map(|s| (s.use_case, s.version, s.mode)).collect();
        let mut classic = Vec::new();
        for uc in 0..2 {
            for &version in &[XenVersion::V4_6, XenVersion::V4_8] {
                for &mode in &[Mode::Exploit, Mode::Injection] {
                    classic.push((uc, version, mode));
                }
            }
        }
        assert_eq!(streamed, classic);
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        let g = grid();
        for n in [1u64, 2, 3, 5, 7] {
            let mut seen = Vec::new();
            let mut total = 0;
            for i in 0..n {
                let shard = Some(Shard::new(i, n).unwrap());
                let slots: Vec<u64> = g.shard_iter(shard).map(|s| s.slot).collect();
                assert_eq!(slots.len() as u64, g.shard_len(shard));
                total += slots.len();
                seen.extend(slots);
            }
            seen.sort_unstable();
            assert_eq!(total as u64, g.len(), "{n} shards must cover the grid");
            assert_eq!(seen, (0..g.len()).collect::<Vec<_>>(), "no overlap, no gap");
        }
    }

    #[test]
    fn shard_parse_and_validate() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("4/5").unwrap().to_string(), "4/5");
        assert!(Shard::parse("2/2").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert!(Shard::new(0, 0).is_err());
    }

    #[test]
    fn empty_grid() {
        let g = SpecGrid::new(0, &[XenVersion::V4_6], &[Mode::Exploit], 1);
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
        assert_eq!(g.shard_len(Some(Shard { index: 0, count: 2 })), 0);
    }

    #[test]
    fn bounded_queue_backpressure_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    q.push(i);
                }
                q.close();
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn resident_gauge_tracks_peak() {
        let g = ResidentGauge::default();
        g.enter();
        g.enter();
        g.exit();
        g.enter();
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn merge_is_associative_and_normalizes() {
        let mut fold_a = PartialFold::default();
        let mut fold_b = PartialFold::default();
        let g = grid();
        // Synthesize folds directly from specs (no worlds needed).
        for spec in g.iter() {
            let cell = CellResult {
                use_case: format!("uc{}", spec.use_case),
                abusive_functionality: "test".into(),
                version: spec.version,
                mode: spec.mode,
                erroneous_state: spec.trial % 2 == 0,
                violations: Vec::new(),
                handled: spec.trial % 2 == 0,
                notes: Vec::new(),
                error: None,
                outcome: CellOutcome::Completed,
                attempts: 1,
                wall_time_us: 10 + spec.slot,
                hypercalls: 3,
                phase_us: crate::campaign::PhaseTimings {
                    boot_us: Some(1),
                    inject_us: Some(2),
                    monitor_us: Some(3),
                },
                snapshot: hvsim::SnapshotStats::default(),
                tlb: hvsim::TlbStats::default(),
                flight: Vec::new(),
            };
            if spec.slot % 2 == 0 {
                fold_a.fold(&spec, &cell);
            } else {
                fold_b.fold(&spec, &cell);
            }
        }
        let (a, _) = {
            let mut whole = PartialFold::default();
            whole.absorb(&fold_a);
            whole.absorb(&fold_b);
            whole.finish()
        };
        let (ra, _) = fold_a.finish();
        let (rb, _) = fold_b.finish();
        assert_eq!(ra.merge(&rb).normalized(), a.normalized());
        assert_eq!(rb.merge(&ra).normalized(), a.normalized(), "merge commutes");
        assert_eq!(a.cells, g.len());
        assert_eq!(a.hypercalls, 3 * g.len());
        let json = a.normalized().to_json().unwrap();
        assert_eq!(StreamReport::from_json(&json).unwrap(), a.normalized());
    }

    #[test]
    fn degraded_cells_are_retained_by_slot() {
        let g = grid();
        let spec = g.decode(5).unwrap();
        let cell = CellResult {
            use_case: "uc".into(),
            abusive_functionality: "test".into(),
            version: spec.version,
            mode: spec.mode,
            erroneous_state: false,
            violations: Vec::new(),
            handled: false,
            notes: Vec::new(),
            error: Some(CampaignError::Boot { message: "-ENOMEM".into(), attempts: 2 }),
            outcome: CellOutcome::BootFailed,
            attempts: 2,
            wall_time_us: 5,
            hypercalls: 0,
            phase_us: crate::campaign::PhaseTimings::default(),
            snapshot: hvsim::SnapshotStats::default(),
            tlb: hvsim::TlbStats::default(),
            flight: vec![FlightEvent {
                slot: 5,
                seq: 0,
                path: "cell/degraded".into(),
                wall_us: 7,
                detail: "boot failed".into(),
            }],
        };
        let mut fold = PartialFold::default();
        fold.fold(&spec, &cell);
        let (report, _) = fold.finish();
        assert!(report.is_degraded());
        assert_eq!(report.retries, 1);
        assert_eq!(report.boot_failed, 1);
        let slot = report.degraded_slots.get(&5).unwrap();
        assert_eq!(slot.outcome, CellOutcome::BootFailed);
        assert_eq!(slot.trial, spec.trial);
        assert_eq!(slot.flight.len(), 1, "the forensic tail rides along in the fold");
        assert!(report.render_keys().contains("uc/"));
        // Normalization drops the tail so recorder-on and recorder-off
        // reports are byte-identical.
        let norm = report.normalized();
        assert!(norm.degraded_slots.get(&5).unwrap().flight.is_empty());
    }
}
