//! Durable checkpoint journal for streaming campaigns: an append-only,
//! fsync'd record of which slots have been folded, so a SIGKILL'd (or
//! OOM-killed, or preempted) shard can resume and produce a merged
//! [`StreamReport`](crate::StreamReport) byte-identical to an
//! uninterrupted run.
//!
//! # Record format
//!
//! One record per line, length-prefixed and checksummed:
//!
//! ```text
//! {len} {fnv1a64:016x} {payload}\n
//! ```
//!
//! where `len` is the payload's byte length in decimal, the checksum is
//! FNV-1a over the payload bytes, and the payload is one canonical
//! `hvsim-obs` JSONL trace event (the same codec `trace validate`
//! enforces). Three record kinds, distinguished by the event path:
//!
//! | path             | file               | meaning                   |
//! |------------------|--------------------|---------------------------|
//! | `journal/header` | both               | grid fingerprint + shard; first record, synced in the journal |
//! | `journal/slot`   | `<journal>.slots`  | one folded slot + digest; buffered, never synced |
//! | `journal/fold`   | journal            | a worker's cumulative fold + the batch of slots it covers since that worker's previous fold; fsync'd |
//!
//! Only `journal/fold` records drive recovery: the done-set is the
//! union of their slot batches, and each worker's last fold record is
//! its exact cumulative state — fsync ordering guarantees a fold record
//! is durable before any slot it covers is considered done. `slot`
//! records are forensic detail (which cells ran, in what order, with
//! what digest); they live in the `<journal>.slots` sidecar precisely
//! because `fsync` is a whole-file operation — at ~150 bytes per cell
//! they would otherwise ride along on every fold sync and dominate the
//! journal's durability cost. The sidecar is never synced and never
//! read by recovery; losing it loses postmortem detail only. Because
//! even unsynced per-cell writes cost measurable throughput on slow or
//! contended storage, the sidecar is opt-in
//! ([`CampaignConfig::journal_slots`](crate::CampaignConfig::journal_slots),
//! `--journal-slots` on the CLI); by default a checkpointed run writes
//! folds only.
//!
//! # Crash model
//!
//! A crash can tear the final record (partial write, no trailing
//! newline, bad checksum). Recovery scans from the start and stops at
//! the **first** invalid record, truncating the journal there before
//! appending — the torn-tail policy. Everything before the cut is
//! internally consistent by construction; everything after it is
//! conservatively re-run. Re-running a slot is always safe: every cell
//! is a pure function of its [`CellSpec`](crate::CellSpec), and every
//! report aggregate is a commutative monoid, so "at least the recorded
//! slots are done" is exactly the invariant resume needs.

use crate::error::CheckpointError;
use crate::stream::{GridFingerprint, PartialFold, Shard};
use hvsim_obs::{encode_event, parse_line, EventKind, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// FNV-1a 64-bit: the journal's checksum and the slot digest hash.
/// Deliberately simple — the journal defends against torn writes, not
/// adversarial corruption.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Where journal bytes go. The production implementation is
/// [`FileSink`]; chaos testing substitutes a sink that tears writes,
/// which is why this is a trait and not a `File`.
pub trait JournalSink: Send {
    /// Appends bytes (one framed record) to the journal.
    ///
    /// # Errors
    ///
    /// The underlying I/O failure; the writer degrades to a no-op
    /// rather than failing the campaign.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Makes previously appended bytes durable (fsync or equivalent).
    ///
    /// # Errors
    ///
    /// The underlying I/O failure.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// The production sink: a plain append-mode file, `sync_data` on
/// [`JournalSink::sync`].
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Wraps an already positioned file handle.
    pub fn new(file: File) -> Self {
        Self { file }
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// The journal's identity record: which campaign grid (and shard) the
/// journal belongs to. Resume refuses any mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Fingerprint of the campaign grid.
    pub grid: GridFingerprint,
    /// The shard the journal's run covered (`None` = whole grid).
    pub shard: Option<Shard>,
}

impl JournalHeader {
    /// Renders `grid` + shard for mismatch diagnostics.
    pub(crate) fn render(grid: &GridFingerprint, shard: Option<Shard>) -> String {
        match shard {
            Some(s) => format!("{grid}, shard {s}"),
            None => format!("{grid}, unsharded"),
        }
    }
}

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum JournalRecord {
    /// First record of every journal.
    Header {
        grid: GridFingerprint,
        shard: Option<Shard>,
    },
    /// One slot folded by `worker` — buffered diagnostics.
    SlotDone {
        worker: u64,
        seq: u64,
        slot: u64,
        digest: u64,
    },
    /// `worker`'s cumulative fold, covering `slots` since its previous
    /// fold record — the durable unit of recovery.
    Fold {
        worker: u64,
        seq: u64,
        slots: Vec<u64>,
        fold: Box<PartialFold>,
    },
}

fn attr<'a>(event: &'a TraceEvent, key: &str) -> Result<&'a str, String> {
    event
        .attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("record is missing attr \"{key}\""))
}

impl JournalRecord {
    /// Encodes this record as one framed journal line (with trailing
    /// newline).
    ///
    /// # Errors
    ///
    /// Serializer failures (unreachable for this data model).
    pub(crate) fn encode(&self) -> Result<String, String> {
        let event = match self {
            JournalRecord::Header { grid, shard } => TraceEvent {
                shard: 0,
                seq: 0,
                kind: EventKind::Point,
                path: "journal/header".to_owned(),
                wall_us: 0,
                attrs: vec![
                    (
                        "grid".to_owned(),
                        serde_json::to_string(grid).map_err(|e| e.to_string())?,
                    ),
                    (
                        "shard".to_owned(),
                        shard.map_or_else(|| "-".to_owned(), |s| s.to_string()),
                    ),
                ],
            },
            JournalRecord::SlotDone { worker, seq, slot, digest } => TraceEvent {
                shard: *worker,
                seq: *seq,
                kind: EventKind::Point,
                path: "journal/slot".to_owned(),
                wall_us: 0,
                attrs: vec![
                    ("slot".to_owned(), slot.to_string()),
                    ("digest".to_owned(), format!("{digest:016x}")),
                ],
            },
            JournalRecord::Fold { worker, seq, slots, fold } => {
                let mut joined = String::new();
                for (i, slot) in slots.iter().enumerate() {
                    if i > 0 {
                        joined.push(',');
                    }
                    let _ = write!(joined, "{slot}");
                }
                TraceEvent {
                    shard: *worker,
                    seq: *seq,
                    kind: EventKind::Point,
                    path: "journal/fold".to_owned(),
                    wall_us: 0,
                    attrs: vec![
                        ("slots".to_owned(), joined),
                        (
                            "fold".to_owned(),
                            serde_json::to_string(fold.as_ref()).map_err(|e| e.to_string())?,
                        ),
                    ],
                }
            }
        };
        let payload = encode_event(&event);
        Ok(format!("{} {:016x} {payload}\n", payload.len(), fnv64(payload.as_bytes())))
    }

    /// Decodes one journal line (without its trailing newline),
    /// verifying framing, checksum, codec, and record schema.
    pub(crate) fn decode(line: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_owned())?;
        let (len_text, rest) =
            text.split_once(' ').ok_or_else(|| "missing length prefix".to_owned())?;
        let (sum_text, payload) =
            rest.split_once(' ').ok_or_else(|| "missing checksum".to_owned())?;
        let len: usize =
            len_text.parse().map_err(|_| format!("bad length prefix '{len_text}'"))?;
        let sum = u64::from_str_radix(sum_text, 16)
            .map_err(|_| format!("bad checksum '{sum_text}'"))?;
        if payload.len() != len {
            return Err(format!("length mismatch: prefix {len}, payload {}", payload.len()));
        }
        if fnv64(payload.as_bytes()) != sum {
            return Err("checksum mismatch".to_owned());
        }
        let event = parse_line(payload).map_err(|e| e.to_string())?;
        match event.path.as_str() {
            "journal/header" => {
                let grid: GridFingerprint = serde_json::from_str(attr(&event, "grid")?)
                    .map_err(|e| format!("bad grid fingerprint: {e}"))?;
                let shard_text = attr(&event, "shard")?;
                let shard = if shard_text == "-" {
                    None
                } else {
                    Some(Shard::parse(shard_text).map_err(|e| format!("bad shard: {e}"))?)
                };
                Ok(JournalRecord::Header { grid, shard })
            }
            "journal/slot" => {
                let slot: u64 = attr(&event, "slot")?
                    .parse()
                    .map_err(|_| "bad slot number".to_owned())?;
                let digest = u64::from_str_radix(attr(&event, "digest")?, 16)
                    .map_err(|_| "bad slot digest".to_owned())?;
                Ok(JournalRecord::SlotDone { worker: event.shard, seq: event.seq, slot, digest })
            }
            "journal/fold" => {
                let slots_text = attr(&event, "slots")?;
                let mut slots = Vec::new();
                if !slots_text.is_empty() {
                    for part in slots_text.split(',') {
                        slots.push(
                            part.parse().map_err(|_| format!("bad slot '{part}' in batch"))?,
                        );
                    }
                }
                let fold: PartialFold = serde_json::from_str(attr(&event, "fold")?)
                    .map_err(|e| format!("bad fold snapshot: {e}"))?;
                Ok(JournalRecord::Fold {
                    worker: event.shard,
                    seq: event.seq,
                    slots,
                    fold: Box::new(fold),
                })
            }
            other => Err(format!("unknown journal record path \"{other}\"")),
        }
    }
}

/// Everything recovery extracts from a journal file, tolerating a torn
/// tail: the header, each worker's last durable fold, the union of
/// folded slots, and the byte offset of the first invalid record (where
/// resume truncates before appending).
pub(crate) struct JournalState {
    pub(crate) header: JournalHeader,
    /// Each worker's last valid cumulative fold, keyed by worker id.
    pub(crate) folds: BTreeMap<u64, PartialFold>,
    /// Every slot covered by a valid fold record.
    pub(crate) done: BTreeSet<u64>,
    /// One past the highest worker id seen (resume generations continue
    /// from here so journal lines stay attributable).
    pub(crate) next_worker: u64,
    /// Length of the valid prefix, in bytes.
    pub(crate) valid_bytes: u64,
}

impl JournalState {
    /// Loads and validates a journal, stopping at the first invalid
    /// record (the torn-tail policy — a short tail is expected after a
    /// crash, never an error).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read;
    /// [`CheckpointError::Header`] when the leading header record is
    /// missing or malformed (the file was never a journal).
    pub(crate) fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let mut offset = 0usize;
        let mut header: Option<JournalHeader> = None;
        let mut folds: BTreeMap<u64, PartialFold> = BTreeMap::new();
        let mut done: BTreeSet<u64> = BTreeSet::new();
        let mut next_worker = 1u64;
        while let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') {
            let record = match JournalRecord::decode(&bytes[offset..offset + nl]) {
                Ok(record) => record,
                Err(message) => {
                    if header.is_none() {
                        return Err(CheckpointError::Header {
                            path: path.display().to_string(),
                            message,
                        });
                    }
                    break; // Torn tail: keep the valid prefix.
                }
            };
            match record {
                JournalRecord::Header { grid, shard } => {
                    if header.is_some() {
                        break; // A second header is not ours; treat as torn.
                    }
                    header = Some(JournalHeader { grid, shard });
                }
                _ if header.is_none() => {
                    return Err(CheckpointError::Header {
                        path: path.display().to_string(),
                        message: "first record is not a journal header".to_owned(),
                    });
                }
                JournalRecord::SlotDone { worker, .. } => {
                    next_worker = next_worker.max(worker + 1);
                }
                JournalRecord::Fold { worker, slots, fold, .. } => {
                    next_worker = next_worker.max(worker + 1);
                    done.extend(slots);
                    folds.insert(worker, *fold);
                }
            }
            offset += nl + 1;
        }
        let header = header.ok_or_else(|| CheckpointError::Header {
            path: path.display().to_string(),
            message: "journal is empty".to_owned(),
        })?;
        Ok(Self { header, folds, done, next_worker, valid_bytes: offset as u64 })
    }
}

/// The forensic slot-record sidecar that rides next to a journal:
/// `<journal>.slots` (extension appended, not replaced, so distinct
/// journals never collide).
pub(crate) fn sidecar_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".slots");
    std::path::PathBuf::from(os)
}

/// Reads just the identity of a checkpoint journal — what the CLI
/// `campaign resume` uses to configure the campaign (trials, shard)
/// before the full resume validates the complete fingerprint.
///
/// # Errors
///
/// [`CheckpointError`] when the file is unreadable or is not a journal.
pub fn read_header(path: &Path) -> Result<JournalHeader, CheckpointError> {
    Ok(JournalState::load(path)?.header)
}

/// Counter snapshot of a journal writer, for the
/// `campaign.checkpoint.*` metrics fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct CheckpointCounters {
    pub(crate) slots: u64,
    pub(crate) folds: u64,
    pub(crate) syncs: u64,
    pub(crate) bytes: u64,
    pub(crate) write_errors: u64,
}

/// Thread-safe journal writer: the fsync'd recovery journal plus the
/// optional never-synced slot sidecar. **Fail-soft**: the first I/O
/// error on either file disables that file for the rest of the run
/// (counted in `write_errors`) — a broken journal must degrade
/// durability, never the campaign itself — and the two latches are
/// independent, so a full forensics disk cannot stop checkpointing.
pub(crate) struct CheckpointWriter {
    sink: Mutex<Box<dyn JournalSink>>,
    /// The `<journal>.slots` sidecar (`None` when it could not be
    /// opened — forensics are best-effort by design).
    slot_sink: Mutex<Option<Box<dyn JournalSink>>>,
    failed: AtomicBool,
    slots_failed: AtomicBool,
    slots: AtomicU64,
    folds: AtomicU64,
    syncs: AtomicU64,
    bytes: AtomicU64,
    write_errors: AtomicU64,
}

impl CheckpointWriter {
    fn new(sink: Box<dyn JournalSink>, slot_sink: Option<Box<dyn JournalSink>>) -> Self {
        Self {
            sink: Mutex::new(sink),
            slots_failed: AtomicBool::new(slot_sink.is_none()),
            slot_sink: Mutex::new(slot_sink),
            failed: AtomicBool::new(false),
            slots: AtomicU64::new(0),
            folds: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// `true` while the slot sidecar accepts records — callers skip the
    /// encoding work once its fail-soft latch has tripped.
    fn slot_recording(&self) -> bool {
        !self.slots_failed.load(Ordering::Relaxed)
    }

    fn trip(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        self.failed.store(true, Ordering::Relaxed);
    }

    /// Flushes a worker's buffered slot lines to the sidecar (never
    /// synced — an fsync on the journal would otherwise flush every
    /// forensic byte too, and at ~150 bytes/cell that dwarfs the folds)
    /// and appends one fold record to the journal, synced. This is the
    /// *only* steady-state write path: slot records cost a buffer push
    /// on the hot path and hit a sink once per fold interval. Errors
    /// trip the per-file fail-soft latch instead of propagating.
    fn append_batch(&self, slot_lines: &str, slot_count: u64, fold: &JournalRecord) {
        if !slot_lines.is_empty() && self.slot_recording() {
            let mut guard = self.slot_sink.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(sink) = guard.as_mut() {
                if sink.append(slot_lines.as_bytes()).is_ok() {
                    self.bytes.fetch_add(slot_lines.len() as u64, Ordering::Relaxed);
                    self.slots.fetch_add(slot_count, Ordering::Relaxed);
                } else {
                    self.write_errors.fetch_add(1, Ordering::Relaxed);
                    self.slots_failed.store(true, Ordering::Relaxed);
                }
            }
        }
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let line = match fold.encode() {
            Ok(line) => line,
            Err(_) => {
                self.trip();
                return;
            }
        };
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(_e) = sink.append(line.as_bytes()) {
            self.trip();
            return;
        }
        self.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        self.folds.fetch_add(1, Ordering::Relaxed);
        if let Err(_e) = sink.sync() {
            self.trip();
            return;
        }
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn counters(&self) -> CheckpointCounters {
        CheckpointCounters {
            slots: self.slots.load(Ordering::Relaxed),
            folds: self.folds.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Sink transformer hook: the identity for production runs, a
/// torn-write chaos wrapper under `ChaosConfig`.
pub(crate) type SinkWrap<'a> = &'a dyn Fn(Box<dyn JournalSink>) -> Box<dyn JournalSink>;

/// A worker's local slot-record buffer: framed `journal/slot` lines
/// accumulated between fold records, plus a scratch string so the hot
/// path allocates nothing in steady state. Slot records are the
/// journal's per-cell cost, so they get a hand-rolled encoder (pinned
/// byte-for-byte to [`JournalRecord::encode`] by a unit test) instead
/// of the general `TraceEvent` path.
#[derive(Default)]
pub(crate) struct SlotBuffer {
    lines: String,
    scratch: String,
}

impl SlotBuffer {
    /// Appends one framed `journal/slot` line without allocating.
    fn push_slot(&mut self, worker: u64, seq: u64, slot: u64, digest: u64) {
        self.scratch.clear();
        let _ = write!(
            self.scratch,
            "{{\"shard\":{worker},\"seq\":{seq},\"kind\":\"point\",\
             \"path\":\"journal/slot\",\"wall_us\":0,\
             \"attrs\":{{\"slot\":\"{slot}\",\"digest\":\"{digest:016x}\"}}}}"
        );
        let _ = write!(
            self.lines,
            "{} {:016x} ",
            self.scratch.len(),
            fnv64(self.scratch.as_bytes())
        );
        self.lines.push_str(&self.scratch);
        self.lines.push('\n');
    }
}

/// One campaign run's attachment to a journal: the writer plus the
/// recovered state a resumed run starts from (empty for a fresh run).
pub(crate) struct CheckpointSession {
    pub(crate) writer: CheckpointWriter,
    /// Slots already covered by durable fold records — the generator
    /// skips these.
    pub(crate) done: BTreeSet<u64>,
    /// Each prior worker's last cumulative fold, merged into the final
    /// report exactly as if those cells had just run.
    pub(crate) recovered: Vec<PartialFold>,
    /// First worker id for this run's workers (continues past prior
    /// generations so journal lines stay attributable).
    pub(crate) first_worker: u64,
    /// Slots between fold records, per worker.
    pub(crate) interval: u64,
}

impl CheckpointSession {
    /// Starts a fresh journal at `path` (truncating any existing file)
    /// and makes the header durable before any cell runs.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the journal cannot be created or
    /// its header cannot be written — a checkpointed campaign refuses
    /// to start without a durable journal.
    pub(crate) fn create(
        path: &Path,
        grid: GridFingerprint,
        shard: Option<Shard>,
        interval: u64,
        slots: bool,
        wrap: SinkWrap<'_>,
    ) -> Result<Self, CheckpointError> {
        let io_err = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let file = File::create(path).map_err(io_err)?;
        let mut sink = wrap(Box::new(FileSink::new(file)));
        let header = JournalRecord::Header { grid, shard };
        let line = header.encode().map_err(|message| CheckpointError::Io {
            path: path.display().to_string(),
            message,
        })?;
        sink.append(line.as_bytes()).map_err(io_err)?;
        sink.sync().map_err(io_err)?;
        // The forensic sidecar is opt-in and best-effort: when enabled
        // it opens fresh alongside the journal and gets the same header
        // (unsynced) so the pair stays self-identifying, but failure to
        // open it degrades forensics, never checkpointing.
        let slot_sink = slots
            .then(|| File::create(sidecar_path(path)).ok())
            .flatten()
            .map(|f| {
                let mut s: Box<dyn JournalSink> = Box::new(FileSink::new(f));
                let _ = s.append(line.as_bytes());
                s
            });
        let writer = CheckpointWriter::new(sink, slot_sink);
        writer.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        Ok(Self {
            writer,
            done: BTreeSet::new(),
            recovered: Vec::new(),
            first_worker: 1,
            interval: interval.max(1),
        })
    }

    /// Reopens a journal for resume: loads the valid prefix, verifies
    /// the grid/shard identity, truncates the torn tail, and positions
    /// the sink for appending.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the journal is unreadable, is not a
    /// journal, or belongs to a different campaign grid or shard.
    pub(crate) fn resume(
        path: &Path,
        grid: &GridFingerprint,
        shard: Option<Shard>,
        interval: u64,
        slots: bool,
        wrap: SinkWrap<'_>,
    ) -> Result<Self, CheckpointError> {
        let state = JournalState::load(path)?;
        if state.header.grid != *grid || state.header.shard != shard {
            return Err(CheckpointError::GridMismatch {
                journal: JournalHeader::render(&state.header.grid, state.header.shard),
                campaign: JournalHeader::render(grid, shard),
            });
        }
        let io_err = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
        file.set_len(state.valid_bytes).map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        let sink = wrap(Box::new(FileSink::new(file)));
        // When enabled, the sidecar appends across generations (a torn
        // line at a kill boundary garbles one forensic record, nothing
        // else), and its absence is not an error — forensics are
        // best-effort.
        let slot_sink = slots
            .then(|| {
                OpenOptions::new().append(true).create(true).open(sidecar_path(path)).ok()
            })
            .flatten()
            .map(|f| Box::new(FileSink::new(f)) as Box<dyn JournalSink>);
        Ok(Self {
            writer: CheckpointWriter::new(sink, slot_sink),
            done: state.done,
            recovered: state.folds.into_values().collect(),
            first_worker: state.next_worker,
            interval: interval.max(1),
        })
    }

    /// `true` when a durable fold record already covers this slot.
    pub(crate) fn is_done(&self, slot: u64) -> bool {
        self.done.contains(&slot)
    }

    /// Number of slots recovered from the journal (skipped on resume).
    pub(crate) fn resumed_slots(&self) -> u64 {
        self.done.len() as u64
    }

    /// Records one folded slot into the worker's local buffer — pure
    /// memory, no lock, no syscall. The buffer reaches the sink with
    /// the worker's next [`record_fold`](Self::record_fold); a crash
    /// before then loses only forensic detail, never durability.
    pub(crate) fn record_slot(
        &self,
        buf: &mut SlotBuffer,
        worker: u64,
        seq: u64,
        slot: u64,
        digest: u64,
    ) {
        if !self.writer.slot_recording() {
            return;
        }
        buf.push_slot(worker, seq, slot, digest);
    }

    /// Flushes the worker's buffered slot lines and records its
    /// cumulative fold covering `slots` since its previous fold record,
    /// then syncs — after this returns, those slots survive any crash.
    pub(crate) fn record_fold(
        &self,
        buf: &mut SlotBuffer,
        worker: u64,
        seq: u64,
        slots: Vec<u64>,
        fold: &PartialFold,
    ) {
        let slot_count = slots.len() as u64;
        self.writer.append_batch(
            &buf.lines,
            slot_count,
            &JournalRecord::Fold { worker, seq, slots, fold: Box::new(fold.clone()) },
        );
        buf.lines.clear();
    }
}

/// An [`std::fmt::Write`] adapter that FNV-1a-hashes whatever is
/// formatted into it — the slot digest's way of hashing a formatted
/// summary without allocating a `String` per cell.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// The slot digest recorded next to each `journal/slot` entry: a
/// schedule-independent hash of the cell's assessment-relevant outcome,
/// so two runs of the same slot can be compared forensically.
pub(crate) fn slot_digest(cell: &crate::campaign::CellResult) -> u64 {
    let mut hasher = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(
        hasher,
        "{}|{}|{}|{}|{}|{}",
        cell.use_case,
        cell.version,
        cell.mode,
        cell.erroneous_state,
        cell.violations.len(),
        cell.degraded(),
    );
    hasher.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Mode;
    use hvsim::XenVersion;

    fn fingerprint() -> GridFingerprint {
        GridFingerprint {
            use_cases: vec!["XSA-212-crash".into()],
            versions: vec![XenVersion::V4_6, XenVersion::V4_13],
            modes: vec![Mode::Injection],
            trials: 7,
        }
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let records = [
            JournalRecord::Header { grid: fingerprint(), shard: Some(Shard { index: 1, count: 4 }) },
            JournalRecord::Header { grid: fingerprint(), shard: None },
            JournalRecord::SlotDone { worker: 3, seq: 9, slot: 42, digest: 0xdead_beef },
            JournalRecord::Fold {
                worker: 2,
                seq: 4,
                slots: vec![1, 5, 9],
                fold: Box::new(PartialFold::default()),
            },
            JournalRecord::Fold { worker: 1, seq: 1, slots: vec![], fold: Box::default() },
        ];
        for record in records {
            let line = record.encode().unwrap();
            assert!(line.ends_with('\n'));
            let back = JournalRecord::decode(line.trim_end().as_bytes()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn slot_buffer_fast_path_matches_the_canonical_encoder() {
        let mut buf = SlotBuffer::default();
        let cases =
            [(1u64, 1u64, 0u64, 0u64), (7, 42, 99_999, 0xdead_beef), (u64::MAX, u64::MAX, u64::MAX, u64::MAX)];
        for (worker, seq, slot, digest) in cases {
            buf.lines.clear();
            buf.push_slot(worker, seq, slot, digest);
            let canonical = JournalRecord::SlotDone { worker, seq, slot, digest }
                .encode()
                .unwrap();
            assert_eq!(buf.lines, canonical, "hand-rolled slot line diverged from the codec");
        }
    }

    #[test]
    fn decode_rejects_torn_and_corrupt_frames() {
        let line = JournalRecord::SlotDone { worker: 1, seq: 1, slot: 7, digest: 1 }
            .encode()
            .unwrap();
        let whole = line.trim_end();
        // Torn: any strict prefix must fail (length or checksum).
        for cut in 1..whole.len() {
            assert!(JournalRecord::decode(&whole.as_bytes()[..cut]).is_err(), "cut at {cut}");
        }
        // Flipped payload byte: checksum catches it.
        let mut flipped = whole.as_bytes().to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(JournalRecord::decode(&flipped).is_err());
        assert!(JournalRecord::decode(b"not a record").is_err());
    }

    #[test]
    fn load_recovers_the_valid_prefix_of_a_torn_journal() {
        let dir = std::env::temp_dir().join(format!("hvsim-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let header = JournalRecord::Header { grid: fingerprint(), shard: None };
        let fold_a = JournalRecord::Fold {
            worker: 1,
            seq: 2,
            slots: vec![0, 2, 4],
            fold: Box::new(PartialFold::default()),
        };
        let fold_b = JournalRecord::Fold {
            worker: 2,
            seq: 2,
            slots: vec![1, 3],
            fold: Box::new(PartialFold::default()),
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(header.encode().unwrap().as_bytes());
        bytes.extend_from_slice(fold_a.encode().unwrap().as_bytes());
        let valid = bytes.len() as u64;
        // Torn tail: half of a valid record, no newline needed to trip.
        let torn = fold_b.encode().unwrap();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        bytes.push(b'\n');
        std::fs::write(&path, &bytes).unwrap();
        let state = JournalState::load(&path).unwrap();
        assert_eq!(state.valid_bytes, valid);
        assert_eq!(state.done, [0u64, 2, 4].into_iter().collect());
        assert_eq!(state.folds.len(), 1);
        assert_eq!(state.next_worker, 2);
        assert_eq!(state.header.shard, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_non_journals() {
        let dir = std::env::temp_dir().join(format!("hvsim-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a.journal");
        std::fs::write(&path, b"hello world\n").unwrap();
        assert!(matches!(
            JournalState::load(&path),
            Err(CheckpointError::Header { .. })
        ));
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            JournalState::load(&path),
            Err(CheckpointError::Header { .. })
        ));
        assert!(matches!(
            JournalState::load(&dir.join("missing.journal")),
            Err(CheckpointError::Io { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_refuses_a_different_grid_or_shard() {
        let dir = std::env::temp_dir().join(format!("hvsim-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.journal");
        let identity: SinkWrap<'_> = &|s| s;
        let session =
            CheckpointSession::create(&path, fingerprint(), None, 512, false, identity).unwrap();
        drop(session);
        let mut other = fingerprint();
        other.trials = 99;
        assert!(matches!(
            CheckpointSession::resume(&path, &other, None, 512, false, identity),
            Err(CheckpointError::GridMismatch { .. })
        ));
        assert!(matches!(
            CheckpointSession::resume(
                &path,
                &fingerprint(),
                Some(Shard { index: 0, count: 2 }),
                512,
                false,
                identity
            ),
            Err(CheckpointError::GridMismatch { .. })
        ));
        let ok =
            CheckpointSession::resume(&path, &fingerprint(), None, 512, false, identity).unwrap();
        assert_eq!(ok.resumed_slots(), 0);
        assert_eq!(ok.first_worker, 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(sidecar_path(&path)).ok();
    }

    #[test]
    fn writer_fails_soft_on_io_errors() {
        struct BrokenSink {
            appends: u64,
        }
        impl JournalSink for BrokenSink {
            fn append(&mut self, _bytes: &[u8]) -> std::io::Result<()> {
                self.appends += 1;
                Err(std::io::Error::other("disk on fire"))
            }
            fn sync(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let writer = CheckpointWriter::new(Box::new(BrokenSink { appends: 0 }), None);
        let fold =
            JournalRecord::Fold { worker: 1, seq: 1, slots: vec![0], fold: Box::default() };
        writer.append_batch("42 x line\n", 1, &fold);
        writer.append_batch("42 x line\n", 1, &fold);
        let counters = writer.counters();
        assert_eq!(counters.write_errors, 1, "first error latches");
        assert_eq!(counters.slots, 0);
        assert_eq!(counters.folds, 0);
        assert_eq!(counters.bytes, 0);
    }

    #[test]
    fn create_then_resume_round_trips_fold_state() {
        let dir = std::env::temp_dir().join(format!("hvsim-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let identity: SinkWrap<'_> = &|s| s;
        let session =
            CheckpointSession::create(&path, fingerprint(), None, 512, true, identity).unwrap();
        let mut buf = SlotBuffer::default();
        session.record_slot(&mut buf, 1, 1, 3, 0xabcd);
        session.record_fold(&mut buf, 1, 2, vec![3], &PartialFold::default());
        assert!(buf.lines.is_empty(), "fold flushes the slot buffer");
        let counters = session.writer.counters();
        assert_eq!((counters.slots, counters.folds), (1, 1));
        assert!(counters.syncs >= 1);
        drop(session);
        // Slot forensics land in the sidecar, not the fsync'd journal.
        let journal = std::fs::read_to_string(&path).unwrap();
        assert!(!journal.contains("journal/slot"), "journal holds header + folds only");
        let sidecar = std::fs::read_to_string(sidecar_path(&path)).unwrap();
        assert!(sidecar.contains("journal/header"), "sidecar is self-identifying");
        assert!(sidecar.contains("journal/slot"), "sidecar holds the slot records");
        let resumed =
            CheckpointSession::resume(&path, &fingerprint(), None, 512, true, identity).unwrap();
        assert!(resumed.is_done(3));
        assert!(!resumed.is_done(4));
        assert_eq!(resumed.resumed_slots(), 1);
        assert_eq!(resumed.recovered.len(), 1);
        assert_eq!(resumed.first_worker, 2);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(sidecar_path(&path)).unwrap();
    }

    #[test]
    fn slot_forensics_are_opt_in() {
        let dir = std::env::temp_dir().join(format!("hvsim-ckpt-optin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("default.journal");
        let identity: SinkWrap<'_> = &|s| s;
        let session =
            CheckpointSession::create(&path, fingerprint(), None, 512, false, identity).unwrap();
        let mut buf = SlotBuffer::default();
        session.record_slot(&mut buf, 1, 1, 3, 0xabcd);
        assert!(buf.lines.is_empty(), "slot recording is off by default");
        session.record_fold(&mut buf, 1, 2, vec![3], &PartialFold::default());
        let counters = session.writer.counters();
        assert_eq!((counters.slots, counters.folds), (0, 1));
        drop(session);
        assert!(!sidecar_path(&path).exists(), "no sidecar unless requested");
        let resumed =
            CheckpointSession::resume(&path, &fingerprint(), None, 512, false, identity).unwrap();
        assert!(resumed.is_done(3), "fold durability is unaffected");
        assert!(!sidecar_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
