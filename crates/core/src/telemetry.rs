//! Live campaign telemetry: worker heartbeats, stall detection, the
//! metrics-timeline sampler, and the `--progress` line.
//!
//! The campaign engines (classic and streaming) share one model: each
//! worker stamps a heartbeat at every slot boundary, and a single
//! supervisor thread wakes every sampling interval to (1) push a
//! [`TimelineSample`] of live counters and gauges, (2) compare every
//! worker's heartbeat age against the stall threshold — flagging a
//! wedged worker once per stall episode via the
//! `campaign.worker.stalled` counter and dumping its flight-recorder
//! ring — and (3) redraw the live progress line on stderr.
//!
//! Everything here is wall-clock shaped by construction and therefore
//! lives *outside* the determinism contract: timelines, progress
//! lines, and stall dumps are diagnostics, never part of normalized
//! reports.

use hvsim_obs::{flight, FlightHandle, MetricsRegistry, MetricsTimeline};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Heartbeat value meaning "this worker is idle" (finished its stream
/// or waiting for work) — idle workers are never stall candidates.
const IDLE: u64 = u64::MAX;

/// Shared live state of one campaign run: progress counters and one
/// heartbeat cell per worker. Created once per run, written by workers
/// on the slot boundary (two relaxed atomic stores), read by the
/// supervisor.
pub(crate) struct Telemetry {
    start: Instant,
    total: u64,
    done: AtomicU64,
    degraded: AtomicU64,
    /// Per-worker heartbeat: milliseconds since `start` when the worker
    /// last crossed a slot boundary, or [`IDLE`].
    heartbeats: Vec<AtomicU64>,
    /// Workers that ran out of work and exited — the supervisor's
    /// shutdown condition, airtight even when the cell count drifts
    /// (resumed slots, early closes).
    finished_workers: AtomicU64,
}

impl Telemetry {
    pub(crate) fn new(total: u64, workers: usize) -> Self {
        Self {
            start: Instant::now(),
            total,
            done: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            heartbeats: (0..workers).map(|_| AtomicU64::new(IDLE)).collect(),
            finished_workers: AtomicU64::new(0),
        }
    }

    /// Milliseconds since the run started.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Stamps `worker`'s heartbeat: it just crossed a slot boundary.
    pub(crate) fn beat(&self, worker: usize) {
        if let Some(cell) = self.heartbeats.get(worker) {
            cell.store(self.elapsed_ms().min(IDLE - 1), Ordering::Relaxed);
        }
    }

    /// Marks `worker` idle (waiting or done); idle workers never stall.
    pub(crate) fn idle(&self, worker: usize) {
        if let Some(cell) = self.heartbeats.get(worker) {
            cell.store(IDLE, Ordering::Relaxed);
        }
    }

    /// Marks `worker` permanently done. The supervisor exits once every
    /// worker has finished.
    pub(crate) fn worker_finished(&self, worker: usize) {
        self.idle(worker);
        self.finished_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one finished cell.
    pub(crate) fn cell_done(&self, degraded: bool) {
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    fn finished(&self) -> bool {
        self.finished_workers.load(Ordering::Relaxed) >= self.heartbeats.len() as u64
    }

    /// Each busy worker's heartbeat age in ms (`None` = idle).
    fn heartbeat_ages_ms(&self, now_ms: u64) -> Vec<Option<u64>> {
        self.heartbeats
            .iter()
            .map(|cell| match cell.load(Ordering::Relaxed) {
                IDLE => None,
                beat => Some(now_ms.saturating_sub(beat)),
            })
            .collect()
    }
}

/// Indices of workers whose heartbeat age exceeds the threshold. Pure
/// so the stall policy is unit-testable without threads.
pub(crate) fn stalled_workers(ages: &[Option<u64>], threshold_ms: u64) -> Vec<usize> {
    ages.iter()
        .enumerate()
        .filter_map(|(worker, age)| age.filter(|&a| a > threshold_ms).map(|_| worker))
        .collect()
}

/// The `--progress` line: done/total, percent, throughput, ETA, and
/// the degraded count.
pub(crate) fn progress_line(done: u64, total: u64, degraded: u64, elapsed_ms: u64) -> String {
    let percent = if total == 0 { 100.0 } else { done as f64 * 100.0 / total as f64 };
    let rate = if elapsed_ms == 0 { 0.0 } else { done as f64 * 1000.0 / elapsed_ms as f64 };
    let eta = if rate > 0.0 && done < total {
        format!("{:.0}s", (total - done) as f64 / rate)
    } else {
        "-".to_owned()
    };
    format!(
        "cells {done}/{total} ({percent:.1}%) | {rate:.1} cells/s | eta {eta} | degraded {degraded}"
    )
}

/// Engine-specific gauge appender: each tick's timeline sample passes
/// through one of these so the streaming engine can add queue depth,
/// resident cells, and checkpoint/chaos tallies to the shared base set.
pub(crate) type ExtraGauges<'a> = &'a dyn Fn(&mut Vec<(String, u64)>);

/// Everything the supervisor thread needs, borrowed from the engine's
/// scope so the thread can live inside `std::thread::scope`.
pub(crate) struct Supervisor<'a> {
    /// Sampling interval for the timeline / stall check / progress line.
    pub interval: Duration,
    /// Heartbeat age beyond which a busy worker counts as stalled.
    pub stall_after: Duration,
    /// Redraw the live progress line on stderr every tick.
    pub progress: bool,
    /// Timeline the samples are pushed into, when attached.
    pub timeline: Option<&'a MetricsTimeline>,
    /// Registry the `campaign.worker.stalled` counter is folded into.
    pub registry: Option<&'a MetricsRegistry>,
    /// Every worker's flight handle, for stall dumps.
    pub flight: &'a [FlightHandle],
    /// Directory stall dumps are written into (fail-soft on IO).
    pub flight_out: Option<&'a Path>,
}

impl Supervisor<'_> {
    /// Runs the supervisor loop until the run finishes: a timeline
    /// sample, a stall sweep, and a progress redraw per tick, plus one
    /// final sample after the last cell so even sub-interval runs
    /// produce a non-empty timeline.
    ///
    /// `extra` appends engine-specific gauges (queue depth, resident
    /// cells, checkpoint counters, chaos tallies) to each sample.
    pub(crate) fn run(&self, telemetry: &Telemetry, extra: ExtraGauges<'_>) {
        if let Some(registry) = self.registry {
            // Pre-register the stall counter so "no stalls" is an
            // explicit 0 in every snapshot, not an absent name.
            registry.add(crate::obs_bridge::M_WORKER_STALLED, 0);
        }
        let mut flagged = vec![false; self.flight.len().max(telemetry.heartbeats.len())];
        loop {
            let finished = self.sleep_interval(telemetry);
            self.tick(telemetry, extra, &mut flagged);
            if finished {
                break;
            }
        }
        if self.progress {
            eprintln!();
        }
    }

    /// Sleeps one interval in short chunks, returning early (true)
    /// once the run is finished.
    fn sleep_interval(&self, telemetry: &Telemetry) -> bool {
        let chunk = Duration::from_millis(10).min(self.interval);
        let deadline = Instant::now() + self.interval;
        while Instant::now() < deadline {
            if telemetry.finished() {
                return true;
            }
            std::thread::sleep(chunk);
        }
        telemetry.finished()
    }

    fn tick(
        &self,
        telemetry: &Telemetry,
        extra: ExtraGauges<'_>,
        flagged: &mut [bool],
    ) {
        let now_ms = telemetry.elapsed_ms();
        let done = telemetry.done.load(Ordering::Relaxed);
        let degraded = telemetry.degraded.load(Ordering::Relaxed);
        let ages = telemetry.heartbeat_ages_ms(now_ms);
        let busy = ages.iter().filter(|age| age.is_some()).count() as u64;
        let stalled = stalled_workers(&ages, self.stall_after.as_millis() as u64);
        for &worker in &stalled {
            if !flagged[worker] {
                flagged[worker] = true;
                if let Some(registry) = self.registry {
                    registry.add(crate::obs_bridge::M_WORKER_STALLED, 1);
                }
                self.dump_stalled_worker(worker);
            }
        }
        // A worker that beats again ends its stall episode; the next
        // episode counts (and dumps) anew.
        for (worker, age) in ages.iter().enumerate() {
            if !stalled.contains(&worker) && age.is_some() {
                flagged[worker] = false;
            }
        }
        if let Some(timeline) = self.timeline {
            let mut values = vec![
                ("progress.done".to_owned(), done),
                ("progress.total".to_owned(), telemetry.total),
                ("progress.degraded".to_owned(), degraded),
                ("workers.busy".to_owned(), busy),
                ("workers.stalled".to_owned(), stalled.len() as u64),
                (
                    "throughput.cells_per_sec_x1000".to_owned(),
                    done.saturating_mul(1_000_000).checked_div(now_ms).unwrap_or(0),
                ),
            ];
            extra(&mut values);
            timeline.push(now_ms, values);
        }
        if self.progress {
            eprint!("\r{}", progress_line(done, telemetry.total, degraded, now_ms));
        }
    }

    /// Writes the wedged worker's whole ring (its last actions, newest
    /// last) as a flight dump. Fail-soft: a diagnostics write error
    /// must never take the campaign down.
    fn dump_stalled_worker(&self, worker: usize) {
        let (Some(dir), Some(handle)) = (self.flight_out, self.flight.get(worker)) else {
            return;
        };
        let snapshot = handle.snapshot();
        if snapshot.is_empty() {
            return;
        }
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(
            dir.join(format!("stall-worker-{worker}.jsonl")),
            flight::dump_jsonl(&snapshot),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_detection_ignores_idle_and_fresh_workers() {
        let ages = vec![Some(10), None, Some(5_000), Some(2_001), None];
        assert_eq!(stalled_workers(&ages, 2_000), vec![2, 3]);
        assert!(stalled_workers(&ages, 10_000).is_empty());
        assert!(stalled_workers(&[], 1).is_empty());
    }

    #[test]
    fn heartbeats_round_trip_through_ages() {
        let t = Telemetry::new(4, 2);
        t.beat(0);
        let ages = t.heartbeat_ages_ms(t.elapsed_ms() + 50);
        assert!(ages[0].unwrap() >= 50);
        assert_eq!(ages[1], None, "a worker that never beat is idle");
        t.idle(0);
        assert_eq!(t.heartbeat_ages_ms(1_000), vec![None, None]);
        // Out-of-range worker indices are ignored, not a panic.
        t.beat(7);
        t.idle(7);
    }

    #[test]
    fn progress_counters_accumulate() {
        let t = Telemetry::new(3, 2);
        assert!(!t.finished());
        t.cell_done(false);
        t.cell_done(true);
        t.cell_done(false);
        assert_eq!(t.done.load(Ordering::Relaxed), 3);
        assert_eq!(t.degraded.load(Ordering::Relaxed), 1);
        t.worker_finished(0);
        assert!(!t.finished(), "one of two workers still running");
        t.worker_finished(1);
        assert!(t.finished());
    }

    #[test]
    fn progress_line_formats_rate_and_eta() {
        let line = progress_line(50, 100, 3, 10_000);
        assert_eq!(line, "cells 50/100 (50.0%) | 5.0 cells/s | eta 10s | degraded 3");
        assert!(progress_line(0, 100, 0, 0).contains("eta -"));
        assert!(progress_line(100, 100, 0, 10_000).contains("eta -"));
        assert!(progress_line(0, 0, 0, 5).contains("100.0%"));
    }
}
