//! Use cases: an intrusion model with an exploit path and an injection
//! path.
//!
//! Each of the paper's four use cases (Table II) is a [`UseCase`]: it
//! carries the instantiated [`IntrusionModel`], can run the original
//! third-party exploit strategy, and can inject the equivalent erroneous
//! state with an [`Injector`] and then attempt the same abuse.

use crate::erroneous_state::StateAudit;
use crate::injector::Injector;
use crate::model::IntrusionModel;
use crate::monitor::Monitor;
use guestos::World;
use hvsim_mem::DomainId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a run used the original exploit or the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Run the real exploit (works only where the vulnerability exists).
    Exploit,
    /// Inject the erroneous state with the intrusion injector.
    Injection,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Exploit => "exploit",
            Mode::Injection => "injection",
        })
    }
}

/// What a use-case run reported about itself.
///
/// The *security violation* judgment is made separately by the
/// [`Monitor`]; the outcome reports whether the erroneous state was
/// induced, with the audit evidence, plus the run's log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Whether the erroneous state was induced (per the audit).
    pub erroneous_state: bool,
    /// The state audit, when one was performed.
    pub state_audit: Option<StateAudit>,
    /// Noteworthy steps (mirrors the exploit transcripts in the paper).
    pub notes: Vec<String>,
    /// Why the run failed to induce the state, if it did (e.g.
    /// "memory_exchange returned -EFAULT (bad address)").
    pub error: Option<String>,
}

impl ScenarioOutcome {
    /// A failed run with an error message.
    pub fn failed(error: impl Into<String>) -> Self {
        Self {
            erroneous_state: false,
            state_audit: None,
            notes: Vec::new(),
            error: Some(error.into()),
        }
    }

    /// Appends a note.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }
}

/// One use case of the evaluation (paper Table II).
///
/// `Send + Sync` because campaign cells run on worker threads sharing
/// the use-case objects by reference.
pub trait UseCase: Send + Sync {
    /// The use-case name as printed in the paper (e.g. `XSA-212-crash`).
    fn name(&self) -> &'static str;

    /// The instantiated intrusion model.
    fn intrusion_model(&self) -> IntrusionModel;

    /// Runs the original exploit strategy as `attacker`.
    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome;

    /// Injects the equivalent erroneous state with `injector` and then
    /// attempts the same abuse the exploit would perform on top of it.
    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome;

    /// Runs the exploit for one trial of a parameter grid. The default
    /// ignores the trial index and delegates to [`UseCase::run_exploit`]
    /// — the paper's use cases are single-shot; grid-style cases
    /// override this to vary their parameters by trial.
    fn run_exploit_trial(
        &self,
        world: &mut World,
        attacker: DomainId,
        trial: u64,
    ) -> ScenarioOutcome {
        let _ = trial;
        self.run_exploit(world, attacker)
    }

    /// Runs the injection path for one trial of a parameter grid; the
    /// default ignores the trial index and delegates to
    /// [`UseCase::run_injection`].
    fn run_injection_trial(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
        trial: u64,
    ) -> ScenarioOutcome {
        let _ = trial;
        self.run_injection(world, attacker, injector)
    }

    /// The monitor configuration appropriate for this use case.
    fn monitor(&self, world: &World, attacker: DomainId) -> Monitor {
        let _ = (world, attacker);
        Monitor::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Exploit.to_string(), "exploit");
        assert_eq!(Mode::Injection.to_string(), "injection");
    }

    #[test]
    fn outcome_helpers() {
        let mut o = ScenarioOutcome::failed("-EFAULT");
        assert!(!o.erroneous_state);
        assert_eq!(o.error.as_deref(), Some("-EFAULT"));
        o.note("step 1");
        assert_eq!(o.notes, vec!["step 1"]);
    }
}
