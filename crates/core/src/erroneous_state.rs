//! Machine-checkable erroneous-state specifications.
//!
//! A specification says *what state to induce* (lowered to injector
//! operations) and *how to audit that it is present* — the paper's
//! equivalence criterion between exploit-induced and injected states
//! ("a page-table walk to audit the same erroneous state was performed",
//! §VI-C).

use guestos::World;
use hvsim::{AccessMode, IdtEntry, PteFlags};
use hvsim_mem::{DomainId, Mfn};
use hvsim_paging::PageTableEntry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of auditing a state specification against a world.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateAudit {
    /// Whether the erroneous state is present.
    pub present: bool,
    /// Evidence (what was read and compared).
    pub evidence: String,
}

/// A specification of one erroneous state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErroneousStateSpec {
    /// Overwrite the first 8 bytes of an IDT gate with `value`
    /// (XSA-212-crash: gate 14 gets garbage).
    OverwriteIdtGate {
        /// CPU whose IDT is targeted.
        cpu: usize,
        /// Gate vector.
        vector: u8,
        /// The 8 bytes written over the gate.
        value: u64,
    },
    /// Install a full 16-byte IDT gate (XSA-212-priv registers its
    /// payload handler this way).
    InstallIdtGate {
        /// CPU whose IDT is targeted.
        cpu: usize,
        /// Gate vector.
        vector: u8,
        /// The packed gate bytes.
        gate: [u8; 16],
    },
    /// Write a page-table entry into the shared hypervisor L3 page
    /// (XSA-212-priv's "crafted PUD entry written" / "linked PMD into
    /// target PUD").
    LinkPmdIntoSharedL3 {
        /// L3 slot index.
        index: usize,
        /// The entry value to write.
        entry: u64,
    },
    /// Set the `RW` bit on an L4 entry (XSA-182's writable self-map).
    SetL4EntryRw {
        /// The L4 table frame.
        l4: Mfn,
        /// Entry index.
        index: usize,
    },
    /// Write bytes into an arbitrary machine frame (XSA-148's vDSO patch
    /// and general memory corruption).
    WriteFrame {
        /// Target frame.
        mfn: Mfn,
        /// Byte offset within the frame.
        offset: usize,
        /// Bytes to write.
        bytes: Vec<u8>,
    },
    /// Raw write at a hypervisor linear address.
    WriteLinear {
        /// Target linear address.
        addr: u64,
        /// Bytes to write.
        bytes: Vec<u8>,
    },
    /// Give a domain retained access to a frame it does not own
    /// (Keep Page Reference / Keep Page Access).
    RetainFrameAccess {
        /// The domain keeping access.
        dom: DomainId,
        /// The frame.
        mfn: Mfn,
    },
    /// Raise pending event bits for ports the victim never bound —
    /// spurious virtual interrupts (Uncontrolled Arbitrary Interrupts).
    SpuriousPendingEvents {
        /// The victim domain.
        dom: DomainId,
        /// Ports whose pending bits are set.
        ports: Vec<u16>,
    },
    /// Force a domain's scheduler pause flag — the availability state a
    /// compromised management interface leaves behind.
    ForcePause {
        /// The paused domain.
        dom: DomainId,
    },
}

impl ErroneousStateSpec {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ErroneousStateSpec::OverwriteIdtGate { .. } => "overwrite IDT gate",
            ErroneousStateSpec::InstallIdtGate { .. } => "install IDT gate",
            ErroneousStateSpec::LinkPmdIntoSharedL3 { .. } => "link PMD into shared L3",
            ErroneousStateSpec::SetL4EntryRw { .. } => "set RW on L4 entry",
            ErroneousStateSpec::WriteFrame { .. } => "write machine frame",
            ErroneousStateSpec::WriteLinear { .. } => "write linear address",
            ErroneousStateSpec::RetainFrameAccess { .. } => "retain frame access",
            ErroneousStateSpec::SpuriousPendingEvents { .. } => "spurious pending events",
            ErroneousStateSpec::ForcePause { .. } => "force pause state",
        }
    }

    /// Lowers the specification to `arbitrary_access` operations:
    /// `(mode, address, bytes)` triples. [`RetainFrameAccess`] lowers to
    /// an empty list — it is applied through the injector's accounting
    /// interface instead.
    ///
    /// [`RetainFrameAccess`]: ErroneousStateSpec::RetainFrameAccess
    pub fn lower(&self, world: &World) -> Vec<(AccessMode, u64, Vec<u8>)> {
        match self {
            ErroneousStateSpec::OverwriteIdtGate { cpu, vector, value } => {
                let addr = world
                    .hv()
                    .sidt(*cpu)
                    .offset(IdtEntry::slot_offset(*vector) as u64);
                vec![(AccessMode::LinearWrite, addr.raw(), value.to_le_bytes().to_vec())]
            }
            ErroneousStateSpec::InstallIdtGate { cpu, vector, gate } => {
                let addr = world
                    .hv()
                    .sidt(*cpu)
                    .offset(IdtEntry::slot_offset(*vector) as u64);
                vec![(AccessMode::LinearWrite, addr.raw(), gate.to_vec())]
            }
            ErroneousStateSpec::LinkPmdIntoSharedL3 { index, entry } => {
                let addr = world
                    .hv()
                    .shared_l3_mfn()
                    .base()
                    .offset(*index as u64 * 8);
                vec![(AccessMode::PhysWrite, addr.raw(), entry.to_le_bytes().to_vec())]
            }
            ErroneousStateSpec::SetL4EntryRw { l4, index } => {
                let slot = l4.base().offset(*index as u64 * 8);
                let current = world.hv().mem().read_u64(slot).unwrap_or(0);
                let new = PageTableEntry::from_raw(current)
                    .with_flags(PteFlags::RW)
                    .raw();
                vec![(AccessMode::PhysWrite, slot.raw(), new.to_le_bytes().to_vec())]
            }
            ErroneousStateSpec::WriteFrame { mfn, offset, bytes } => {
                vec![(
                    AccessMode::PhysWrite,
                    mfn.base().offset(*offset as u64).raw(),
                    bytes.clone(),
                )]
            }
            ErroneousStateSpec::WriteLinear { addr, bytes } => {
                vec![(AccessMode::LinearWrite, *addr, bytes.clone())]
            }
            ErroneousStateSpec::RetainFrameAccess { .. } => Vec::new(),
            ErroneousStateSpec::SpuriousPendingEvents { dom, ports } => {
                // The pending bitmap lives in the victim's shared-info
                // frame: compute the byte writes that raise each bit.
                let Some(shared) = world
                    .hv()
                    .domain(*dom)
                    .ok()
                    .and_then(|d| d.shared_info_mfn())
                else {
                    return Vec::new();
                };
                let mut by_byte: std::collections::BTreeMap<usize, u8> =
                    std::collections::BTreeMap::new();
                for &port in ports {
                    let byte = hvsim::PENDING_OFFSET + (port as usize) / 8;
                    *by_byte.entry(byte).or_default() |= 1 << (port % 8);
                }
                by_byte
                    .into_iter()
                    .map(|(byte, mask)| {
                        let addr = shared.base().offset(byte as u64);
                        let current = world
                            .hv()
                            .mem()
                            .read_u64(addr)
                            .map(|v| (v & 0xff) as u8)
                            .unwrap_or(0);
                        (AccessMode::PhysWrite, addr.raw(), vec![current | mask])
                    })
                    .collect()
            }
            ErroneousStateSpec::ForcePause { .. } => Vec::new(),
        }
    }

    /// Audits whether the state is present in `world`.
    pub fn audit(&self, world: &World) -> StateAudit {
        match self {
            ErroneousStateSpec::OverwriteIdtGate { cpu, vector, value } => {
                match world.hv().idt_entry(*cpu, *vector) {
                    Ok(gate) => {
                        let corrupted = !world.hv().is_valid_handler(gate.offset) || !gate.present;
                        StateAudit {
                            present: corrupted,
                            evidence: format!(
                                "gate {vector} offset {} (expected corruption from {value:#x}), \
                                 valid handler: {}",
                                gate.offset,
                                !corrupted
                            ),
                        }
                    }
                    Err(e) => StateAudit {
                        present: false,
                        evidence: format!("idt read failed: {e}"),
                    },
                }
            }
            ErroneousStateSpec::InstallIdtGate { cpu, vector, gate } => {
                let expected = IdtEntry::unpack(gate);
                match world.hv().idt_entry(*cpu, *vector) {
                    Ok(read) => StateAudit {
                        present: read == expected,
                        evidence: format!("gate {vector} -> handler {}", read.offset),
                    },
                    Err(e) => StateAudit {
                        present: false,
                        evidence: format!("idt read failed: {e}"),
                    },
                }
            }
            ErroneousStateSpec::LinkPmdIntoSharedL3 { index, entry } => {
                let addr = world.hv().shared_l3_mfn().base().offset(*index as u64 * 8);
                let read = world.hv().mem().read_u64(addr).unwrap_or(0);
                StateAudit {
                    present: read == *entry,
                    evidence: format!("shared L3[{index}] = {read:#018x} (expected {entry:#018x})"),
                }
            }
            ErroneousStateSpec::SetL4EntryRw { l4, index } => {
                let slot = l4.base().offset(*index as u64 * 8);
                let read = PageTableEntry::from_raw(world.hv().mem().read_u64(slot).unwrap_or(0));
                let present = read.is_present() && read.flags().contains(PteFlags::RW);
                StateAudit {
                    present,
                    evidence: format!("page_directory[{index}] = {:#018x}", read.raw()),
                }
            }
            ErroneousStateSpec::WriteFrame { mfn, offset, bytes } => {
                let mut read = vec![0u8; bytes.len()];
                let ok = world
                    .hv()
                    .mem()
                    .read(mfn.base().offset(*offset as u64), &mut read)
                    .is_ok();
                StateAudit {
                    present: ok && read == *bytes,
                    evidence: format!("frame {mfn}+{offset:#x}: {} bytes compared", bytes.len()),
                }
            }
            ErroneousStateSpec::WriteLinear { addr, bytes } => {
                // Audit through the direct map when possible.
                let phys = world
                    .hv()
                    .layout()
                    .directmap_phys(hvsim_mem::VirtAddr::new(*addr));
                match phys {
                    Some(p) => {
                        let mut read = vec![0u8; bytes.len()];
                        let ok = world
                            .hv()
                            .mem()
                            .read(hvsim_mem::PhysAddr::new(p), &mut read)
                            .is_ok();
                        StateAudit {
                            present: ok && read == *bytes,
                            evidence: format!("linear {addr:#x} -> phys {p:#x} compared"),
                        }
                    }
                    None => StateAudit {
                        present: false,
                        evidence: format!("linear {addr:#x} not auditable via direct map"),
                    },
                }
            }
            ErroneousStateSpec::RetainFrameAccess { dom, mfn } => {
                let present = world
                    .hv()
                    .domain(*dom)
                    .map(|d| d.retains_access(*mfn))
                    .unwrap_or(false);
                StateAudit {
                    present,
                    evidence: format!("{dom} retains access to {mfn}: {present}"),
                }
            }
            ErroneousStateSpec::SpuriousPendingEvents { dom, ports } => {
                let spurious = world.hv().spurious_pending_ports(*dom);
                let present = ports.iter().all(|p| spurious.contains(p));
                StateAudit {
                    present,
                    evidence: format!("{dom} spurious pending ports: {spurious:?}"),
                }
            }
            ErroneousStateSpec::ForcePause { dom } => {
                let present = world.hv().domain(*dom).map(|d| d.is_paused()).unwrap_or(false);
                StateAudit {
                    present,
                    evidence: format!("{dom} paused: {present}"),
                }
            }
        }
    }
}

impl fmt::Display for ErroneousStateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::WorldBuilder;
    use hvsim::XenVersion;

    fn world() -> World {
        WorldBuilder::new(XenVersion::V4_6)
            .injector(true)
            .guest("g", 32)
            .build()
            .unwrap()
    }

    #[test]
    fn idt_gate_spec_lowers_to_sidt_address() {
        let w = world();
        let spec = ErroneousStateSpec::OverwriteIdtGate {
            cpu: 0,
            vector: 14,
            value: 0x41,
        };
        let ops = spec.lower(&w);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, AccessMode::LinearWrite);
        assert_eq!(ops[0].1, w.hv().sidt(0).raw() + 14 * 16);
        // Pristine gate: audit reports absent.
        assert!(!spec.audit(&w).present);
    }

    #[test]
    fn write_frame_spec_roundtrip() {
        let mut w = world();
        let dom = w.domain_by_name("g").unwrap();
        let mfn = w.hv().domain(dom).unwrap().p2m(hvsim_mem::Pfn::new(8)).unwrap();
        let spec = ErroneousStateSpec::WriteFrame {
            mfn,
            offset: 16,
            bytes: b"evil".to_vec(),
        };
        assert!(!spec.audit(&w).present);
        for (mode, addr, mut bytes) in spec.lower(&w) {
            w.hv_mut().hc_arbitrary_access(dom, addr, &mut bytes, mode).unwrap();
        }
        assert!(spec.audit(&w).present);
    }

    #[test]
    fn retain_access_spec_has_no_memory_ops() {
        let w = world();
        let dom = w.domain_by_name("g").unwrap();
        let spec = ErroneousStateSpec::RetainFrameAccess {
            dom,
            mfn: Mfn::new(3),
        };
        assert!(spec.lower(&w).is_empty());
        assert!(!spec.audit(&w).present);
    }

    #[test]
    fn l4_rw_spec_audit_reads_entry() {
        let w = world();
        let dom = w.domain_by_name("g").unwrap();
        let l4 = w.hv().domain(dom).unwrap().cr3().unwrap();
        // Slot 300 holds nothing -> audit absent; slot 256 holds the
        // (present, RW) hypervisor stitch -> audit present.
        let absent = ErroneousStateSpec::SetL4EntryRw { l4, index: 300 };
        assert!(!absent.audit(&w).present);
        let present = ErroneousStateSpec::SetL4EntryRw { l4, index: 256 };
        assert!(present.audit(&w).present);
        assert!(present.audit(&w).evidence.contains("page_directory[256]"));
    }

    #[test]
    fn labels_are_stable() {
        let spec = ErroneousStateSpec::WriteLinear {
            addr: 0,
            bytes: vec![],
        };
        assert_eq!(spec.label(), "write linear address");
        assert_eq!(spec.to_string(), "write linear address");
    }
}
