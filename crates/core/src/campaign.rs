//! The assessment campaign runner: every use case × version × mode, with
//! monitoring — the machinery behind the paper's Tables II/III and
//! Figs. 2/4.

use crate::injector::ArbitraryAccessInjector;
use crate::monitor::SecurityViolation;
use crate::report::{TextTable, CHECK, SHIELD};
use crate::scenario::{Mode, UseCase};
use guestos::{World, WorldBuilder};
use hvsim::XenVersion;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Builds a fresh world for one campaign cell: `(version,
/// injector_enabled)` — the paper keeps everything else identical across
/// runs ("the build and experimental environment are kept the same",
/// §V-B). Shared across worker threads, hence `Arc + Send + Sync`.
pub type WorldFactory = Arc<dyn Fn(XenVersion, bool) -> World + Send + Sync>;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The world used throughout the evaluation: privileged dom0 (`xen3`)
/// plus guests `xen2` and `guest03`; `guest03` is the compromised guest
/// the exploits run in.
pub fn standard_world(version: XenVersion, injector: bool) -> World {
    WorldBuilder::new(version)
        .injector(injector)
        .guest("xen2", 64)
        .guest("guest03", 64)
        .build()
        .expect("standard world boots")
}

/// Name of the attacker guest in the standard world.
pub const ATTACKER_GUEST: &str = "guest03";

/// One campaign cell: a use case run in one mode on one version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Use-case name (e.g. `XSA-212-crash`).
    pub use_case: String,
    /// The abusive functionality of its intrusion model (for Table II).
    pub abusive_functionality: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Whether the erroneous state was induced.
    pub erroneous_state: bool,
    /// Violations observed afterwards.
    pub violations: Vec<SecurityViolation>,
    /// State induced but no violation — the system *handled* it (the
    /// shield of Table III).
    pub handled: bool,
    /// The run's log.
    pub notes: Vec<String>,
    /// Failure reason when the state was not induced.
    pub error: Option<String>,
    /// Wall-clock time spent on this cell (world acquisition + run +
    /// monitoring), in microseconds. The only non-deterministic field;
    /// [`CampaignReport::normalized`] zeroes it for run-to-run
    /// comparisons.
    pub wall_time_us: u64,
    /// Hypercalls executed while running this cell (deterministic for a
    /// given configuration).
    pub hypercalls: u64,
}

impl CellResult {
    /// `true` if at least one security violation was observed.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A complete campaign report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Builds a report from pre-computed cells (used by the benchmark
    /// layer and by report deserialization).
    pub fn from_cells(cells: Vec<CellResult>) -> Self {
        Self { cells }
    }

    /// All cells.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Looks up one cell.
    pub fn cell(&self, use_case: &str, version: XenVersion, mode: Mode) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.use_case == use_case && c.version == version && c.mode == mode)
    }

    /// Iterates the first cell of each use case, in campaign order — the
    /// per-use-case anchor rows shared by the Table II/III and Fig. 4
    /// renderers.
    pub fn first_cell_per_use_case(&self) -> impl Iterator<Item = &CellResult> {
        let mut seen = BTreeSet::new();
        self.cells.iter().filter(move |c| seen.insert(c.use_case.clone()))
    }

    /// A copy with every wall-clock timing zeroed. Timing is the only
    /// non-deterministic part of a report; the normalized form is
    /// byte-identical across runs and worker counts for the same
    /// configuration.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut report = self.clone();
        for cell in &mut report.cells {
            cell.wall_time_us = 0;
        }
        report
    }

    /// Total wall-clock time across all cells, in microseconds.
    pub fn total_wall_time_us(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_time_us).sum()
    }

    /// Total hypercalls executed across all cells.
    pub fn total_hypercalls(&self) -> u64 {
        self.cells.iter().map(|c| c.hypercalls).sum()
    }

    /// Renders Table II: use case → abusive functionality.
    pub fn render_table2(&self) -> String {
        let mut table = TextTable::new(["Use Case", "Abusive Functionality"])
            .title("TABLE II: use cases and their abusive functionality");
        for c in self.first_cell_per_use_case() {
            table.row([c.use_case.clone(), c.abusive_functionality.clone()]);
        }
        table.to_string()
    }

    /// Renders Table III: the injection campaign on the non-vulnerable
    /// versions. A check marks a correctly induced property; the shield
    /// marks an erroneous state the system handled.
    pub fn render_table3(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "4.8 Err. State",
            "4.8 Sec. Viol.",
            "4.13 Err. State",
            "4.13 Sec. Viol.",
        ])
        .title(
            "TABLE III: injection campaign in non-vulnerable versions \
             (check = property induced, shield = erroneous state handled)",
        );
        for c in self.first_cell_per_use_case() {
            let mut row = vec![c.use_case.clone()];
            for version in [XenVersion::V4_8, XenVersion::V4_13] {
                match self.cell(&c.use_case, version, Mode::Injection) {
                    Some(cell) => {
                        row.push(if cell.erroneous_state { CHECK } else { "x" }.to_owned());
                        row.push(
                            if cell.violated() {
                                CHECK.to_owned()
                            } else if cell.handled {
                                SHIELD.to_owned()
                            } else {
                                "x".to_owned()
                            },
                        );
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
        }
        table.to_string()
    }

    /// Renders the Fig. 4 comparison: on the vulnerable version, does the
    /// injection reproduce the exploit's erroneous state *and* security
    /// violation?
    pub fn render_fig4(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "exploit err/viol (4.6)",
            "injection err/viol (4.6)",
            "equivalent",
        ])
        .title("FIG. 4: experimental validation on the vulnerable version (Xen 4.6)");
        for c in self.first_cell_per_use_case() {
            let e = self.cell(&c.use_case, XenVersion::V4_6, Mode::Exploit);
            let i = self.cell(&c.use_case, XenVersion::V4_6, Mode::Injection);
            let fmt_cell = |c: Option<&CellResult>| match c {
                Some(c) => format!(
                    "{}/{}",
                    if c.erroneous_state { CHECK } else { "x" },
                    if c.violated() { CHECK } else { "x" }
                ),
                None => "-".into(),
            };
            let equivalent = match (e, i) {
                (Some(e), Some(i)) => {
                    e.erroneous_state == i.erroneous_state && e.violated() == i.violated()
                }
                _ => false,
            };
            table.row([
                c.use_case.clone(),
                fmt_cell(e),
                fmt_cell(i),
                if equivalent { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        table.to_string()
    }

    /// Renders the Fig. 2 methodology view for one use case on one
    /// version: the traditional path vs the injection path.
    pub fn render_fig2(&self, use_case: &str, version: XenVersion) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FIG. 2: methodology paths for {use_case} on Xen {version}\n"
        ));
        for (mode, label) in [
            (Mode::Exploit, "traditional: attack -> vulnerability -> intrusion"),
            (Mode::Injection, "injection:   intrusion injector (intrusion model)"),
        ] {
            if let Some(c) = self.cell(use_case, version, mode) {
                let terminal = if c.violated() {
                    "security violation"
                } else if c.handled {
                    "erroneous state handled"
                } else {
                    "no erroneous state"
                };
                out.push_str(&format!(
                    "  {label} -> erroneous state: {} -> {terminal}\n",
                    if c.erroneous_state { "induced" } else { "not induced" },
                ));
            }
        }
        out
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.cells)
    }
}

/// A machine-readable campaign throughput record — what the Table III
/// regenerator writes to `BENCH_campaign.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignThroughput {
    /// Cells the campaign ran.
    pub cells: usize,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end elapsed wall-clock time, in microseconds.
    pub elapsed_us: u64,
    /// Cells completed per second of elapsed time.
    pub cells_per_sec: f64,
    /// Sum of per-cell wall-clock times (≈ CPU time across workers).
    pub total_cell_wall_time_us: u64,
    /// Hypercalls executed across all cells.
    pub total_hypercalls: u64,
}

impl CampaignThroughput {
    /// Derives the record from a report, the worker count, and the
    /// elapsed run time.
    pub fn new(report: &CampaignReport, workers: usize, elapsed_us: u64) -> Self {
        let elapsed_us = elapsed_us.max(1);
        let cells = report.cells().len();
        Self {
            cells,
            workers,
            elapsed_us,
            cells_per_sec: cells as f64 * 1_000_000.0 / elapsed_us as f64,
            total_cell_wall_time_us: report.total_wall_time_us(),
            total_hypercalls: report.total_hypercalls(),
        }
    }
}

/// The campaign: use cases × versions × modes.
pub struct Campaign {
    use_cases: Vec<Box<dyn UseCase>>,
    versions: Vec<XenVersion>,
    modes: Vec<Mode>,
    factory: WorldFactory,
    jobs: Option<usize>,
    reuse_snapshots: bool,
}

impl Campaign {
    /// A campaign over all three versions and both modes, using the
    /// standard world, snapshot reuse, and one worker per hardware
    /// thread.
    pub fn new() -> Self {
        Self {
            use_cases: Vec::new(),
            versions: XenVersion::ALL.to_vec(),
            modes: vec![Mode::Exploit, Mode::Injection],
            factory: Arc::new(standard_world),
            jobs: None,
            reuse_snapshots: true,
        }
    }

    /// Adds a use case.
    #[must_use]
    pub fn with_use_case(mut self, uc: Box<dyn UseCase>) -> Self {
        self.use_cases.push(uc);
        self
    }

    /// Restricts the versions under test.
    #[must_use]
    pub fn versions(mut self, versions: &[XenVersion]) -> Self {
        self.versions = versions.to_vec();
        self
    }

    /// Restricts the modes.
    #[must_use]
    pub fn modes(mut self, modes: &[Mode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Replaces the world factory.
    #[must_use]
    pub fn world_factory(mut self, factory: WorldFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Sets the worker count used by [`Campaign::run`]. `0` or unset
    /// means one worker per hardware thread.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Enables or disables world-snapshot reuse. When enabled (the
    /// default), each `(version, injector_enabled)` base world boots
    /// once and every cell starts from a clone of it; when disabled,
    /// every cell boots its own world through the factory, like the
    /// paper's original setup. Booting is deterministic, so both paths
    /// produce identical reports.
    #[must_use]
    pub fn reuse_snapshots(mut self, reuse: bool) -> Self {
        self.reuse_snapshots = reuse;
        self
    }

    /// Runs every cell with the configured worker count. Exploit cells
    /// run on a stock build, injection cells on an injector build,
    /// exactly like the paper's setup; each cell gets a pristine world
    /// (a snapshot clone, or a fresh boot when snapshot reuse is off),
    /// runs its scenario, then monitors for violations.
    pub fn run(&self) -> CampaignReport {
        self.run_with_jobs(self.jobs.unwrap_or_else(default_jobs))
    }

    /// Runs every cell on exactly `jobs` worker threads. Cell results
    /// are slot-indexed, so the report's cell order — and, because each
    /// cell starts from a pristine world, the cells themselves — are
    /// identical for every worker count.
    pub fn run_with_jobs(&self, jobs: usize) -> CampaignReport {
        let work: Vec<(usize, XenVersion, Mode)> = self
            .use_cases
            .iter()
            .enumerate()
            .flat_map(|(uc, _)| {
                self.versions.iter().flat_map(move |&version| {
                    self.modes.iter().map(move |&mode| (uc, version, mode))
                })
            })
            .collect();
        if work.is_empty() {
            return CampaignReport::default();
        }

        // Boot each required (version, injector_enabled) base world once;
        // cells then start from clones instead of re-booting.
        let mut snapshots: BTreeMap<(XenVersion, bool), World> = BTreeMap::new();
        if self.reuse_snapshots {
            for &(_, version, mode) in &work {
                snapshots
                    .entry((version, mode == Mode::Injection))
                    .or_insert_with(|| (self.factory)(version, mode == Mode::Injection));
            }
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellResult>>> =
            work.iter().map(|_| Mutex::new(None)).collect();
        let workers = jobs.max(1).min(work.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(uc, version, mode)) = work.get(i) else {
                        break;
                    };
                    let snapshot = snapshots.get(&(version, mode == Mode::Injection));
                    let cell = self.run_cell(&*self.use_cases[uc], version, mode, snapshot);
                    *slots[i].lock().expect("result slot poisoned") = Some(cell);
                });
            }
        });

        CampaignReport {
            cells: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("every work item produces a cell")
                })
                .collect(),
        }
    }

    /// Runs one cell on the calling thread.
    fn run_cell(
        &self,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        snapshot: Option<&World>,
    ) -> CellResult {
        let start = Instant::now();
        let mut world = match snapshot {
            Some(base) => base.clone(),
            None => (self.factory)(version, mode == Mode::Injection),
        };
        let base_hypercalls = world.hv().hypercall_count();
        let attacker = world
            .domain_by_name(ATTACKER_GUEST)
            .or_else(|| world.domains().last().copied())
            .expect("world has at least one domain");
        let outcome = match mode {
            Mode::Exploit => uc.run_exploit(&mut world, attacker),
            Mode::Injection => uc.run_injection(&mut world, attacker, &ArbitraryAccessInjector),
        };
        let monitor = uc.monitor(&world, attacker);
        let observation = monitor.observe(&world);
        let handled = outcome.erroneous_state && observation.is_clean();
        CellResult {
            use_case: uc.name().to_owned(),
            abusive_functionality: uc.intrusion_model().abusive_functionality.label().to_owned(),
            version,
            mode,
            erroneous_state: outcome.erroneous_state,
            violations: observation.violations,
            handled,
            notes: outcome.notes,
            error: outcome.error,
            wall_time_us: 0, // patched below, after the clock stops
            hypercalls: world.hv().hypercall_count().saturating_sub(base_hypercalls),
        }
        .with_wall_time(start.elapsed().as_micros() as u64)
    }
}

impl CellResult {
    fn with_wall_time(mut self, wall_time_us: u64) -> Self {
        self.wall_time_us = wall_time_us;
        self
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erroneous_state::ErroneousStateSpec;
    use crate::injector::Injector;
    use crate::model::IntrusionModel;
    use crate::scenario::ScenarioOutcome;
    use crate::taxonomy::AbusiveFunctionality;
    use hvsim_mem::DomainId;

    /// A synthetic use case: injects IDT corruption and triggers a fault.
    struct CrashCase;

    impl UseCase for CrashCase {
        fn name(&self) -> &'static str {
            "synthetic-crash"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-test",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            // "Exploit" stand-in: only works where XSA-212 exists.
            let vulnerable = world.hv().version().is_vulnerable();
            if !vulnerable {
                return ScenarioOutcome::failed("-EFAULT (bad address)");
            }
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            let gate_va = world.hv().sidt(0).offset(14 * 16);
            let args = hvsim::ExchangeArgs::write_what_where(gate_va, 0x41, 0);
            let _ = world.hv_mut().hc_memory_exchange(attacker, &args);
            let audit = spec.audit(world);
            let mut out = ScenarioOutcome {
                erroneous_state: audit.present,
                state_audit: Some(audit),
                notes: vec![],
                error: None,
            };
            let mut buf = [0u8; 1];
            let _ = world
                .hv_mut()
                .guest_read_va(attacker, hvsim_mem::VirtAddr::new(0x7f00_0000_0000), &mut buf);
            out.note("triggered page fault");
            out
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            match injector.inject(world, attacker, &spec) {
                Ok(ev) => {
                    let mut buf = [0u8; 1];
                    let _ = world.hv_mut().guest_read_va(
                        attacker,
                        hvsim_mem::VirtAddr::new(0x7f00_0000_0000),
                        &mut buf,
                    );
                    ScenarioOutcome {
                        erroneous_state: true,
                        state_audit: Some(ev.audit),
                        notes: vec!["injected and triggered".into()],
                        error: None,
                    }
                }
                Err(e) => ScenarioOutcome::failed(e.to_string()),
            }
        }
    }

    #[test]
    fn campaign_produces_full_matrix() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        assert_eq!(report.cells().len(), 6, "3 versions x 2 modes");
        // Exploit works only on 4.6.
        let e46 = report.cell("synthetic-crash", XenVersion::V4_6, Mode::Exploit).unwrap();
        assert!(e46.erroneous_state);
        assert!(e46.violated());
        let e48 = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Exploit).unwrap();
        assert!(!e48.erroneous_state);
        assert_eq!(e48.error.as_deref(), Some("-EFAULT (bad address)"));
        // Injection works everywhere and the crash follows everywhere.
        for v in XenVersion::ALL {
            let c = report.cell("synthetic-crash", v, Mode::Injection).unwrap();
            assert!(c.erroneous_state, "injection on {v}");
            assert!(c.violated(), "crash on {v}");
            assert!(!c.handled);
        }
    }

    #[test]
    fn report_renderers_produce_tables() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        let t2 = report.render_table2();
        assert!(t2.contains("synthetic-crash"));
        assert!(t2.contains("Write Unauthorized Arbitrary Memory"));
        let t3 = report.render_table3();
        assert!(t3.contains("4.13 Sec. Viol."));
        assert!(t3.contains(CHECK));
        let f4 = report.render_fig4();
        assert!(f4.contains("yes"), "exploit and injection equivalent on 4.6:\n{f4}");
        let f2 = report.render_fig2("synthetic-crash", XenVersion::V4_6);
        assert!(f2.contains("traditional"));
        assert!(f2.contains("injection"));
        let json = report.to_json().unwrap();
        assert!(json.contains("\"use_case\""));
    }

    #[test]
    fn worker_count_and_snapshot_reuse_do_not_change_the_report() {
        let campaign = Campaign::new().with_use_case(Box::new(CrashCase));
        let serial = campaign.run_with_jobs(1).normalized().to_json().unwrap();
        let parallel = campaign.run_with_jobs(4).normalized().to_json().unwrap();
        assert_eq!(serial, parallel, "jobs=1 and jobs=4 reports must be byte-identical");
        let booted = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .reuse_snapshots(false)
            .run_with_jobs(2)
            .normalized()
            .to_json()
            .unwrap();
        assert_eq!(serial, booted, "snapshot clones must equal fresh boots");
    }

    #[test]
    fn cells_record_timing_and_hypercalls() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        // Every injection cell goes through the injector's hypercalls.
        for c in report.cells().iter().filter(|c| c.mode == Mode::Injection) {
            assert!(c.hypercalls > 0, "injection on {} made no hypercalls", c.version);
        }
        assert!(report.total_hypercalls() > 0);
        assert!(report.total_wall_time_us() > 0);
        // Normalization zeroes the only non-deterministic field.
        assert!(report.normalized().cells().iter().all(|c| c.wall_time_us == 0));
        let t = CampaignThroughput::new(&report, 2, 1_000_000);
        assert_eq!(t.cells, report.cells().len());
        assert!((t.cells_per_sec - t.cells as f64).abs() < 1e-9);
    }

    #[test]
    fn restricted_campaign() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        assert_eq!(report.cells().len(), 1);
        assert_eq!(report.cells()[0].version, XenVersion::V4_13);
    }
}
