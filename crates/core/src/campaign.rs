//! The assessment campaign runner: every use case × version × mode, with
//! monitoring — the machinery behind the paper's Tables II/III and
//! Figs. 2/4.

use crate::injector::ArbitraryAccessInjector;
use crate::monitor::SecurityViolation;
use crate::report::{TextTable, CHECK, SHIELD};
use crate::scenario::{Mode, UseCase};
use guestos::{World, WorldBuilder};
use hvsim::XenVersion;
use serde::{Deserialize, Serialize};

/// Builds a fresh world for one campaign cell: `(version,
/// injector_enabled)` — the paper keeps everything else identical across
/// runs ("the build and experimental environment are kept the same",
/// §V-B).
pub type WorldFactory = Box<dyn Fn(XenVersion, bool) -> World>;

/// The world used throughout the evaluation: privileged dom0 (`xen3`)
/// plus guests `xen2` and `guest03`; `guest03` is the compromised guest
/// the exploits run in.
pub fn standard_world(version: XenVersion, injector: bool) -> World {
    WorldBuilder::new(version)
        .injector(injector)
        .guest("xen2", 64)
        .guest("guest03", 64)
        .build()
        .expect("standard world boots")
}

/// Name of the attacker guest in the standard world.
pub const ATTACKER_GUEST: &str = "guest03";

/// One campaign cell: a use case run in one mode on one version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Use-case name (e.g. `XSA-212-crash`).
    pub use_case: String,
    /// The abusive functionality of its intrusion model (for Table II).
    pub abusive_functionality: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Whether the erroneous state was induced.
    pub erroneous_state: bool,
    /// Violations observed afterwards.
    pub violations: Vec<SecurityViolation>,
    /// State induced but no violation — the system *handled* it (the
    /// shield of Table III).
    pub handled: bool,
    /// The run's log.
    pub notes: Vec<String>,
    /// Failure reason when the state was not induced.
    pub error: Option<String>,
}

impl CellResult {
    /// `true` if at least one security violation was observed.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A complete campaign report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Builds a report from pre-computed cells (used by the benchmark
    /// layer and by report deserialization).
    pub fn from_cells(cells: Vec<CellResult>) -> Self {
        Self { cells }
    }

    /// All cells.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Looks up one cell.
    pub fn cell(&self, use_case: &str, version: XenVersion, mode: Mode) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.use_case == use_case && c.version == version && c.mode == mode)
    }

    /// Renders Table II: use case → abusive functionality.
    pub fn render_table2(&self) -> String {
        let mut table = TextTable::new(["Use Case", "Abusive Functionality"])
            .title("TABLE II: use cases and their abusive functionality");
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.cells {
            if seen.insert(c.use_case.clone()) {
                table.row([c.use_case.clone(), c.abusive_functionality.clone()]);
            }
        }
        table.to_string()
    }

    /// Renders Table III: the injection campaign on the non-vulnerable
    /// versions. A check marks a correctly induced property; the shield
    /// marks an erroneous state the system handled.
    pub fn render_table3(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "4.8 Err. State",
            "4.8 Sec. Viol.",
            "4.13 Err. State",
            "4.13 Sec. Viol.",
        ])
        .title(
            "TABLE III: injection campaign in non-vulnerable versions \
             (check = property induced, shield = erroneous state handled)",
        );
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.cells {
            if !seen.insert(c.use_case.clone()) {
                continue;
            }
            let mut row = vec![c.use_case.clone()];
            for version in [XenVersion::V4_8, XenVersion::V4_13] {
                match self.cell(&c.use_case, version, Mode::Injection) {
                    Some(cell) => {
                        row.push(if cell.erroneous_state { CHECK } else { "x" }.to_owned());
                        row.push(
                            if cell.violated() {
                                CHECK.to_owned()
                            } else if cell.handled {
                                SHIELD.to_owned()
                            } else {
                                "x".to_owned()
                            },
                        );
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
        }
        table.to_string()
    }

    /// Renders the Fig. 4 comparison: on the vulnerable version, does the
    /// injection reproduce the exploit's erroneous state *and* security
    /// violation?
    pub fn render_fig4(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "exploit err/viol (4.6)",
            "injection err/viol (4.6)",
            "equivalent",
        ])
        .title("FIG. 4: experimental validation on the vulnerable version (Xen 4.6)");
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.cells {
            if !seen.insert(c.use_case.clone()) {
                continue;
            }
            let e = self.cell(&c.use_case, XenVersion::V4_6, Mode::Exploit);
            let i = self.cell(&c.use_case, XenVersion::V4_6, Mode::Injection);
            let fmt_cell = |c: Option<&CellResult>| match c {
                Some(c) => format!(
                    "{}/{}",
                    if c.erroneous_state { CHECK } else { "x" },
                    if c.violated() { CHECK } else { "x" }
                ),
                None => "-".into(),
            };
            let equivalent = match (e, i) {
                (Some(e), Some(i)) => {
                    e.erroneous_state == i.erroneous_state && e.violated() == i.violated()
                }
                _ => false,
            };
            table.row([
                c.use_case.clone(),
                fmt_cell(e),
                fmt_cell(i),
                if equivalent { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        table.to_string()
    }

    /// Renders the Fig. 2 methodology view for one use case on one
    /// version: the traditional path vs the injection path.
    pub fn render_fig2(&self, use_case: &str, version: XenVersion) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FIG. 2: methodology paths for {use_case} on Xen {version}\n"
        ));
        for (mode, label) in [
            (Mode::Exploit, "traditional: attack -> vulnerability -> intrusion"),
            (Mode::Injection, "injection:   intrusion injector (intrusion model)"),
        ] {
            if let Some(c) = self.cell(use_case, version, mode) {
                let terminal = if c.violated() {
                    "security violation"
                } else if c.handled {
                    "erroneous state handled"
                } else {
                    "no erroneous state"
                };
                out.push_str(&format!(
                    "  {label} -> erroneous state: {} -> {terminal}\n",
                    if c.erroneous_state { "induced" } else { "not induced" },
                ));
            }
        }
        out
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.cells)
    }
}

/// The campaign: use cases × versions × modes.
pub struct Campaign {
    use_cases: Vec<Box<dyn UseCase>>,
    versions: Vec<XenVersion>,
    modes: Vec<Mode>,
    factory: WorldFactory,
}

impl Campaign {
    /// A campaign over all three versions and both modes, using the
    /// standard world.
    pub fn new() -> Self {
        Self {
            use_cases: Vec::new(),
            versions: XenVersion::ALL.to_vec(),
            modes: vec![Mode::Exploit, Mode::Injection],
            factory: Box::new(standard_world),
        }
    }

    /// Adds a use case.
    #[must_use]
    pub fn with_use_case(mut self, uc: Box<dyn UseCase>) -> Self {
        self.use_cases.push(uc);
        self
    }

    /// Restricts the versions under test.
    #[must_use]
    pub fn versions(mut self, versions: &[XenVersion]) -> Self {
        self.versions = versions.to_vec();
        self
    }

    /// Restricts the modes.
    #[must_use]
    pub fn modes(mut self, modes: &[Mode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Replaces the world factory.
    #[must_use]
    pub fn world_factory(mut self, factory: WorldFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Runs every cell: a **fresh world per cell** (exploit cells on a
    /// stock build, injection cells on an injector build, exactly like
    /// the paper's setup), then monitors for violations.
    pub fn run(&self) -> CampaignReport {
        let mut cells = Vec::new();
        for uc in &self.use_cases {
            for &version in &self.versions {
                for &mode in &self.modes {
                    let injector_build = mode == Mode::Injection;
                    let mut world = (self.factory)(version, injector_build);
                    let attacker = world
                        .domain_by_name(ATTACKER_GUEST)
                        .or_else(|| world.domains().last().copied())
                        .expect("world has at least one domain");
                    let outcome = match mode {
                        Mode::Exploit => uc.run_exploit(&mut world, attacker),
                        Mode::Injection => {
                            uc.run_injection(&mut world, attacker, &ArbitraryAccessInjector)
                        }
                    };
                    let monitor = uc.monitor(&world, attacker);
                    let observation = monitor.observe(&world);
                    let handled = outcome.erroneous_state && observation.is_clean();
                    cells.push(CellResult {
                        use_case: uc.name().to_owned(),
                        abusive_functionality: uc
                            .intrusion_model()
                            .abusive_functionality
                            .label()
                            .to_owned(),
                        version,
                        mode,
                        erroneous_state: outcome.erroneous_state,
                        violations: observation.violations,
                        handled,
                        notes: outcome.notes,
                        error: outcome.error,
                    });
                }
            }
        }
        CampaignReport { cells }
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erroneous_state::ErroneousStateSpec;
    use crate::injector::Injector;
    use crate::model::IntrusionModel;
    use crate::scenario::ScenarioOutcome;
    use crate::taxonomy::AbusiveFunctionality;
    use hvsim_mem::DomainId;

    /// A synthetic use case: injects IDT corruption and triggers a fault.
    struct CrashCase;

    impl UseCase for CrashCase {
        fn name(&self) -> &'static str {
            "synthetic-crash"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-test",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            // "Exploit" stand-in: only works where XSA-212 exists.
            let vulnerable = world.hv().version().is_vulnerable();
            if !vulnerable {
                return ScenarioOutcome::failed("-EFAULT (bad address)");
            }
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            let gate_va = world.hv().sidt(0).offset(14 * 16);
            let args = hvsim::ExchangeArgs::write_what_where(gate_va, 0x41, 0);
            let _ = world.hv_mut().hc_memory_exchange(attacker, &args);
            let audit = spec.audit(world);
            let mut out = ScenarioOutcome {
                erroneous_state: audit.present,
                state_audit: Some(audit),
                notes: vec![],
                error: None,
            };
            let mut buf = [0u8; 1];
            let _ = world
                .hv_mut()
                .guest_read_va(attacker, hvsim_mem::VirtAddr::new(0x7f00_0000_0000), &mut buf);
            out.note("triggered page fault");
            out
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            match injector.inject(world, attacker, &spec) {
                Ok(ev) => {
                    let mut buf = [0u8; 1];
                    let _ = world.hv_mut().guest_read_va(
                        attacker,
                        hvsim_mem::VirtAddr::new(0x7f00_0000_0000),
                        &mut buf,
                    );
                    ScenarioOutcome {
                        erroneous_state: true,
                        state_audit: Some(ev.audit),
                        notes: vec!["injected and triggered".into()],
                        error: None,
                    }
                }
                Err(e) => ScenarioOutcome::failed(e.to_string()),
            }
        }
    }

    #[test]
    fn campaign_produces_full_matrix() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        assert_eq!(report.cells().len(), 6, "3 versions x 2 modes");
        // Exploit works only on 4.6.
        let e46 = report.cell("synthetic-crash", XenVersion::V4_6, Mode::Exploit).unwrap();
        assert!(e46.erroneous_state);
        assert!(e46.violated());
        let e48 = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Exploit).unwrap();
        assert!(!e48.erroneous_state);
        assert_eq!(e48.error.as_deref(), Some("-EFAULT (bad address)"));
        // Injection works everywhere and the crash follows everywhere.
        for v in XenVersion::ALL {
            let c = report.cell("synthetic-crash", v, Mode::Injection).unwrap();
            assert!(c.erroneous_state, "injection on {v}");
            assert!(c.violated(), "crash on {v}");
            assert!(!c.handled);
        }
    }

    #[test]
    fn report_renderers_produce_tables() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        let t2 = report.render_table2();
        assert!(t2.contains("synthetic-crash"));
        assert!(t2.contains("Write Unauthorized Arbitrary Memory"));
        let t3 = report.render_table3();
        assert!(t3.contains("4.13 Sec. Viol."));
        assert!(t3.contains(CHECK));
        let f4 = report.render_fig4();
        assert!(f4.contains("yes"), "exploit and injection equivalent on 4.6:\n{f4}");
        let f2 = report.render_fig2("synthetic-crash", XenVersion::V4_6);
        assert!(f2.contains("traditional"));
        assert!(f2.contains("injection"));
        let json = report.to_json().unwrap();
        assert!(json.contains("\"use_case\""));
    }

    #[test]
    fn restricted_campaign() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        assert_eq!(report.cells().len(), 1);
        assert_eq!(report.cells()[0].version, XenVersion::V4_13);
    }
}
